#!/usr/bin/env python
"""End-to-end smoke test of the explanation service (the CI smoke job).

Boots the real ``repro-em serve`` CLI as a subprocess (JSONL over
stdin/stdout, persistent store and model artifact on disk) and drives a
mixed request batch through it:

1. **cold** requests that must be computed;
2. a **duplicate** in the same session that must be answered by the
   store (or coalesced) without recomputing;
3. a **restart**: a second server process over the same store directory
   must answer the same request bit-identically with zero computations.

Exit code 0 = every response ok, nonzero store hits, restart answers
from disk.  Run locally with::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

DATASET_ARGS = ["--dataset", "S-BR", "--size-cap", "150", "--samples", "32"]


def run_serve(store_dir: Path, model_dir: Path, requests: list[dict]) -> list[dict]:
    """One server process: feed *requests* as JSONL, return the responses."""
    lines = "".join(json.dumps(r) + "\n" for r in requests)
    process = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "serve", *DATASET_ARGS,
            "--store-dir", str(store_dir), "--model-dir", str(model_dir),
            "--workers", "2",
        ],
        input=lines,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if process.returncode != 0:
        print(process.stderr, file=sys.stderr)
        raise SystemExit(f"serve exited with {process.returncode}")
    return [json.loads(line) for line in process.stdout.splitlines()]


def main() -> int:
    failures: list[str] = []

    def check(condition: bool, what: str) -> None:
        print(f"  [{'ok' if condition else 'FAIL'}] {what}")
        if not condition:
            failures.append(what)

    with tempfile.TemporaryDirectory() as root:
        store_dir = Path(root) / "store"
        model_dir = Path(root) / "models"

        batch = [
            {"id": "cold-0", "record": 0, "method": "single"},
            {"id": "cold-1", "record": 1, "method": "single"},
            {"id": "dup-0", "record": 0, "method": "single"},
            {"id": "stats", "op": "stats"},
            {"id": "bye", "op": "shutdown"},
        ]
        print("session 1: cold + duplicate batch")
        responses = {r["id"]: r for r in run_serve(store_dir, model_dir, batch)}
        check(len(responses) == len(batch), "every request answered")
        check(
            all(r["ok"] for r in responses.values()), "every response ok"
        )
        stats = responses["stats"]["stats"]["service"]
        check(stats["computed"] == 2, "two cold requests computed")
        check(
            stats["store_hits"] + stats["coalesced"] == 1,
            "duplicate served without recomputing",
        )
        check(
            responses["dup-0"]["result"] == responses["cold-0"]["result"],
            "duplicate response bit-identical",
        )
        check(
            (store_dir / "service_stats.json").exists(),
            "run JSON written on shutdown",
        )

        print("session 2: restart answers from the persistent store")
        rerun = [
            {"id": "cached-0", "record": 0, "method": "single"},
            {"id": "stats", "op": "stats"},
            {"id": "bye", "op": "shutdown"},
        ]
        responses2 = {r["id"]: r for r in run_serve(store_dir, model_dir, rerun)}
        stats2 = responses2["stats"]["stats"]
        check(
            all(r["ok"] for r in responses2.values()), "every response ok"
        )
        check(stats2["service"]["computed"] == 0, "nothing recomputed")
        check(stats2["service"]["store_hits"] == 1, "nonzero store hits")
        check(stats2["store"]["hits"] >= 1, "store counters agree")
        check(
            responses2["cached-0"]["result"] == responses["cold-0"]["result"],
            "restart result bit-identical to the cold computation",
        )

    print("service_smoke", "FAILED" if failures else "passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
