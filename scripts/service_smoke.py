#!/usr/bin/env python
"""End-to-end smoke test of the explanation service (the CI smoke job).

Boots the real ``repro-em serve`` CLI as a subprocess (JSONL over
stdin/stdout, persistent store and model artifact on disk) and drives a
mixed request batch through it:

1. **cold** requests that must be computed;
2. a **duplicate** in the same session that must be answered by the
   store (or coalesced) without recomputing;
3. a **restart**: a second server process over the same store directory
   must answer the same request bit-identically with zero computations;
4. an **HTTP session** (``--http`` + ``--trace``) whose ``GET /metrics``
   endpoint is scraped twice: every line must parse as Prometheus text
   and every counter must be monotone between scrapes.

Exit code 0 = every response ok, nonzero store hits, restart answers
from disk, metrics scrape well-formed.  Run locally with::

    PYTHONPATH=src python scripts/service_smoke.py

Pass ``--artifacts-dir DIR`` to keep the observability outputs (trace
JSON, metrics snapshots, the raw Prometheus scrape) for CI upload.
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

DATASET_ARGS = ["--dataset", "S-BR", "--size-cap", "150", "--samples", "32"]

PROMETHEUS_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


def run_serve(store_dir: Path, model_dir: Path, requests: list[dict]) -> list[dict]:
    """One server process: feed *requests* as JSONL, return the responses."""
    lines = "".join(json.dumps(r) + "\n" for r in requests)
    process = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "serve", *DATASET_ARGS,
            "--store-dir", str(store_dir), "--model-dir", str(model_dir),
            "--workers", "2",
        ],
        input=lines,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if process.returncode != 0:
        print(process.stderr, file=sys.stderr)
        raise SystemExit(f"serve exited with {process.returncode}")
    return [json.loads(line) for line in process.stdout.splitlines()]


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text into ``{series-with-labels: value}``.

    Raises ``ValueError`` on any line that is not a comment and does not
    match the ``name{labels} value`` shape — the scrape-validity check.
    """
    series: dict[str, float] = {}
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        if not PROMETHEUS_LINE.match(line):
            raise ValueError(f"unparseable exposition line: {line!r}")
        key, raw = line.rsplit(" ", 1)
        series[key] = float(raw)
    return series


def http_session(
    store_dir: Path, model_dir: Path, trace_path: Path, check
) -> tuple[str, str]:
    """Boot ``serve --http``, drive it, scrape /metrics twice.

    Returns the two raw scrapes so the caller can archive them.
    """
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", *DATASET_ARGS,
            "--store-dir", str(store_dir), "--model-dir", str(model_dir),
            "--workers", "2", "--http", "127.0.0.1:0",
            "--trace", str(trace_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # The CLI announces the bound ephemeral port on stderr.
        address = None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            line = process.stderr.readline()
            if line.startswith("serving on "):
                address = line.split()[2]
                break
            if not line and process.poll() is not None:
                break
        check(address is not None, "HTTP server announced its address")
        if address is None:
            raise SystemExit("serve --http did not come up")

        def get(path: str) -> tuple[int, str]:
            with urllib.request.urlopen(address + path, timeout=60) as resp:
                return resp.status, resp.read().decode("utf-8")

        status, body = get("/healthz")
        health = json.loads(body)
        check(
            status == 200 and health["ok"] is True,
            "healthz reports ok",
        )

        explain = json.dumps({"record": 2, "method": "single"}).encode()
        request = urllib.request.Request(
            address + "/explain", data=explain, method="POST"
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            check(
                json.loads(resp.read())["ok"], "HTTP explain request ok"
            )
        _, scrape1 = get("/metrics")
        with urllib.request.urlopen(request, timeout=120) as resp:
            resp.read()
        _, scrape2 = get("/metrics")

        try:
            first, second = parse_prometheus(scrape1), parse_prometheus(scrape2)
            check(True, "both /metrics scrapes parse as Prometheus text")
        except ValueError as exc:
            check(False, str(exc))
            return scrape1, scrape2
        counters = [k for k in first if "_total{" in k or k.endswith("_total")]
        check(bool(counters), "scrape exposes counters")
        regressed = [
            k for k in counters if second.get(k, 0.0) < first[k]
        ]
        check(not regressed, f"counters monotone between scrapes {regressed}")
        requests_key = next(
            k for k in counters if k.startswith("repro_service_requests_total")
        )
        check(
            second[requests_key] > first[requests_key],
            "service request counter advanced",
        )
        return scrape1, scrape2
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts-dir", type=Path, default=None,
        help="keep trace/metrics outputs here for CI artifact upload",
    )
    args = parser.parse_args(argv)
    failures: list[str] = []

    def check(condition: bool, what: str) -> None:
        print(f"  [{'ok' if condition else 'FAIL'}] {what}")
        if not condition:
            failures.append(what)

    with tempfile.TemporaryDirectory() as root:
        store_dir = Path(root) / "store"
        model_dir = Path(root) / "models"

        batch = [
            {"id": "cold-0", "record": 0, "method": "single"},
            {"id": "cold-1", "record": 1, "method": "single"},
            {"id": "dup-0", "record": 0, "method": "single"},
            {"id": "stats", "op": "stats"},
            {"id": "bye", "op": "shutdown"},
        ]
        print("session 1: cold + duplicate batch")
        responses = {r["id"]: r for r in run_serve(store_dir, model_dir, batch)}
        check(len(responses) == len(batch), "every request answered")
        check(
            all(r["ok"] for r in responses.values()), "every response ok"
        )
        stats = responses["stats"]["stats"]["service"]
        check(stats["computed"] == 2, "two cold requests computed")
        check(
            stats["store_hits"] + stats["coalesced"] == 1,
            "duplicate served without recomputing",
        )
        check(
            responses["dup-0"]["result"] == responses["cold-0"]["result"],
            "duplicate response bit-identical",
        )
        check(
            (store_dir / "service_stats.json").exists(),
            "run JSON written on shutdown",
        )

        print("session 2: restart answers from the persistent store")
        rerun = [
            {"id": "cached-0", "record": 0, "method": "single"},
            {"id": "stats", "op": "stats"},
            {"id": "bye", "op": "shutdown"},
        ]
        responses2 = {r["id"]: r for r in run_serve(store_dir, model_dir, rerun)}
        stats2 = responses2["stats"]["stats"]
        check(
            all(r["ok"] for r in responses2.values()), "every response ok"
        )
        check(stats2["service"]["computed"] == 0, "nothing recomputed")
        check(stats2["service"]["store_hits"] == 1, "nonzero store hits")
        check(stats2["store"]["hits"] >= 1, "store counters agree")
        check(
            responses2["cached-0"]["result"] == responses["cold-0"]["result"],
            "restart result bit-identical to the cold computation",
        )

        print("session 3: HTTP endpoint, /metrics scrape, trace export")
        trace_path = Path(root) / "trace.json"
        scrape1, scrape2 = http_session(
            store_dir, model_dir, trace_path, check
        )
        check(trace_path.exists(), "trace JSON written on shutdown")
        metrics_path = store_dir / "metrics.json"
        check(metrics_path.exists(), "metrics snapshot written on shutdown")
        if metrics_path.exists():
            snapshot = json.loads(metrics_path.read_text())
            check(
                any(
                    f["name"] == "repro_service_requests_total"
                    for f in snapshot["metrics"]
                ),
                "metrics snapshot carries the service counters",
            )

        if args.artifacts_dir is not None:
            args.artifacts_dir.mkdir(parents=True, exist_ok=True)
            for source in (trace_path, metrics_path):
                if source.exists():
                    shutil.copy(source, args.artifacts_dir / source.name)
            (args.artifacts_dir / "metrics_scrape_1.prom").write_text(scrape1)
            (args.artifacts_dir / "metrics_scrape_2.prom").write_text(scrape2)
            print(f"artifacts kept in {args.artifacts_dir}")

    print("service_smoke", "FAILED" if failures else "passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
