#!/usr/bin/env python
"""Seeded chaos drill of the request-lifecycle machinery (CI chaos job).

Boots the real ``repro-em serve`` CLI and drives it through the failure
modes the lifecycle layer exists for:

1. **overload** — a simultaneous burst against a 1-worker server with a
   shed threshold of 1: some requests must be admitted (200), the rest
   shed with HTTP 429 + ``Retry-After`` + ``code: "overloaded"``, and
   the ``shed`` counter must account for them;
2. **deadlines** — a cold request carrying a 1 ms budget must fail with
   ``code: "deadline_exceeded"`` (HTTP 504 / JSONL alike), must leave no
   store entry behind, and the same request re-sent without a deadline
   must compute normally;
3. **graceful drain** — SIGTERM must stop the server within its drain
   budget with exit code 0 and a drain summary on stderr;
4. **store corruption** — a truncated SQLite file must be quarantined to
   ``*.corrupt-<ts>`` on the next boot, the store rebuilt empty, and the
   recomputed explanations must be bit-identical to the pre-corruption
   ones;
5. **mid-request kill** — SIGKILL while a computation is in flight must
   not poison the store: the next boot over the same directory serves
   correctly.

Everything is seeded; a failure reproduces.  Run locally with::

    PYTHONPATH=src python scripts/chaos_drill.py

Pass ``--artifacts-dir DIR`` to keep server logs for CI upload.
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.testing.chaos import kill_after, overload_burst, truncate_file

SEED = 7
DATASET_ARGS = [
    "--dataset", "S-BR", "--size-cap", "150", "--samples", "32",
    "--seed", str(SEED),
]
STORE_DB = "explanations.sqlite"


def serve_jsonl(
    store_dir: Path, model_dir: Path, requests: list[dict], extra=()
) -> tuple[list[dict], str]:
    """One stdio server session; returns (responses, stderr)."""
    lines = "".join(json.dumps(r) + "\n" for r in requests)
    process = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "serve", *DATASET_ARGS,
            "--store-dir", str(store_dir), "--model-dir", str(model_dir),
            "--workers", "2", *extra,
        ],
        input=lines, capture_output=True, text=True, timeout=150,
    )
    if process.returncode != 0:
        print(process.stderr, file=sys.stderr)
        raise SystemExit(f"serve exited with {process.returncode}")
    return [json.loads(line) for line in process.stdout.splitlines()], process.stderr


def boot_http(store_dir: Path, model_dir: Path, extra=()) -> tuple:
    """Boot ``serve --http`` on an ephemeral port; returns (process, url)."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", *DATASET_ARGS,
            "--store-dir", str(store_dir), "--model-dir", str(model_dir),
            "--http", "127.0.0.1:0", *extra,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    address = None
    stderr_lines: list[str] = []
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        stderr_lines.append(line)
        if line.startswith("serving on "):
            address = line.split()[2]
            break
        if not line and process.poll() is not None:
            break
    if address is None:
        print("".join(stderr_lines), file=sys.stderr)
        raise SystemExit("serve --http did not come up")
    return process, address


def stop_http(process) -> str:
    """SIGINT the server and return its remaining stderr."""
    if process.poll() is None:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
    return process.stderr.read() if process.stderr else ""


def post_explain(url: str, payload: dict, timeout: float = 120.0) -> dict:
    """POST /explain; returns ``{"status", "body", "retry_after"}``."""
    request = urllib.request.Request(
        url + "/explain",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return {
                "status": response.status,
                "body": json.loads(response.read()),
                "retry_after": None,
            }
    except urllib.error.HTTPError as error:
        return {
            "status": error.code,
            "body": json.loads(error.read()),
            "retry_after": error.headers.get("Retry-After"),
        }


def drill_overload_and_deadline(root: Path, model_dir: Path, check) -> None:
    print("drill 1+2: overload shedding and deadlines over HTTP")
    store_dir = root / "store-overload"
    process, url = boot_http(
        store_dir, model_dir,
        extra=["--workers", "1", "--shed-threshold", "1", "--drain-timeout", "20"],
    )
    try:
        outcomes = overload_burst(
            lambda slot: post_explain(
                url, {"record": slot, "method": "single"}
            ),
            n=8,
        )
        statuses = [o["status"] for o in outcomes if isinstance(o, dict)]
        check(len(statuses) == 8, "burst: every request got an HTTP response")
        admitted = [s for s in statuses if s == 200]
        shed = [o for o in outcomes
                if isinstance(o, dict) and o["status"] == 429]
        check(bool(admitted), f"burst: some requests admitted ({len(admitted)})")
        check(bool(shed), f"burst: some requests shed with 429 ({len(shed)})")
        check(
            all(o["body"].get("code") == "overloaded" for o in shed),
            "shed responses carry code=overloaded",
        )
        check(
            all(o["retry_after"] is not None for o in shed),
            "shed responses carry a Retry-After header",
        )
        with urllib.request.urlopen(url + "/stats", timeout=30) as response:
            stats = json.loads(response.read())["stats"]["service"]
        check(stats["shed"] == len(shed), "shed counter matches 429 count")

        # Deadline: 1 ms budget on a cold record cannot be met.
        doomed = {"record": 20, "method": "single", "deadline_seconds": 0.001}
        outcome = post_explain(url, doomed)
        check(outcome["status"] == 504, "deadline miss maps to HTTP 504")
        check(
            outcome["body"].get("code") == "deadline_exceeded",
            "deadline miss carries code=deadline_exceeded",
        )
        # No partial store entry: the same request minus the deadline
        # must actually compute (a poisoned store would answer instantly).
        before = json.loads(
            urllib.request.urlopen(url + "/stats", timeout=30).read()
        )["stats"]["service"]["computed"]
        retry = post_explain(url, {"record": 20, "method": "single"})
        check(retry["status"] == 200, "same request without deadline succeeds")
        after = json.loads(
            urllib.request.urlopen(url + "/stats", timeout=30).read()
        )["stats"]["service"]["computed"]
        check(
            after == before + 1,
            "deadline-aborted request left no store entry (recomputed)",
        )
    finally:
        stop_http(process)


def drill_sigterm_drain(root: Path, model_dir: Path, check) -> str:
    print("drill 3: SIGTERM drains within its budget")
    store_dir = root / "store-drain"
    process, url = boot_http(
        store_dir, model_dir, extra=["--drain-timeout", "20"]
    )
    outcome = post_explain(url, {"record": 0, "method": "single"})
    check(outcome["status"] == 200, "pre-drain request succeeds")
    started = time.monotonic()
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=40)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
        check(False, "SIGTERM: server exited within the drain budget")
        return ""
    elapsed = time.monotonic() - started
    stderr = process.stderr.read() if process.stderr else ""
    check(code == 0, f"SIGTERM: clean exit code (got {code})")
    check(elapsed < 30, f"SIGTERM: exited in {elapsed:.1f}s (< 30s)")
    check("drain:" in stderr, "SIGTERM: drain summary printed")
    return stderr


def drill_store_recovery(root: Path, model_dir: Path, check) -> None:
    print("drill 4: corrupt store is quarantined; results bit-identical")
    store_dir = root / "store-recovery"
    batch = [
        {"id": "a", "record": 0, "method": "single"},
        {"id": "b", "record": 1, "method": "single"},
        {"id": "stats", "op": "stats"},
        {"id": "bye", "op": "shutdown"},
    ]
    responses, _ = serve_jsonl(store_dir, model_dir, batch)
    baseline = {r["id"]: r for r in responses}
    check(
        all(r["ok"] for r in baseline.values()), "baseline session all ok"
    )

    truncate_file(store_dir / STORE_DB, keep_fraction=0.25)
    responses2, _ = serve_jsonl(store_dir, model_dir, batch)
    after = {r["id"]: r for r in responses2}
    check(
        all(r["ok"] for r in after.values()),
        "post-corruption session all ok (no crash, no garbage)",
    )
    quarantined = list(store_dir.glob(f"{STORE_DB}.corrupt-*"))
    check(bool(quarantined), "corrupt database quarantined to *.corrupt-<ts>")
    store_stats = after["stats"]["stats"]["store"]
    check(
        store_stats["recoveries"] >= 1, "recovery counted in store stats"
    )
    check(
        after["a"]["result"] == baseline["a"]["result"]
        and after["b"]["result"] == baseline["b"]["result"],
        "recomputed explanations bit-identical after recovery",
    )


def drill_midrequest_kill(root: Path, model_dir: Path, check) -> None:
    print("drill 5: SIGKILL mid-request does not poison the store")
    store_dir = root / "store-kill"
    lines = json.dumps({"id": "doomed", "record": 2, "method": "single"}) + "\n"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", *DATASET_ARGS,
            "--store-dir", str(store_dir), "--model-dir", str(model_dir),
        ],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True,
    )
    # The kill lands while the server is somewhere between model load and
    # mid-computation — any point must leave a recoverable store.
    timer = kill_after(process, delay=2.0)
    try:
        process.communicate(input=lines, timeout=120)
    except subprocess.TimeoutExpired:
        process.kill()
    finally:
        timer.cancel()
    batch = [
        {"id": "after", "record": 2, "method": "single"},
        {"id": "bye", "op": "shutdown"},
    ]
    responses, _ = serve_jsonl(store_dir, model_dir, batch)
    after = {r["id"]: r for r in responses}
    check(
        after["after"]["ok"],
        "restart over the killed store serves correctly",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts-dir", type=Path, default=None,
        help="keep drill outputs here for CI artifact upload",
    )
    args = parser.parse_args(argv)
    failures: list[str] = []
    transcript: list[str] = []

    def check(condition: bool, what: str) -> None:
        line = f"  [{'ok' if condition else 'FAIL'}] {what}"
        print(line)
        transcript.append(line)
        if not condition:
            failures.append(what)

    started = time.monotonic()
    with tempfile.TemporaryDirectory() as root_text:
        root = Path(root_text)
        model_dir = root / "models"
        drill_overload_and_deadline(root, model_dir, check)
        drain_stderr = drill_sigterm_drain(root, model_dir, check)
        drill_store_recovery(root, model_dir, check)
        drill_midrequest_kill(root, model_dir, check)
        if args.artifacts_dir is not None:
            args.artifacts_dir.mkdir(parents=True, exist_ok=True)
            (args.artifacts_dir / "chaos_transcript.txt").write_text(
                "\n".join(transcript) + "\n"
            )
            (args.artifacts_dir / "drain_stderr.txt").write_text(drain_stderr)
            print(f"artifacts kept in {args.artifacts_dir}")

    elapsed = time.monotonic() - started
    print(f"chaos_drill {'FAILED' if failures else 'passed'} in {elapsed:.0f}s")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
