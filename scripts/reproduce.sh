#!/usr/bin/env bash
# Reproduce everything: tests, benchmark tables, fast experiment grid,
# and all runnable examples.  Outputs land in the repository root and in
# benchmarks/output/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== 1/4 unit + property tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== 2/4 benchmark suite (all paper tables + ablations, bench scale) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt | tail -2
python benchmarks/bench_prediction_engine.py --fast | tail -3

echo "== 3/4 full experiment grid (fast preset, all 12 datasets) =="
python -m repro.cli experiment --preset fast --output experiments_fast.txt | tail -5

echo "== 4/4 examples =="
for script in examples/*.py; do
    echo "-- ${script}"
    python "${script}" > /dev/null
done

echo "done. See benchmarks/output/, experiments_fast.txt, EXPERIMENTS.md."
