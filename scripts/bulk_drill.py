#!/usr/bin/env python
"""Kill-and-resume drill for bulk explanation jobs (the CI smoke job).

Exercises the whole ``repro.bulk`` resume contract against a real
(synthetic) dataset in about a minute:

1. an uninterrupted bulk run — the reference report;
2. the same job killed at chunk K (after its journal event is durable),
   then resumed — the finished report must be **byte-identical** to the
   reference, and the explanation payloads in its store bit-identical to
   the reference store's;
3. a rerun of the job over the warm store — at least 90 % of pairs must
   be served as dedup hits without recomputation.

Exit code 0 = all three hold.  Run locally with::

    PYTHONPATH=src python scripts/bulk_drill.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.bulk import BulkJob, BulkJobSpec, DatasetSource
from repro.data.synthetic.magellan import load_dataset
from repro.matchers.logistic import LogisticRegressionMatcher
from repro.service.request import request_key
from repro.service.store import ExplanationStore


class _Killed(Exception):
    pass


def report_bytes(job, report) -> bytes:
    return json.dumps(
        report.report_payload(job.spec, job.source.describe(),
                              job.fingerprint),
        indent=2,
        sort_keys=True,
    ).encode("utf-8")


def store_payloads(job) -> dict:
    keys = [
        request_key(job.fingerprint, job.spec.request_for(pair))
        for pair in job.source.pairs()
    ]
    return job.store.get_many(keys)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--per-label", type=int, default=4)
    parser.add_argument("--samples", type=int, default=32)
    parser.add_argument("--size-cap", type=int, default=300)
    parser.add_argument("--chunk-size", type=int, default=2)
    parser.add_argument("--kill-at-chunk", type=int, default=1,
                        help="crash after this chunk's journal event")
    parser.add_argument("--report-dir", type=Path, default=None,
                        help="keep the reference and resumed reports here")
    args = parser.parse_args(argv)

    failures: list[str] = []
    dataset = load_dataset("S-BR", seed=0, size_cap=args.size_cap)
    matcher = LogisticRegressionMatcher().fit(dataset)
    source = DatasetSource(dataset, per_label=args.per_label, seed=0)
    spec = BulkJobSpec(method="both", samples=args.samples,
                       chunk_size=args.chunk_size)

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        print("[1/3] uninterrupted reference run")
        reference = BulkJob(
            matcher, source, spec=spec,
            store=ExplanationStore(tmp / "ref-store"),
            run_dir=tmp / "ref-run",
        )
        reference_report = reference.run()
        reference_bytes = report_bytes(reference, reference_report)
        print(
            f"  {reference_report.n_pairs} pairs, "
            f"{reference_report.n_chunks} chunks, "
            f"{reference_report.n_computed} computed"
        )
        if reference_report.n_failed:
            failures.append(
                f"reference run failed {reference_report.n_failed} pairs"
            )

        print(f"[2/3] kill at chunk {args.kill_at_chunk}, then resume")

        def kill(index, job):
            if index == args.kill_at_chunk:
                raise _Killed(f"simulated crash after chunk {index}")

        victim_store = ExplanationStore(tmp / "victim-store")
        victim = BulkJob(
            matcher, source, spec=spec, store=victim_store,
            run_dir=tmp / "victim-run", on_chunk=kill,
        )
        try:
            victim.run()
            failures.append("kill callback never fired (job too small?)")
        except _Killed as crash:
            print(f"  {crash}")
        resumed = BulkJob(
            matcher, source, spec=spec, store=victim_store,
            run_dir=tmp / "victim-run",
        )
        resumed_report = resumed.run(resume=True)
        resumed_bytes = report_bytes(resumed, resumed_report)
        print(
            f"  resumed {resumed_report.resumed_chunks} chunks from the "
            f"journal, {resumed_report.n_computed} computed in total"
        )
        if resumed_bytes != reference_bytes:
            failures.append(
                "resumed report differs from the uninterrupted reference"
            )
        else:
            print(
                f"  report byte-identical to the reference "
                f"({len(reference_bytes)} bytes)"
            )
        reference_payloads = store_payloads(reference)
        resumed_payloads = store_payloads(resumed)
        if reference_payloads != resumed_payloads:
            failures.append(
                "resumed store payloads differ from the reference store"
            )
        else:
            print(
                f"  all {len(resumed_payloads)} stored payloads "
                f"bit-identical to the reference store"
            )
        if args.report_dir is not None:
            args.report_dir.mkdir(parents=True, exist_ok=True)
            (args.report_dir / "reference.json").write_bytes(reference_bytes)
            (args.report_dir / "resumed.json").write_bytes(resumed_bytes)
            print(f"  wrote reports to {args.report_dir}")

        print("[3/3] warm-store rerun must dedup")
        warm = BulkJob(
            matcher, source, spec=spec, store=victim_store,
            run_dir=tmp / "warm-run",
        )
        warm_report = warm.run()
        print(
            f"  {warm_report.n_dedup_hits}/{warm_report.n_pairs} dedup "
            f"hits ({100 * warm_report.dedup_rate:.0f}%)"
        )
        if warm_report.dedup_rate < 0.9:
            failures.append(
                f"warm dedup rate {warm_report.dedup_rate:.2f} below 0.90"
            )
        if report_bytes(warm, warm_report) != reference_bytes:
            failures.append("warm-store report differs from the reference")

        reference.store.close()
        victim_store.close()

    for failure in failures:
        print(f"FAIL: {failure}")
    print("bulk_drill", "FAILED" if failures else "passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
