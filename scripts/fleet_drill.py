#!/usr/bin/env python
"""Cross-host fleet chaos drill: kill a host AND partition another (CI).

The full partition-tolerance scenario on one machine, with nothing
mocked: three real ``serve-shard`` host processes plus one standby, a
``serve --fleet --http`` supervisor dialing them over TCP (shard 1
through an in-drill :class:`~repro.testing.chaos.ChaosProxy`), and an
unharmed ``--shards 3`` pipe run as the control.  Asserted contract:

1. **zero lost admitted requests** — through a SIGKILLed host *and* a
   network partition, every admitted request gets a terminal response;
   retryable 503s (``shard_failed`` / ``host_lost``) retried by the
   client all succeed;
2. **host loss ≠ crash** — the killed host is declared lost (reconnects
   refused, not just dropped) and its shard id is replaced onto the
   standby, which rebuilds its store partition cold;
3. **partition ≠ death** — the partitioned shard is detected by
   heartbeat silence (its sockets never reset), reads degraded-not-down
   while one host is out, and *reconnects warm* after the partition
   heals;
4. **quorum honesty** — with the partition and a second host kill in
   flight simultaneously, ``/healthz`` flips to 503 ``quorum_lost``;
   after the heal it returns to degraded-200 with the dead host listed
   in ``lost_hosts``;
5. **byte identity** — explanation weights served by the mangled TCP
   fleet equal the unharmed pipe run's byte for byte;
6. **clean drain** — SIGTERM drains the supervisor (exit 0) and every
   surviving shard host process exits on its own.

Run locally with::

    PYTHONPATH=src python scripts/fleet_drill.py

Pass ``--artifacts-dir DIR`` to keep the supervisor log, health
snapshots and the weight comparison for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from shard_drill import (  # noqa: E402 - sibling script, not a package
    LoadResult,
    boot_http,
    get_json,
    post_explain,
    run_load,
    spawn_fleet,
)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
from repro.testing.chaos import ChaosProxy  # noqa: E402

N_SHARDS = 3
CONTROL_RECORDS = list(range(10))


def weights_for(url: str, records: list[int]) -> dict[int, dict]:
    """The full explanation result for *records*, keyed by record.

    The whole ``result`` payload — landmark dual weights included — must
    be byte-identical across transports, so the comparison is wholesale.
    """
    weights = {}
    for record in records:
        for attempt in range(6):
            status, body = post_explain(
                url, {"record": record, "method": "single"}
            )
            if status == 200:
                weights[record] = body["result"]
                break
            time.sleep(0.3 * (attempt + 1))
        else:
            raise SystemExit(f"record {record} never served: {status} {body}")
    return weights


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts-dir", type=Path, default=None,
        help="keep logs, health snapshots and weight comparisons here",
    )
    parser.add_argument("--requests", type=int, default=30)
    args = parser.parse_args(argv)
    failures: list[str] = []
    transcript: list[str] = []
    health_snapshots: dict[str, dict] = {}

    def check(condition: bool, what: str) -> None:
        line = f"  [{'ok' if condition else 'FAIL'}] {what}"
        print(line, flush=True)
        transcript.append(line)
        if not condition:
            failures.append(what)

    def wait_health(predicate, timeout: float = 30.0):
        deadline = time.monotonic() + timeout
        status, health = get_json(url + "/healthz")
        while time.monotonic() < deadline:
            status, health = get_json(url + "/healthz")
            if predicate(status, health):
                return True, status, health
            time.sleep(0.1)
        return False, status, health

    started = time.monotonic()
    with tempfile.TemporaryDirectory() as root_text:
        root = Path(root_text)

        print("drill: control run — unharmed pipe fleet")
        control_process, control_url, _ = boot_http(
            root / "control-store", root / "models"
        )
        try:
            control_weights = weights_for(control_url, CONTROL_RECORDS)
        finally:
            control_process.send_signal(signal.SIGTERM)
            try:
                control_process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                control_process.kill()
                control_process.wait()

        print(f"drill: spawning {N_SHARDS} serve-shard hosts + 1 standby, "
              f"shard 1 behind a chaos proxy")
        hosts, fleet_path = spawn_fleet(root, N_SHARDS, standbys=1)
        shard1_host, shard1_port = hosts[1][1].rsplit(":", 1)
        proxy = ChaosProxy(shard1_host, int(shard1_port))
        proxy.start()
        document = json.loads(fleet_path.read_text())
        document["shards"][1]["host"] = proxy.host
        document["shards"][1]["port"] = proxy.port
        fleet_path.write_text(json.dumps(document, indent=2))

        process, url, server_log = boot_http(
            root / "store", root / "models", fleet_path
        )
        try:
            status, health = get_json(url + "/healthz")
            check(
                status == 200 and len(health.get("shards", {})) == N_SHARDS,
                "fleet up: healthz 200 with every shard adopted over TCP",
            )
            health_snapshots["healthy"] = health

            # ---- phase A: kill a whole host under load ---------------
            print(f"drill: sustained load, SIGKILL host 0 "
                  f"(pid {hosts[0][0].pid})")
            result = LoadResult()
            pool = run_load(url, args.requests, result)
            time.sleep(0.5)
            os.kill(hosts[0][0].pid, signal.SIGKILL)

            ok, status, health = wait_health(
                lambda s, h: s == 200 and "0" in h.get("degraded", [])
                or h.get("shards", {}).get("0", {}).get("restarts", 0) >= 1
            )
            degraded_seen = "0" in health.get("degraded", [])
            health_snapshots["host0_killed"] = health
            for thread in pool:
                thread.join(timeout=300)
            check(
                result.completed == args.requests,
                f"zero lost requests through the host kill: "
                f"{result.completed}/{args.requests} completed "
                f"({result.retried} retried, {len(result.lost)} lost: "
                f"{result.lost[:3]})",
            )
            if degraded_seen:
                check(True, "one killed host read degraded, not down")

            ok, status, health = wait_health(
                lambda s, h: s == 200
                and h.get("shards", {}).get("0", {}).get("state") == "live"
                and hosts[0][1] in h.get("lost_hosts", [])
            )
            check(ok, "killed host declared lost; shard 0 replaced onto "
                      "the standby")
            check(
                health.get("shards", {}).get("0", {}).get("host")
                == hosts[-1][1],
                "healthz maps shard 0 to the standby host",
            )
            health_snapshots["standby_replaced"] = health

            # ---- phase B: partition + second kill = quorum loss ------
            print("drill: partitioning shard 1, then SIGKILL host 2")
            proxy.partition()
            ok, status, health = wait_health(
                lambda s, h: h.get("shards", {}).get("1", {}).get("state")
                != "live"
            )
            check(ok, "partition detected by heartbeat silence alone")
            check(
                proxy.dropped_chunks > 0,
                f"the partition really dropped bytes "
                f"({proxy.dropped_chunks} chunks)",
            )
            health_snapshots["partitioned"] = health

            os.kill(hosts[2][0].pid, signal.SIGKILL)
            ok, status, health = wait_health(
                lambda s, h: s == 503 and h.get("reason") == "quorum_lost"
            )
            check(ok, "partition + second host kill reads 503 quorum_lost")
            health_snapshots["quorum_lost"] = health

            print("drill: healing the partition")
            proxy.heal()
            ok, status, health = wait_health(
                lambda s, h: s == 200
                and h.get("shards", {}).get("1", {}).get("state") == "live",
                timeout=60.0,
            )
            check(ok, "healed partition: shard 1 reconnected and quorum "
                      "restored")
            check(
                health.get("shards", {}).get("1", {}).get("restarts", 0) >= 1,
                "the reconnect is counted as a restart",
            )
            # Declaring host 2 lost takes host_loss_after failed connect
            # cycles; give the supervisor time to finish knocking.
            ok, status, health = wait_health(
                lambda s, h: s == 200 and hosts[2][1] in h.get("lost_hosts", [])
            )
            check(
                ok,
                "the second dead host stays listed as lost (no standby "
                "left) while the fleet reads degraded-not-down",
            )
            health_snapshots["healed"] = health

            # The partitioned host kept its service warm: re-adoption
            # must not have rebuilt it.
            load_b = LoadResult()
            pool = run_load(url, args.requests, load_b)
            for thread in pool:
                thread.join(timeout=300)
            check(
                load_b.completed == args.requests,
                f"zero lost requests after the heal: "
                f"{load_b.completed}/{args.requests} "
                f"({load_b.retried} retried, {len(load_b.lost)} lost)",
            )

            # ---- byte identity vs the unharmed control ---------------
            print("drill: comparing explanation weights with the control")
            try:
                fleet_weights = weights_for(url, CONTROL_RECORDS)
            except SystemExit as stop:
                check(False, f"fleet refused to serve weights: {stop}")
                fleet_weights = {}
            mismatched = [
                record for record in CONTROL_RECORDS
                if fleet_weights.get(record) != control_weights[record]
            ]
            check(
                not mismatched,
                f"weights byte-identical to the unharmed pipe run "
                f"({len(CONTROL_RECORDS)} records"
                + (f"; mismatched: {mismatched}" if mismatched else "")
                + ")",
            )

            # ---- drain -----------------------------------------------
            print("drill: SIGTERM drains the fleet")
            process.send_signal(signal.SIGTERM)
            try:
                code = process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
                code = None
            check(code == 0, f"SIGTERM: clean exit code (got {code})")
            survivors = [hosts[1], hosts[3]]  # hosts 0 and 2 were killed
            drained = 0
            for host_process, _, _ in survivors:
                try:
                    host_process.wait(timeout=30)
                    drained += 1
                except subprocess.TimeoutExpired:
                    pass
            check(
                drained == len(survivors),
                f"drain shut down {drained}/{len(survivors)} surviving "
                f"shard hosts",
            )
        finally:
            proxy.close()
            if process.poll() is None:
                process.kill()
                process.wait()
            for host_process, _, _ in hosts:
                if host_process.poll() is None:
                    host_process.kill()
                    host_process.wait()

        if args.artifacts_dir is not None:
            args.artifacts_dir.mkdir(parents=True, exist_ok=True)
            (args.artifacts_dir / "fleet_transcript.txt").write_text(
                "\n".join(transcript) + "\n"
            )
            (args.artifacts_dir / "fleet_supervisor_log.txt").write_text(
                "".join(server_log)
            )
            (args.artifacts_dir / "fleet_health_snapshots.json").write_text(
                json.dumps(health_snapshots, indent=2, sort_keys=True)
            )
            (args.artifacts_dir / "fleet_weights.json").write_text(
                json.dumps(
                    {"control": control_weights, "fleet": fleet_weights},
                    indent=2, sort_keys=True, default=str,
                )
            )
            print(f"artifacts kept in {args.artifacts_dir}")

    elapsed = time.monotonic() - started
    print(f"fleet_drill {'FAILED' if failures else 'passed'} in {elapsed:.0f}s")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
