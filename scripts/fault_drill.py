#!/usr/bin/env python
"""End-to-end fault-injection drill (the CI smoke job).

Exercises the whole fault-tolerance stack against a real (synthetic)
dataset in under a minute:

1. a clean baseline run;
2. the same run with a 20 %-flaky matcher behind the guard — must
   complete, with retries absorbed and anything else ledgered;
3. a checkpointed run killed after cell 2, then resumed — must equal the
   baseline exactly (modulo wall time and engine counters).

Exit code 0 = all three hold.  Run locally with::

    PYTHONPATH=src python scripts/fault_drill.py
"""

from __future__ import annotations

import dataclasses
import sys
import tempfile
from pathlib import Path

from repro.config import ExperimentConfig, METHOD_LIME, METHOD_SINGLE
from repro.evaluation.persistence import load_checkpoint, result_to_dict
from repro.evaluation.runner import ExperimentRunner
from repro.matchers.logistic import LogisticRegressionMatcher
from repro.testing.faults import FlakyMatcher

CONFIG = ExperimentConfig(
    name="fault-drill",
    per_label=4,
    lime_samples=24,
    size_cap=150,
    methods=(METHOD_SINGLE, METHOD_LIME),
)
DATASETS = ["S-BR"]


def comparable(result) -> dict:
    payload = result_to_dict(result)
    for dataset in payload["datasets"].values():
        dataset.pop("engine_stats", None)
        for metrics in dataset["metrics"]:
            metrics.pop("seconds", None)
        dataset["metrics"].sort(key=lambda m: (m["label"], m["method"]))
    return payload


class _Killed(Exception):
    pass


def main() -> int:
    failures: list[str] = []

    print("[1/3] clean baseline run")
    baseline = ExperimentRunner(CONFIG).run(DATASETS)
    if not baseline.datasets["S-BR"].metrics:
        failures.append("baseline produced no metrics")

    print("[2/3] 20%-flaky matcher behind the guard")
    flaky_config = dataclasses.replace(
        CONFIG, guard_max_retries=3, guard_backoff=0.0
    )
    flaky = ExperimentRunner(
        flaky_config,
        matcher_factory=lambda: FlakyMatcher(
            LogisticRegressionMatcher(), fail_rate=0.2, seed=1
        ),
    ).run(DATASETS)
    stats = flaky.engine_totals()
    print(f"      {stats.summary()}")
    print(f"      {flaky.ledger().summary()}")
    if not flaky.datasets["S-BR"].metrics:
        failures.append("flaky run produced no metrics")
    if stats.guard_retries == 0:
        failures.append("guard absorbed no retries at 20% fault rate")

    print("[3/3] kill after cell 2, then resume")
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        seen: list[tuple] = []

        def killer(code, label, method):
            seen.append((code, label, method))
            if len(seen) == 2:
                raise _Killed()

        try:
            ExperimentRunner(CONFIG, on_cell=killer).run(
                DATASETS, run_dir=str(run_dir)
            )
            failures.append("kill switch never fired")
        except _Killed:
            pass
        state = load_checkpoint(run_dir)
        print(f"      checkpoint holds {state.n_cells()} cells at kill time")
        resumed = ExperimentRunner(state.config).run(
            DATASETS, run_dir=str(run_dir), resume=True
        )
        if comparable(resumed) != comparable(baseline):
            failures.append("resumed run differs from uninterrupted baseline")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("fault drill passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
