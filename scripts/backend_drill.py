#!/usr/bin/env python
"""Kill-the-matcher chaos drill of backend serving (CI backend-chaos job).

Boots the real ``repro-em serve-matcher`` reference server from a saved
``--model-dir`` artifact, a real ``repro-em serve --http --shards 2
--backend host:port`` fleet on top of it, puts the fleet under sustained
load, SIGKILLs the matcher *server* process, and asserts the backend
layer's contract:

1. **zero lost requests** — every admitted request gets a terminal
   response; requests caught in the outage receive the *retryable*
   ``backend_unavailable`` 503 (or ride a transparent client reconnect)
   and every retry succeeds once the matcher is back;
2. **degraded, not down** — while the matcher is dead, shard breakers
   open and ``/healthz`` stays 200 with shards listing
   ``backend_unavailable``; the fleet never reports itself down;
3. **recovery** — restarting ``serve-matcher`` on the same address with
   the same artifact heals the fleet automatically: clients reconnect,
   half-open probes close the breakers, ``/healthz`` returns to fully
   healthy with no supervisor restart needed (the shards never died);
4. **identity** — the restarted server must present the *same* model
   fingerprint (same artifact), exercising the reconnect pin;
5. **clean drain** — SIGTERM drains the fleet and stops the matcher
   server, both with exit code 0.

Everything is observable from the outside; a failure reproduces.  Run
locally with::

    PYTHONPATH=src python scripts/backend_drill.py

Pass ``--artifacts-dir DIR`` to keep the server logs and the final
health JSON for CI upload.
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

SEED = 11
N_SHARDS = 2
#: The first six select the dataset/artifact (shared with ``train`` and
#: ``serve-matcher``); ``--samples`` only exists on ``serve``.
DATASET_ARGS = [
    "--dataset", "S-BR", "--size-cap", "150", "--seed", str(SEED),
    "--samples", "32",
]
SHARD_ARGS = [
    "--shards", str(N_SHARDS),
    "--heartbeat-interval", "0.1",
    "--heartbeat-timeout", "5.0",
    "--restart-backoff", "0.2",
    "--drain-timeout", "30",
]
#: Retryable wire codes during the outage window: the drill retries
#: these, and the retries must succeed — anything else is a lost request.
RETRYABLE = {
    "backend_unavailable", "matcher_unavailable", "matcher_timeout",
    "shard_failed", "overloaded", "cancelled",
}


def free_port() -> int:
    """Reserve an ephemeral port number for the matcher server."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _pump(process, collected: list[str]) -> None:
    def drain() -> None:
        for line in process.stderr:
            collected.append(line)

    threading.Thread(target=drain, daemon=True).start()


def boot_matcher(model_dir: Path, port: int) -> tuple:
    """Boot ``serve-matcher`` from the artifact; (process, log lines)."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve-matcher",
            *DATASET_ARGS[:6],  # dataset/size-cap/seed select the artifact
            "--model-dir", str(model_dir),
            "--host", "127.0.0.1", "--port", str(port),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    lines: list[str] = []
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        lines.append(line)
        if line.startswith("serving matcher on "):
            _pump(process, lines)
            return process, lines
        if not line and process.poll() is not None:
            break
    print("".join(lines), file=sys.stderr)
    raise SystemExit("serve-matcher did not come up")


def boot_fleet(store_dir: Path, backend: str) -> tuple:
    """Boot the sharded HTTP fleet against *backend*; (process, url, log)."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", *DATASET_ARGS,
            "--store-dir", str(store_dir), "--backend", backend,
            "--http", "127.0.0.1:0", *SHARD_ARGS,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    lines: list[str] = []
    deadline = time.monotonic() + 180
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        lines.append(line)
        if line.startswith("serving on "):
            _pump(process, lines)
            return process, line.split()[2], lines
        if not line and process.poll() is not None:
            break
    print("".join(lines), file=sys.stderr)
    raise SystemExit("serve --http --backend did not come up")


def get_json(url: str, timeout: float = 30.0) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post_explain(url: str, payload: dict, timeout: float = 120.0):
    request = urllib.request.Request(
        url + "/explain",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class LoadResult:
    """Per-request outcome ledger of the sustained load."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.completed = 0
        self.retried = 0
        self.lost: list[str] = []


def run_load(url: str, n_requests: int, result: LoadResult, threads: int = 4):
    """*n_requests* explain calls with retry-on-retryable, concurrently."""

    def one(record: int) -> None:
        payload = {"record": record % 100, "method": "single"}
        for attempt in range(10):
            try:
                status, body = post_explain(url, payload)
            except Exception as error:  # noqa: BLE001 - connection-level loss
                with result.lock:
                    result.lost.append(f"record {record}: transport {error}")
                return
            if status == 200:
                with result.lock:
                    result.completed += 1
                    if attempt:
                        result.retried += 1
                return
            if body.get("code") in RETRYABLE:
                time.sleep(0.3 * (attempt + 1))
                continue
            with result.lock:
                result.lost.append(
                    f"record {record}: terminal {status} {body.get('code')}"
                )
            return
        with result.lock:
            result.lost.append(f"record {record}: retries exhausted")

    pending = list(range(n_requests))
    pool: list[threading.Thread] = []
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                if not pending:
                    return
                record = pending.pop()
            # Pace the stream so the load spans the whole outage window
            # instead of draining before the kill lands.
            time.sleep(0.05)
            one(record)

    for _ in range(threads):
        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        pool.append(thread)
    return pool


def _fingerprint_of(banner: str) -> str:
    """The fingerprint token of a ``serving matcher on ...`` banner."""
    return banner.split("fingerprint ")[1].split(",")[0]


def backend_degraded_shards(health: dict) -> list[str]:
    """Shard ids whose inner health reports the backend unavailable."""
    return [
        shard_id
        for shard_id, entry in health.get("shards", {}).items()
        if entry.get("degraded") == "backend_unavailable"
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts-dir", type=Path, default=None,
        help="keep server logs and the final health JSON here for CI upload",
    )
    parser.add_argument("--requests", type=int, default=40)
    args = parser.parse_args(argv)
    failures: list[str] = []
    transcript: list[str] = []

    def check(condition: bool, what: str) -> None:
        line = f"  [{'ok' if condition else 'FAIL'}] {what}"
        print(line, flush=True)
        transcript.append(line)
        if not condition:
            failures.append(what)

    started = time.monotonic()
    final_health: dict = {}
    with tempfile.TemporaryDirectory() as root_text:
        root = Path(root_text)
        model_dir = root / "models"

        print("drill: training the artifact serve-matcher will load")
        trained = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "train",
                *DATASET_ARGS[:6], "--model-dir", str(model_dir),
            ],
            capture_output=True, text=True, timeout=600,
        )
        check(trained.returncode == 0, "train --model-dir saves the artifact")

        port = free_port()
        backend = f"127.0.0.1:{port}"
        matcher_proc, matcher_log = boot_matcher(model_dir, port)
        fingerprint_line = next(
            line for line in matcher_log if "fingerprint" in line
        )
        fleet_proc, url, fleet_log = boot_fleet(root / "store", backend)
        restarted_proc = None
        restart_log: list[str] = []
        try:
            print(f"drill: fleet up at {url} over matcher at {backend}")
            status, _ = post_explain(url, {"record": 0, "method": "single"})
            check(status == 200, "priming request succeeds")
            status, health = get_json(url + "/healthz")
            check(status == 200, "healthz is 200 with the matcher up")
            check(
                not backend_degraded_shards(health),
                "no shard reports backend_unavailable before the kill",
            )

            print("drill: sustained load, then SIGKILL the matcher server")
            result = LoadResult()
            pool = run_load(url, args.requests, result)
            time.sleep(0.5)  # let the load reach both shards
            matcher_proc.send_signal(signal.SIGKILL)
            matcher_proc.wait()

            # Shard breakers open as in-flight calls fail; /healthz must
            # show degradation while never reporting the fleet down.
            degraded_seen: list[str] = []
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, health = get_json(url + "/healthz")
                check_now = backend_degraded_shards(health)
                if status == 200 and check_now:
                    degraded_seen = check_now
                    break
                time.sleep(0.05)
            check(
                bool(degraded_seen),
                f"healthz 200 with shards degraded backend_unavailable "
                f"(saw {degraded_seen})",
            )

            print("drill: restarting serve-matcher on the same address")
            restarted_proc, restart_log = boot_matcher(model_dir, port)
            restarted_line = next(
                line for line in restart_log if "fingerprint" in line
            )
            check(
                _fingerprint_of(restarted_line)
                == _fingerprint_of(fingerprint_line),
                "restarted server presents the same model fingerprint",
            )

            recovered = False
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status, health = get_json(url + "/healthz")
                if (
                    status == 200
                    and not health.get("degraded")
                    and not backend_degraded_shards(health)
                ):
                    recovered = True
                    break
                time.sleep(0.1)
            check(recovered, "fleet healthz fully healthy after restart")
            restarts = [
                entry.get("restarts", 0)
                for entry in health.get("shards", {}).values()
            ]
            check(
                all(count == 0 for count in restarts),
                f"recovery needed no shard restarts (got {restarts}): the "
                f"clients reconnected",
            )

            for thread in pool:
                thread.join(timeout=300)
            check(
                result.completed == args.requests,
                f"zero lost requests: {result.completed}/{args.requests} "
                f"completed ({result.retried} retried, "
                f"{len(result.lost)} lost: {result.lost[:3]})",
            )
            status, _ = post_explain(url, {"record": 1, "method": "single"})
            check(status == 200, "post-recovery request succeeds")

            with urllib.request.urlopen(url + "/metrics", timeout=30) as resp:
                metrics_text = resp.read().decode("utf-8")
            check(
                "repro_backend_" in metrics_text,
                "metrics expose the per-backend series",
            )
            status, final_health = get_json(url + "/healthz")

            print("drill: SIGTERM drains the fleet, then the matcher server")
            fleet_proc.send_signal(signal.SIGTERM)
            try:
                code = fleet_proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                fleet_proc.kill()
                fleet_proc.wait()
                code = None
            check(code == 0, f"fleet SIGTERM: clean exit code (got {code})")
            restarted_proc.send_signal(signal.SIGTERM)
            try:
                code = restarted_proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                restarted_proc.kill()
                restarted_proc.wait()
                code = None
            check(code == 0, f"matcher SIGTERM: clean exit code (got {code})")
        finally:
            for process in (fleet_proc, matcher_proc, restarted_proc):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait()

        if args.artifacts_dir is not None:
            args.artifacts_dir.mkdir(parents=True, exist_ok=True)
            (args.artifacts_dir / "backend_transcript.txt").write_text(
                "\n".join(transcript) + "\n"
            )
            (args.artifacts_dir / "fleet_log.txt").write_text(
                "".join(fleet_log)
            )
            (args.artifacts_dir / "matcher_log.txt").write_text(
                "".join(matcher_log) + "\n--- restart ---\n"
                + "".join(restart_log)
            )
            (args.artifacts_dir / "backend_health.json").write_text(
                json.dumps(final_health, indent=2, sort_keys=True)
            )
            print(f"artifacts kept in {args.artifacts_dir}")

    elapsed = time.monotonic() - started
    print(
        f"backend_drill {'FAILED' if failures else 'passed'} in {elapsed:.0f}s"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
