#!/usr/bin/env python
"""Kill-a-shard chaos drill of multi-process serving (CI shard-chaos job).

Boots the real ``repro-em serve --http --shards 3`` CLI, puts it under
sustained load, SIGKILLs one shard *process* (pid taken from
``/healthz``, exactly what an OOM killer would do), and asserts the
supervisor's contract:

1. **zero lost requests** — every admitted request gets a terminal
   response; waiters stranded on the dead shard either fail over
   transparently or receive the *retryable* ``shard_failed`` 503, and
   every retry succeeds — no client is ever left hanging and no request
   silently vanishes;
2. **degraded, not down** — while the shard is dead, ``/healthz`` stays
   200 with the victim listed in ``degraded`` (the ring routes around
   it); it never reports the whole service down;
3. **recovery** — the supervisor restarts the shard (capped backoff) and
   ``/healthz`` returns to fully healthy with ``restarts`` incremented;
4. **observability** — ``/metrics`` rolls up per-shard series
   (``shard="N"`` labels) and counts the death and restart;
5. **clean drain** — SIGTERM still drains the whole fleet within its
   budget, exit code 0.

Everything is observable from the outside; a failure reproduces.  Run
locally with::

    PYTHONPATH=src python scripts/shard_drill.py

Pass ``--artifacts-dir DIR`` to keep the supervisor log and the final
metrics JSON for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

SEED = 11
N_SHARDS = 3
DATASET_ARGS = [
    "--dataset", "S-BR", "--size-cap", "150", "--samples", "32",
    "--seed", str(SEED),
]
SHARD_ARGS = [
    "--shards", str(N_SHARDS),
    "--heartbeat-interval", "0.1",
    "--heartbeat-timeout", "2.0",
    "--restart-backoff", "0.2",
    "--drain-timeout", "30",
]
#: Retryable wire codes: the drill retries these, and the retries must
#: succeed — anything else is a lost request.
RETRYABLE = {"shard_failed", "overloaded", "cancelled"}


def boot_http(store_dir: Path, model_dir: Path) -> tuple:
    """Boot the sharded server on an ephemeral port; (process, url, stderr)."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", *DATASET_ARGS,
            "--store-dir", str(store_dir), "--model-dir", str(model_dir),
            "--http", "127.0.0.1:0", *SHARD_ARGS,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    stderr_lines: list[str] = []
    address = None
    deadline = time.monotonic() + 180
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        stderr_lines.append(line)
        if line.startswith("serving on "):
            address = line.split()[2]
            break
        if not line and process.poll() is not None:
            break
    if address is None:
        print("".join(stderr_lines), file=sys.stderr)
        raise SystemExit("serve --http --shards did not come up")
    collected: list[str] = stderr_lines

    def pump() -> None:  # keep draining so the server never blocks on stderr
        for line in process.stderr:
            collected.append(line)

    threading.Thread(target=pump, daemon=True).start()
    return process, address, collected


def get_json(url: str, timeout: float = 30.0) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post_explain(url: str, payload: dict, timeout: float = 120.0) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + "/explain",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class LoadResult:
    """Per-request outcome ledger of the sustained load."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.completed = 0
        self.retried = 0
        self.lost: list[str] = []


def run_load(url: str, n_requests: int, result: LoadResult, threads: int = 4):
    """*n_requests* explain calls with retry-on-retryable, concurrently."""

    def one(record: int) -> None:
        payload = {"record": record % 100, "method": "single"}
        for attempt in range(6):
            try:
                status, body = post_explain(url, payload)
            except Exception as error:  # noqa: BLE001 - connection-level loss
                with result.lock:
                    result.lost.append(f"record {record}: transport {error}")
                return
            if status == 200:
                with result.lock:
                    result.completed += 1
                    if attempt:
                        result.retried += 1
                return
            if body.get("code") in RETRYABLE:
                time.sleep(0.2 * (attempt + 1))
                continue
            with result.lock:
                result.lost.append(
                    f"record {record}: terminal {status} {body.get('code')}"
                )
            return
        with result.lock:
            result.lost.append(f"record {record}: retries exhausted")

    pending = list(range(n_requests))
    pool: list[threading.Thread] = []
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                if not pending:
                    return
                record = pending.pop()
            one(record)

    for _ in range(threads):
        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        pool.append(thread)
    return pool


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts-dir", type=Path, default=None,
        help="keep the supervisor log and metrics JSON here for CI upload",
    )
    parser.add_argument("--requests", type=int, default=40)
    args = parser.parse_args(argv)
    failures: list[str] = []
    transcript: list[str] = []

    def check(condition: bool, what: str) -> None:
        line = f"  [{'ok' if condition else 'FAIL'}] {what}"
        print(line, flush=True)
        transcript.append(line)
        if not condition:
            failures.append(what)

    started = time.monotonic()
    metrics_document: dict = {}
    with tempfile.TemporaryDirectory() as root_text:
        root = Path(root_text)
        process, url, server_log = boot_http(root / "store", root / "models")
        try:
            print("drill: sharded server up; priming and reading /healthz")
            status, body = post_explain(url, {"record": 0, "method": "single"})
            check(status == 200, "priming request succeeds")
            status, health = get_json(url + "/healthz")
            check(status == 200, "healthz is 200 with all shards live")
            check(
                len(health.get("shards", {})) == N_SHARDS,
                f"healthz reports {N_SHARDS} shards",
            )
            victim_id = "0"
            victim_pid = health["shards"][victim_id]["pid"]
            check(bool(victim_pid), "healthz exposes the victim shard's pid")

            print(f"drill: sustained load, then SIGKILL shard {victim_id} "
                  f"(pid {victim_pid})")
            result = LoadResult()
            pool = run_load(url, args.requests, result)
            time.sleep(1.0)  # let the load reach every shard
            os.kill(victim_pid, signal.SIGKILL)

            # While the victim is down (slow-ish restart backoff would
            # widen this window; with 0.2s it's tight), the service must
            # not report itself down.
            degraded_seen = False
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, health = get_json(url + "/healthz")
                check_now = health.get("degraded")
                if status == 200 and check_now and victim_id in check_now:
                    degraded_seen = True
                    break
                if health.get("shards", {}).get(victim_id, {}).get("restarts"):
                    break  # already recovered — window missed, not a failure
                time.sleep(0.05)
            for thread in pool:
                thread.join(timeout=300)
            check(
                result.completed == args.requests,
                f"zero lost requests: {result.completed}/{args.requests} "
                f"completed ({result.retried} retried, "
                f"{len(result.lost)} lost: {result.lost[:3]})",
            )
            if degraded_seen:
                check(True, "healthz reported degraded (not down) while dead")

            print("drill: waiting for supervisor restart")
            recovered = False
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, health = get_json(url + "/healthz")
                shard = health.get("shards", {}).get(victim_id, {})
                if (
                    status == 200
                    and shard.get("state") == "live"
                    and shard.get("restarts", 0) >= 1
                    and not health.get("degraded")
                ):
                    recovered = True
                    break
                time.sleep(0.1)
            check(recovered, "killed shard restarted and healthz fully healthy")
            status, body = post_explain(url, {"record": 0, "method": "single"})
            check(status == 200, "post-recovery request succeeds")

            with urllib.request.urlopen(url + "/metrics", timeout=30) as resp:
                metrics_text = resp.read().decode("utf-8")
            check(
                all(f'shard="{i}"' in metrics_text for i in range(N_SHARDS)),
                "metrics roll up every shard with shard labels",
            )
            check(
                "repro_shard_restarts" in metrics_text,
                "metrics count the supervisor restart",
            )
            status, body = post_explain(url, {"op": "metrics"})
            check(status == 200, "metrics op returns the fleet JSON document")
            metrics_document = body.get("metrics", {})

            print("drill: SIGTERM drains the fleet")
            process.send_signal(signal.SIGTERM)
            try:
                code = process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
                code = None
            check(code == 0, f"SIGTERM: clean exit code (got {code})")
            log_text = "".join(server_log)
            check("drain:" in log_text, "drain summary printed")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        if args.artifacts_dir is not None:
            args.artifacts_dir.mkdir(parents=True, exist_ok=True)
            (args.artifacts_dir / "shard_transcript.txt").write_text(
                "\n".join(transcript) + "\n"
            )
            (args.artifacts_dir / "supervisor_log.txt").write_text(
                "".join(server_log)
            )
            (args.artifacts_dir / "shard_metrics.json").write_text(
                json.dumps(metrics_document, indent=2, sort_keys=True)
            )
            print(f"artifacts kept in {args.artifacts_dir}")

    elapsed = time.monotonic() - started
    print(f"shard_drill {'FAILED' if failures else 'passed'} in {elapsed:.0f}s")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
