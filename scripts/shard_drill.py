#!/usr/bin/env python
"""Kill-a-shard chaos drill of multi-process serving (CI shard-chaos job).

Boots the real ``repro-em serve --http --shards 3`` CLI, puts it under
sustained load, SIGKILLs one shard *process* (pid taken from
``/healthz``, exactly what an OOM killer would do), and asserts the
supervisor's contract:

1. **zero lost requests** — every admitted request gets a terminal
   response; waiters stranded on the dead shard either fail over
   transparently or receive the *retryable* ``shard_failed`` 503, and
   every retry succeeds — no client is ever left hanging and no request
   silently vanishes;
2. **degraded, not down** — while the shard is dead, ``/healthz`` stays
   200 with the victim listed in ``degraded`` (the ring routes around
   it); it never reports the whole service down;
3. **recovery** — the supervisor restarts the shard (capped backoff) and
   ``/healthz`` returns to fully healthy with ``restarts`` incremented;
4. **observability** — ``/metrics`` rolls up per-shard series
   (``shard="N"`` labels) and counts the death and restart;
5. **clean drain** — SIGTERM still drains the whole fleet within its
   budget, exit code 0.

Everything is observable from the outside; a failure reproduces.  Run
locally with::

    PYTHONPATH=src python scripts/shard_drill.py

``--transport tcp`` runs the identical drill over the cross-host fleet
path instead of spawned pipe shards: real ``serve-shard`` host processes
on localhost, a ``--fleet`` supervisor dialing them over TCP, and a
standby host that must adopt the victim's shard id after the SIGKILL
(host loss, not crash-restart).  The two transports must behave
identically from the outside — same zero-lost-request contract, same
degraded-not-down reading, same clean drain.

Pass ``--artifacts-dir DIR`` to keep the supervisor log and the final
metrics JSON for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

SEED = 11
N_SHARDS = 3
DATASET_ARGS = [
    "--dataset", "S-BR", "--size-cap", "150", "--samples", "32",
    "--seed", str(SEED),
]
SHARD_ARGS = [
    "--shards", str(N_SHARDS),
    "--heartbeat-interval", "0.1",
    "--heartbeat-timeout", "2.0",
    "--restart-backoff", "0.2",
    "--drain-timeout", "30",
]
FLEET_ARGS = [
    "--connect-timeout", "1.0",
    "--connect-budget", "2.0",
    "--host-loss-after", "2",
]
#: Retryable wire codes: the drill retries these, and the retries must
#: succeed — anything else is a lost request.
RETRYABLE = {"shard_failed", "host_lost", "overloaded", "cancelled"}


def _await_banner(process, prefix: str, what: str, timeout: float = 180.0):
    """Read stderr until the startup banner; returns (address, lines)."""
    stderr_lines: list[str] = []
    address = None
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        stderr_lines.append(line)
        if line.startswith(prefix):
            address = line[len(prefix):].split()[0]
            break
        if not line and process.poll() is not None:
            break
    if address is None:
        print("".join(stderr_lines), file=sys.stderr)
        raise SystemExit(f"{what} did not come up")

    def pump() -> None:  # keep draining so the server never blocks on stderr
        for line in process.stderr:
            stderr_lines.append(line)

    threading.Thread(target=pump, daemon=True).start()
    return address, stderr_lines


def boot_http(store_dir: Path, model_dir: Path, fleet_path: Path | None = None):
    """Boot the sharded server on an ephemeral port; (process, url, stderr)."""
    shard_args = list(SHARD_ARGS)
    if fleet_path is not None:
        shard_args += ["--fleet", str(fleet_path), *FLEET_ARGS]
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", *DATASET_ARGS,
            "--store-dir", str(store_dir), "--model-dir", str(model_dir),
            "--http", "127.0.0.1:0", *shard_args,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    address, collected = _await_banner(
        process, "serving on ", "serve --http --shards"
    )
    return process, address, collected


def spawn_shard_host(store_dir: Path | None = None):
    """One ``serve-shard`` host process; (process, "host:port", stderr)."""
    command = [sys.executable, "-m", "repro.cli", "serve-shard", "--port", "0"]
    if store_dir is not None:
        command += ["--store-dir", str(store_dir)]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    address, collected = _await_banner(
        process, "serving shard on ", "serve-shard"
    )
    return process, address, collected


def spawn_fleet(root: Path, n_shards: int, standbys: int = 1):
    """*n_shards* + *standbys* shard hosts and their fleet.json."""
    hosts = []
    for index in range(n_shards + standbys):
        hosts.append(spawn_shard_host(root / f"host{index}-store"))
    document = {
        "shards": [
            {
                "id": index,
                "host": hosts[index][1].rsplit(":", 1)[0],
                "port": int(hosts[index][1].rsplit(":", 1)[1]),
            }
            for index in range(n_shards)
        ],
        "standbys": [
            {
                "host": hosts[index][1].rsplit(":", 1)[0],
                "port": int(hosts[index][1].rsplit(":", 1)[1]),
            }
            for index in range(n_shards, n_shards + standbys)
        ],
    }
    fleet_path = root / "fleet.json"
    fleet_path.write_text(json.dumps(document, indent=2))
    return hosts, fleet_path


def get_json(url: str, timeout: float = 30.0) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post_explain(url: str, payload: dict, timeout: float = 120.0) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + "/explain",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class LoadResult:
    """Per-request outcome ledger of the sustained load."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.completed = 0
        self.retried = 0
        self.lost: list[str] = []


def run_load(url: str, n_requests: int, result: LoadResult, threads: int = 4):
    """*n_requests* explain calls with retry-on-retryable, concurrently."""

    def one(record: int) -> None:
        payload = {"record": record % 100, "method": "single"}
        for attempt in range(6):
            try:
                status, body = post_explain(url, payload)
            except Exception as error:  # noqa: BLE001 - connection-level loss
                with result.lock:
                    result.lost.append(f"record {record}: transport {error}")
                return
            if status == 200:
                with result.lock:
                    result.completed += 1
                    if attempt:
                        result.retried += 1
                return
            if body.get("code") in RETRYABLE:
                time.sleep(0.2 * (attempt + 1))
                continue
            with result.lock:
                result.lost.append(
                    f"record {record}: terminal {status} {body.get('code')}"
                )
            return
        with result.lock:
            result.lost.append(f"record {record}: retries exhausted")

    pending = list(range(n_requests))
    pool: list[threading.Thread] = []
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                if not pending:
                    return
                record = pending.pop()
            one(record)

    for _ in range(threads):
        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        pool.append(thread)
    return pool


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts-dir", type=Path, default=None,
        help="keep the supervisor log and metrics JSON here for CI upload",
    )
    parser.add_argument("--requests", type=int, default=40)
    parser.add_argument(
        "--transport", choices=("pipe", "tcp"), default="pipe",
        help="pipe: spawned shard processes (default); tcp: serve-shard "
             "host processes behind --fleet, with a standby replacing "
             "the killed host",
    )
    args = parser.parse_args(argv)
    failures: list[str] = []
    transcript: list[str] = []

    def check(condition: bool, what: str) -> None:
        line = f"  [{'ok' if condition else 'FAIL'}] {what}"
        print(line, flush=True)
        transcript.append(line)
        if not condition:
            failures.append(what)

    started = time.monotonic()
    metrics_document: dict = {}
    with tempfile.TemporaryDirectory() as root_text:
        root = Path(root_text)
        hosts: list = []
        fleet_path = None
        if args.transport == "tcp":
            print(f"drill: spawning {N_SHARDS} serve-shard hosts + 1 standby")
            hosts, fleet_path = spawn_fleet(root, N_SHARDS, standbys=1)
        process, url, server_log = boot_http(
            root / "store", root / "models", fleet_path
        )
        try:
            print("drill: sharded server up; priming and reading /healthz")
            status, body = post_explain(url, {"record": 0, "method": "single"})
            check(status == 200, "priming request succeeds")
            status, health = get_json(url + "/healthz")
            check(status == 200, "healthz is 200 with all shards live")
            check(
                len(health.get("shards", {})) == N_SHARDS,
                f"healthz reports {N_SHARDS} shards",
            )
            victim_id = "0"
            if args.transport == "tcp":
                # The victim is the whole host process, whose pid the
                # drill owns; health instead names its host address.
                victim_pid = hosts[0][0].pid
                check(
                    health["shards"][victim_id]["host"] == hosts[0][1],
                    "healthz maps the victim shard to its fleet host",
                )
            else:
                victim_pid = health["shards"][victim_id]["pid"]
                check(
                    bool(victim_pid), "healthz exposes the victim shard's pid"
                )

            print(f"drill: sustained load, then SIGKILL shard {victim_id} "
                  f"(pid {victim_pid})")
            result = LoadResult()
            pool = run_load(url, args.requests, result)
            time.sleep(1.0)  # let the load reach every shard
            os.kill(victim_pid, signal.SIGKILL)

            # While the victim is down (slow-ish restart backoff would
            # widen this window; with 0.2s it's tight), the service must
            # not report itself down.
            degraded_seen = False
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, health = get_json(url + "/healthz")
                check_now = health.get("degraded")
                if status == 200 and check_now and victim_id in check_now:
                    degraded_seen = True
                    break
                if health.get("shards", {}).get(victim_id, {}).get("restarts"):
                    break  # already recovered — window missed, not a failure
                time.sleep(0.05)
            for thread in pool:
                thread.join(timeout=300)
            check(
                result.completed == args.requests,
                f"zero lost requests: {result.completed}/{args.requests} "
                f"completed ({result.retried} retried, "
                f"{len(result.lost)} lost: {result.lost[:3]})",
            )
            if degraded_seen:
                check(True, "healthz reported degraded (not down) while dead")

            print("drill: waiting for supervisor restart")
            recovered = False
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, health = get_json(url + "/healthz")
                shard = health.get("shards", {}).get(victim_id, {})
                if (
                    status == 200
                    and shard.get("state") == "live"
                    and shard.get("restarts", 0) >= 1
                    and not health.get("degraded")
                ):
                    recovered = True
                    break
                time.sleep(0.1)
            check(recovered, "killed shard restarted and healthz fully healthy")
            if args.transport == "tcp":
                status, health = get_json(url + "/healthz")
                check(
                    hosts[0][1] in health.get("lost_hosts", []),
                    "healthz lists the killed host as lost",
                )
                check(
                    health["shards"][victim_id]["host"] == hosts[-1][1],
                    "victim shard id was replaced onto the standby host",
                )
                check(
                    health.get("standbys_available") == 0,
                    "the standby pool is spent",
                )
            status, body = post_explain(url, {"record": 0, "method": "single"})
            check(status == 200, "post-recovery request succeeds")

            with urllib.request.urlopen(url + "/metrics", timeout=30) as resp:
                metrics_text = resp.read().decode("utf-8")
            check(
                all(f'shard="{i}"' in metrics_text for i in range(N_SHARDS)),
                "metrics roll up every shard with shard labels",
            )
            check(
                "repro_shard_restarts" in metrics_text,
                "metrics count the supervisor restart",
            )
            if args.transport == "tcp":
                check(
                    'host="' in metrics_text,
                    "remote shard series carry host labels",
                )
            status, body = post_explain(url, {"op": "metrics"})
            check(status == 200, "metrics op returns the fleet JSON document")
            metrics_document = body.get("metrics", {})

            print("drill: SIGTERM drains the fleet")
            process.send_signal(signal.SIGTERM)
            try:
                code = process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
                code = None
            check(code == 0, f"SIGTERM: clean exit code (got {code})")
            log_text = "".join(server_log)
            check("drain:" in log_text, "drain summary printed")
            if args.transport == "tcp":
                # The supervisor's drain decommissions every adopted
                # host: their processes must exit on their own.
                drained_hosts = 0
                for host_process, _, _ in hosts[1:]:
                    try:
                        host_process.wait(timeout=30)
                        drained_hosts += 1
                    except subprocess.TimeoutExpired:
                        pass
                check(
                    drained_hosts == len(hosts) - 1,
                    f"drain shut down {drained_hosts}/{len(hosts) - 1} "
                    f"surviving shard hosts",
                )
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            for host_process, _, _ in hosts:
                if host_process.poll() is None:
                    host_process.kill()
                    host_process.wait()

        if args.artifacts_dir is not None:
            args.artifacts_dir.mkdir(parents=True, exist_ok=True)
            (args.artifacts_dir / "shard_transcript.txt").write_text(
                "\n".join(transcript) + "\n"
            )
            (args.artifacts_dir / "supervisor_log.txt").write_text(
                "".join(server_log)
            )
            (args.artifacts_dir / "shard_metrics.json").write_text(
                json.dumps(metrics_document, indent=2, sort_keys=True)
            )
            print(f"artifacts kept in {args.artifacts_dir}")

    elapsed = time.monotonic() - started
    print(
        f"shard_drill ({args.transport}) "
        f"{'FAILED' if failures else 'passed'} in {elapsed:.0f}s"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
