"""Tests for :class:`repro.obs.progress.ProgressTracker`."""

import pytest

from repro.obs import ProgressTracker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestProgressTracker:
    def test_fraction_and_done(self):
        tracker = ProgressTracker(10, clock=FakeClock())
        assert tracker.fraction == 0.0
        tracker.advance(4)
        assert tracker.done == 4
        assert tracker.fraction == pytest.approx(0.4)

    def test_empty_total_is_complete(self):
        tracker = ProgressTracker(0, clock=FakeClock())
        assert tracker.fraction == 1.0
        assert tracker.eta_seconds() == 0.0

    def test_rate_from_single_sample(self):
        clock = FakeClock()
        tracker = ProgressTracker(100, clock=clock)
        clock.tick(2.0)
        tracker.advance(10)  # 5 items/s
        assert tracker.rate() == pytest.approx(5.0)

    def test_rate_smooths_with_ema(self):
        clock = FakeClock()
        tracker = ProgressTracker(100, clock=clock)
        clock.tick(1.0)
        tracker.advance(10)  # 10/s seeds the EMA
        clock.tick(1.0)
        tracker.advance(20)  # 20/s sample
        assert 10.0 < tracker.rate() < 20.0

    def test_eta_none_before_any_sample(self):
        tracker = ProgressTracker(10, clock=FakeClock())
        assert tracker.eta_seconds() is None

    def test_eta_from_rate(self):
        clock = FakeClock()
        tracker = ProgressTracker(100, clock=clock)
        clock.tick(2.0)
        tracker.advance(20)  # 10/s, 80 remaining
        assert tracker.eta_seconds() == pytest.approx(8.0)

    def test_eta_zero_when_done(self):
        clock = FakeClock()
        tracker = ProgressTracker(4, clock=clock)
        clock.tick(1.0)
        tracker.advance(4)
        assert tracker.eta_seconds() == 0.0

    def test_elapsed_tracks_clock(self):
        clock = FakeClock()
        tracker = ProgressTracker(10, clock=clock)
        clock.tick(3.5)
        assert tracker.elapsed() == pytest.approx(3.5)

    def test_render_includes_counts_rate_and_eta(self):
        clock = FakeClock()
        tracker = ProgressTracker(100, clock=clock)
        clock.tick(1.0)
        tracker.advance(25)
        text = tracker.render()
        assert "25/100" in text
        assert "25.0%" in text
        assert "25.0/s" in text
        assert "ETA 3s" in text

    def test_render_before_samples_has_no_rate(self):
        tracker = ProgressTracker(10, clock=FakeClock())
        assert tracker.render() == "0/10 (0.0%)"

    def test_zero_advance_keeps_rate(self):
        clock = FakeClock()
        tracker = ProgressTracker(10, clock=clock)
        clock.tick(1.0)
        tracker.advance(5)
        rate = tracker.rate()
        clock.tick(1.0)
        tracker.advance(0)
        assert tracker.rate() == rate

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            ProgressTracker(-1)

    def test_negative_advance_rejected(self):
        tracker = ProgressTracker(10, clock=FakeClock())
        with pytest.raises(ValueError):
            tracker.advance(-1)
