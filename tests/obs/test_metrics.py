"""Tests of the metrics registry: instruments, atomicity, exporters."""

import json
import pickle
import re
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.export import (
    METRICS_FORMAT_VERSION,
    save_json,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestInstruments:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "a counter", component="x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_set_inc_dec_and_high_water(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8
        gauge.set_max(5)
        assert gauge.value == 8
        gauge.set_max(11)
        assert gauge.value == 11

    def test_histogram_buckets_are_cumulative(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = histogram.value
        assert snapshot["buckets"] == [(0.1, 1), (1.0, 3), (10.0, 4)]
        assert snapshot["count"] == 5
        assert snapshot["sum"] == pytest.approx(56.05)
        assert snapshot["max"] == 50.0

    def test_same_coordinates_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", component="x")
        b = registry.counter("c_total", component="x")
        c = registry.counter("c_total", component="y")
        assert a is b
        assert a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ConfigurationError):
            registry.gauge("name")

    def test_next_instance_is_sequential_per_component(self):
        registry = MetricsRegistry()
        assert registry.next_instance("engine") == "0"
        assert registry.next_instance("engine") == "1"
        assert registry.next_instance("store") == "0"


class TestDisabledRegistry:
    def test_updates_are_no_ops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h")
        counter.inc(5)
        gauge.set(3)
        gauge.set_max(9)
        histogram.observe(1.0)
        registry.bulk([(counter, 7), (histogram, 2.0)])
        assert counter.value == 0
        assert gauge.value == 0
        assert histogram.value["count"] == 0


class TestAtomicOperations:
    def test_bulk_read_drain(self):
        registry = MetricsRegistry()
        a = registry.counter("a_total")
        b = registry.counter("b_total")
        registry.bulk([(a, 2), (b, 3)])
        assert registry.read(a, b) == [2, 3]
        assert registry.drain(a, b) == [2, 3]
        assert registry.read(a, b) == [0, 0]

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        histogram = registry.histogram("h")
        counter.inc()
        histogram.observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert histogram.value["count"] == 0

    def test_hammer_exact_counts(self):
        """N threads hammering shared instruments lose no update."""
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", component="test")
        histogram = registry.histogram(
            "latency_seconds", component="test", buckets=DEFAULT_BUCKETS
        )
        n_threads, n_iterations = 8, 500
        barrier = threading.Barrier(n_threads)

        def worker() -> None:
            barrier.wait()
            for _ in range(n_iterations):
                counter.inc()
                registry.bulk([(counter, 2), (histogram, 0.01)])

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 3 * n_threads * n_iterations
        snapshot = histogram.value
        assert snapshot["count"] == n_threads * n_iterations
        assert snapshot["sum"] == pytest.approx(0.01 * snapshot["count"])

    def test_snapshot_never_tears(self):
        """a and b move together under bulk; every read sees a == b."""
        registry = MetricsRegistry()
        a = registry.counter("a_total")
        b = registry.counter("b_total")
        stop = threading.Event()
        torn: list[tuple] = []

        def writer() -> None:
            while not stop.is_set():
                registry.bulk([(a, 1), (b, 1)])

        def reader() -> None:
            for _ in range(2000):
                seen_a, seen_b = registry.read(a, b)
                if seen_a != seen_b:
                    torn.append((seen_a, seen_b))
            stop.set()

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert torn == []


class TestPickling:
    def test_registry_roundtrip_keeps_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", component="engine")
        counter.inc(7)
        restored = pickle.loads(pickle.dumps(registry))
        copy = restored.counter("c_total", component="engine")
        assert copy.value == 7
        copy.inc()  # the rebuilt lock works
        assert copy.value == 8


class TestExporters:
    @pytest.fixture()
    def registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_requests_total", "Requests", component="engine", instance="0"
        ).inc(3)
        registry.gauge("repro_depth", "Depth", component="service").set(2)
        histogram = registry.histogram(
            "repro_stage_seconds", "Stage time",
            buckets=(0.1, 1.0), component="engine", stage="predict",
        )
        histogram.observe(0.05)
        histogram.observe(5.0)
        return registry

    def test_prometheus_text_structure(self, registry):
        text = to_prometheus(registry)
        assert "# TYPE repro_requests_total counter" in text
        assert (
            'repro_requests_total{component="engine",instance="0"} 3' in text
        )
        assert "# TYPE repro_depth gauge" in text
        assert 'repro_depth{component="service"} 2' in text
        assert "# TYPE repro_stage_seconds histogram" in text
        assert (
            'repro_stage_seconds_bucket{component="engine",le="1",'
            'stage="predict"} 1' in text
        )
        assert (
            'repro_stage_seconds_bucket{component="engine",le="+Inf",'
            'stage="predict"} 2' in text
        )
        assert (
            'repro_stage_seconds_count{component="engine",stage="predict"} 2'
            in text
        )
        # Every non-comment line parses as "<series>{labels} <value>".
        pattern = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
        )
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            assert pattern.match(line), line

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", component='we"ird\\x').inc()
        text = to_prometheus(registry)
        assert 'component="we\\"ird\\\\x"' in text

    def test_json_export_and_save(self, registry, tmp_path):
        payload = to_json(registry)
        assert payload["format_version"] == METRICS_FORMAT_VERSION
        by_name = {f["name"]: f for f in payload["metrics"]}
        assert by_name["repro_requests_total"]["samples"][0]["value"] == 3
        histogram = by_name["repro_stage_seconds"]["samples"][0]["value"]
        assert histogram["count"] == 2
        assert histogram["buckets"] == [
            {"le": 0.1, "count": 1},
            {"le": 1.0, "count": 1},
        ]
        path = save_json(registry, tmp_path / "sub" / "metrics.json")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(payload)
        )
