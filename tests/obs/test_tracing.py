"""Tests of the span tracer: nesting, ring buffer, thread isolation."""

import json
import threading

import pytest

from repro.obs.tracing import (
    TRACE_FORMAT_VERSION,
    Tracer,
    _NULL_SPAN,
    trace as global_trace,
)


@pytest.fixture()
def tracer():
    return Tracer(enabled=True)


class TestNesting:
    def test_children_nest_under_open_parent(self, tracer):
        with tracer.span("root", kind="outer"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        roots = tracer.roots()
        assert [span.name for span in roots] == ["root"]
        root = roots[0]
        assert root.attrs == {"kind": "outer"}
        assert [child.name for child in root.children] == ["child", "sibling"]
        assert [g.name for g in root.children[0].children] == ["grandchild"]
        assert root.end is not None and root.duration >= 0

    def test_find_walks_depth_first(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("a"):
                    pass
        root = tracer.roots()[0]
        assert len(root.find("a")) == 2
        assert len(root.find("b")) == 1
        assert root.find("missing") == []

    def test_exception_tags_error_and_unwinds(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        root = tracer.roots()[0]
        assert root.attrs["error"] == "ValueError"
        assert root.children[0].attrs["error"] == "ValueError"
        # The stack unwound fully: the next span is a fresh root.
        with tracer.span("next"):
            pass
        assert [span.name for span in tracer.roots()] == ["root", "next"]

    def test_set_attaches_attributes(self, tracer):
        with tracer.span("root") as span:
            span.set(n=3).set(side="left")
        assert tracer.roots()[0].attrs == {"n": 3, "side": "left"}


class TestLifecycle:
    def test_disabled_tracer_hands_out_the_null_span(self):
        tracer = Tracer()
        assert tracer.span("anything", n=1) is _NULL_SPAN
        with tracer.span("anything") as span:
            assert span.set(x=1) is _NULL_SPAN
        assert tracer.roots() == []

    def test_global_tracer_is_disabled_by_default(self):
        assert global_trace.enabled is False

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(enabled=True, ring_size=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.roots()] == ["s2", "s3", "s4"]

    def test_enable_can_resize_and_clear_empties(self, tracer):
        with tracer.span("a"):
            pass
        tracer.enable(ring_size=8)
        assert len(tracer.roots()) == 1
        tracer.clear()
        assert tracer.roots() == []

    def test_thread_spans_form_separate_trees(self, tracer):
        barrier = threading.Barrier(2)

        def worker(name: str) -> None:
            with tracer.span(name):
                barrier.wait()  # both spans are open simultaneously
                with tracer.span(f"{name}-child"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = tracer.roots()
        assert sorted(span.name for span in roots) == ["t0", "t1"]
        for root in roots:
            assert [c.name for c in root.children] == [f"{root.name}-child"]


class TestExport:
    def test_export_shape_and_save(self, tracer, tmp_path):
        with tracer.span("root", side="left"):
            with tracer.span("child"):
                pass
        payload = tracer.export()
        assert payload["format_version"] == TRACE_FORMAT_VERSION
        (root,) = payload["spans"]
        assert root["name"] == "root"
        assert root["attrs"] == {"side": "left"}
        assert root["children"][0]["name"] == "child"
        assert root["duration"] >= root["children"][0]["duration"]
        path = tracer.save(tmp_path / "sub" / "trace.json")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(payload)
        )
