"""End-to-end observability: instruments and spans across real layers.

Covers the cross-layer contracts no unit test can:

* an N-thread hammer through a shared :class:`PredictionEngine` keeps the
  registry counters **exact** (the accounting invariant holds under any
  interleaving) and fills the stage histograms;
* a traced experiment run produces one nested span tree per dataset —
  runner (``dataset`` → ``cell``) → pipeline (``landmark`` →
  ``generation`` / ``reconstruction`` / ``prediction`` /
  ``surrogate_fit``) → guard (``guard_call``);
* the serving endpoints expose the registry (``GET /metrics`` Prometheus
  text, ``{"op": "metrics"}`` JSON) and ``GET /healthz`` degrades to 503
  while the matcher circuit breaker is open;
* observability never changes results: surrogate weights are
  bit-identical with tracing + metrics on or off.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.core.engine import EngineConfig, PredictionEngine
from repro.core.landmark import LandmarkExplainer
from repro.evaluation.runner import ExperimentRunner
from repro.explainers.lime_text import LimeConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import trace
from repro.service.server import handle_payload, serve_http
from repro.service.service import ExplanationService
from repro.testing.faults import FlakyMatcher


class TestEngineHammer:
    def test_counters_exact_under_threads(self, beer_matcher, beer_dataset):
        registry = MetricsRegistry()
        engine = PredictionEngine(
            beer_matcher, EngineConfig(batch_size=16), metrics=registry
        )
        n_threads, per_thread = 6, 40
        pairs = list(beer_dataset.pairs[: n_threads * per_thread])
        barrier = threading.Barrier(n_threads)

        def worker(index: int) -> None:
            barrier.wait()
            chunk = pairs[index * per_thread : (index + 1) * per_thread]
            for pair in chunk:
                engine.predict_one(pair)
            engine.predict_pairs(chunk)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = engine.stats
        # Exact: every thread requested per_thread singles + one batch.
        assert stats.requested == 2 * n_threads * per_thread
        # The accounting invariant holds under any interleaving.
        assert stats.calls_issued + stats.calls_saved == stats.requested
        assert stats.calls_saved == stats.dedup_saved + stats.cache_hits
        # The second pass re-requests every pair: at least half the
        # requests were answered without a matcher call.
        assert stats.cache_hits >= n_threads * per_thread
        # The same numbers are live in the registry's Prometheus families.
        families = {f["name"]: f for f in registry.collect()}
        (labels, value) = families["repro_engine_requests_total"]["samples"][0]
        assert labels["component"] == "engine"
        assert value == stats.requested
        predict = [
            value
            for labels, value in families["repro_stage_seconds"]["samples"]
            if labels.get("stage") == "predict"
        ]
        assert predict and predict[0]["count"] == stats.batches >= 1

    def test_guard_counters_land_in_the_registry(
        self, beer_matcher, beer_dataset
    ):
        registry = MetricsRegistry()
        flaky = FlakyMatcher(beer_matcher, fail_rate=0.0, fail_first=2)
        engine = PredictionEngine(
            flaky,
            EngineConfig(max_retries=2, trip_after=100),
            metrics=registry,
        )
        engine.predict_pairs(beer_dataset.pairs[:4])
        stats = engine.stats
        assert stats.guard_retries == 2
        assert stats.guard_failures == 2
        families = {f["name"]: f for f in registry.collect()}
        assert families["repro_guard_retries_total"]["samples"][0][1] == 2
        assert families["repro_guard_failures_total"]["samples"][0][1] == 2


class TestRunnerTrace:
    @pytest.fixture(scope="class")
    def traced_run(self):
        config = ExperimentConfig(
            name="obs", per_label=2, lime_samples=16, size_cap=120,
            methods=("single",), guard_max_retries=1,
        )
        registry = MetricsRegistry()
        trace.enable()
        trace.clear()
        try:
            result = ExperimentRunner(config, metrics=registry).run_dataset(
                "S-BR"
            )
            roots = trace.roots()
        finally:
            trace.disable()
            trace.clear()
        return result, registry, roots

    def test_span_tree_covers_runner_engine_guard(self, traced_run):
        _, _, roots = traced_run
        datasets = [span for span in roots if span.name == "dataset"]
        assert len(datasets) == 1
        dataset_span = datasets[0]
        cells = [c for c in dataset_span.children if c.name == "cell"]
        assert len(cells) == 2  # (match, non_match) x ("single",)
        for stage in (
            "landmark", "generation", "reconstruction",
            "prediction", "surrogate_fit", "guard_call",
        ):
            assert dataset_span.find(stage), f"missing {stage} under dataset"
        # Nesting is real: generation sits under landmark, guard under
        # prediction, all inside a cell.
        landmark = cells[0].find("landmark")[0]
        assert landmark.find("generation")
        prediction = landmark.find("prediction")[0]
        assert prediction.find("guard_call")
        assert landmark.find("surrogate_fit")

    def test_runner_counters_match_the_grid(self, traced_run):
        result, registry, _ = traced_run
        families = {f["name"]: f for f in registry.collect()}
        cells = families["repro_runner_cells_total"]["samples"][0][1]
        assert cells == 2
        records = families["repro_runner_records_total"]["samples"][0][1]
        assert records == sum(
            metrics.n_records for metrics in result.metrics.values()
        )
        cell_hist = [
            value
            for labels, value in families["repro_stage_seconds"]["samples"]
            if labels.get("component") == "runner"
        ]
        assert cell_hist and cell_hist[0]["count"] == 2


class TestServingEndpoints:
    @pytest.fixture()
    def service(self, beer_matcher):
        with ExplanationService(beer_matcher) as svc:
            yield svc

    @pytest.fixture()
    def http_server(self, service, beer_dataset):
        defaults = {
            "method": "single", "samples": 24, "explainer": "lime", "seed": 0,
        }
        server = serve_http(service, beer_dataset, defaults, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield service, f"http://{host}:{port}"
        server.shutdown()
        server.server_close()

    def test_metrics_endpoint_serves_prometheus_text(
        self, http_server, beer_dataset
    ):
        service, url = http_server
        body = json.dumps({"record": 0, "samples": 24}).encode("utf-8")
        request = urllib.request.Request(
            f"{url}/explain", data=body, method="POST"
        )
        with urllib.request.urlopen(request, timeout=60):
            pass
        with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        assert "# TYPE repro_service_requests_total counter" in text
        assert "repro_engine_requests_total" in text
        assert "repro_service_request_seconds_bucket" in text

    def test_metrics_op_returns_json_snapshot(self, service):
        response = handle_payload(service, {"op": "metrics", "id": "m1"})
        assert response["ok"] and response["id"] == "m1"
        names = {f["name"] for f in response["metrics"]["metrics"]}
        assert "repro_service_requests_total" in names
        assert "repro_engine_requests_total" in names

    def test_healthz_degrades_while_breaker_is_open(self, http_server):
        service, url = http_server
        with urllib.request.urlopen(f"{url}/healthz", timeout=30) as response:
            healthy = json.loads(response.read())
        assert healthy["ok"] is True and "degraded" not in healthy
        service.engine.guard._state = "open"
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"{url}/healthz", timeout=30)
            assert info.value.code == 503
            degraded = json.loads(info.value.read())
            assert degraded["ok"] is False
            assert degraded["degraded"] == "breaker_open"
        finally:
            service.engine.guard._state = "closed"


class TestResultsAreBitIdentical:
    def test_weights_identical_with_obs_on_and_off(
        self, beer_matcher, non_match_pair
    ):
        def weights(registry_enabled: bool, tracing: bool) -> np.ndarray:
            registry = MetricsRegistry(enabled=registry_enabled)
            if tracing:
                trace.enable()
                trace.clear()
            try:
                explainer = LandmarkExplainer(
                    beer_matcher,
                    lime_config=LimeConfig(n_samples=32, seed=0),
                    seed=0,
                    engine=PredictionEngine(beer_matcher, metrics=registry),
                )
                dual = explainer.explain(non_match_pair)
            finally:
                if tracing:
                    trace.disable()
                    trace.clear()
            return np.concatenate(
                [
                    dual.left_landmark.explanation.weights,
                    dual.right_landmark.explanation.weights,
                ]
            )

        baseline = weights(registry_enabled=False, tracing=False)
        with_metrics = weights(registry_enabled=True, tracing=False)
        with_everything = weights(registry_enabled=True, tracing=True)
        assert np.array_equal(baseline, with_metrics)
        assert np.array_equal(baseline, with_everything)
