"""The backend failure taxonomy, end to end.

Each transport failure mode must map to one exception class, the right
``retryable`` flag and the right HTTP status — timeouts are not
connection losses are not protocol violations, because clients retry
them differently.  The chaos modes drive the *real* client against a
*really* misbehaving server.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.backends.client import RemoteBackend, RemoteBackendConfig
from repro.backends.server import MatcherServer
from repro.exceptions import (
    BackendProtocolError,
    BackendUnavailableError,
    MatcherTimeoutError,
    is_retryable,
)
from repro.service.server import http_status_for
from repro.testing.chaos import (
    backend_disconnect,
    backend_garbage,
    backend_latency,
)

from tests.backends.test_remote import RecordingMatcher


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _config(**overrides) -> RemoteBackendConfig:
    base = dict(
        connect_timeout=1.0, call_timeout=5.0, max_retries=0,
        backoff=0.01, backoff_max=0.02, trip_after=100,
    )
    base.update(overrides)
    return RemoteBackendConfig(**base)


class TestTaxonomy:
    def test_connection_refused_is_unavailable(self):
        backend = RemoteBackend(("127.0.0.1", _free_port()), config=_config())
        try:
            with pytest.raises(BackendUnavailableError) as info:
                backend.predict_proba(["p"])
        finally:
            backend.close()
        assert is_retryable(info.value)
        assert http_status_for(info.value.code) == 503

    def test_response_timeout_is_matcher_timeout(self):
        chaos = backend_latency(delay_seconds=5.0)
        with MatcherServer(RecordingMatcher(), chaos=chaos) as server:
            backend = RemoteBackend(
                server.address, config=_config(call_timeout=0.2),
            )
            try:
                with pytest.raises(MatcherTimeoutError) as info:
                    backend.predict_proba(["p"])
            finally:
                backend.close()
        assert is_retryable(info.value)
        assert http_status_for(info.value.code) == 504

    def test_mid_frame_disconnect_is_unavailable(self):
        with MatcherServer(
            RecordingMatcher(), chaos=backend_disconnect(after_requests=1),
        ) as server:
            backend = RemoteBackend(server.address, config=_config())
            try:
                with pytest.raises(BackendUnavailableError) as info:
                    backend.predict_proba(["p"])
            finally:
                backend.close()
        assert is_retryable(info.value)
        assert http_status_for(info.value.code) == 503

    def test_garbage_frame_is_protocol_error(self):
        with MatcherServer(
            RecordingMatcher(), chaos=backend_garbage(after_requests=1),
        ) as server:
            backend = RemoteBackend(
                server.address, config=_config(max_retries=3),
            )
            try:
                with pytest.raises(BackendProtocolError) as info:
                    backend.predict_proba(["p"])
                # Fail-fast: a garbage-speaking peer burns no retries.
                assert backend.guard_stats.guard_retries == 0
            finally:
                backend.close()
        assert not is_retryable(info.value)
        assert http_status_for(info.value.code) == 502

    def test_retryable_flags_name_the_transient_layer(self):
        assert BackendUnavailableError.retryable is True
        assert MatcherTimeoutError.retryable is True
        assert BackendProtocolError.retryable is False


class TestRecovery:
    def test_disconnect_heals_via_retry_and_reconnect(self):
        matcher = RecordingMatcher()
        with MatcherServer(
            matcher, chaos=backend_disconnect(after_requests=1),
        ) as server:
            backend = RemoteBackend(
                server.address, config=_config(max_retries=2),
            )
            try:
                scores = backend.predict_proba(["p", "q"])
                np.testing.assert_array_equal(
                    scores, np.linspace(0.0, 1.0, 2)
                )
                assert backend.health()["reconnects"] == 1
                assert backend.guard_stats.guard_retries == 1
            finally:
                backend.close()

    def test_breaker_opens_then_recovers_on_restart(self):
        port = _free_port()
        config = _config(max_retries=0, trip_after=2, cooldown=1)
        backend = RemoteBackend(("127.0.0.1", port), config=config)
        try:
            for _ in range(2):
                with pytest.raises(BackendUnavailableError):
                    backend.predict_proba(["p"])
            health = backend.health()
            assert health["breaker"] == "open"
            assert health["available"] is False
            # Fast-fail while open (no dial attempt burns the cooldown).
            with pytest.raises(BackendUnavailableError):
                backend.predict_proba(["p"])
            # The server comes back on the same address: the half-open
            # probe passes and the breaker closes — automatic recovery.
            with MatcherServer(RecordingMatcher(), port=port) as _server:
                scores = backend.predict_proba(["p", "q", "r"])
                assert scores.shape == (3,)
                assert backend.health()["available"] is True
                assert backend.health()["breaker"] == "closed"
        finally:
            backend.close()

    def test_restart_with_different_model_is_refused(self, beer_matcher):
        port = _free_port()
        config = _config(max_retries=0)
        backend = RemoteBackend(("127.0.0.1", port), config=config)
        try:
            with MatcherServer(RecordingMatcher(), port=port) as _first:
                backend.predict_proba(["p"])
            with pytest.raises(BackendUnavailableError):
                backend.predict_proba(["p"])  # server gone
            # Same address, different weights: every cache downstream is
            # keyed by the old fingerprint, so the reconnect must refuse.
            with MatcherServer(beer_matcher, port=port) as _second:
                with pytest.raises(BackendProtocolError, match="changed"):
                    backend.predict_proba(["p"])
        finally:
            backend.close()
