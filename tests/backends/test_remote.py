"""RemoteBackend against a live MatcherServer: parity, pipelining, reuse."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.backends.base import DEFAULT_MAX_BATCH_SIZE
from repro.backends.client import (
    RemoteBackend,
    RemoteBackendConfig,
    parse_address,
)
from repro.backends.server import MatcherServer
from repro.core.columnar import ColumnarPairBatch, ValueColumn
from repro.core.serialize import matcher_fingerprint
from repro.exceptions import BackendProtocolError, ConfigurationError
from repro.obs.metrics import MetricsRegistry

#: Client config tuned for tests: fast failure, no long waits.
FAST_CONFIG = RemoteBackendConfig(
    connect_timeout=2.0, call_timeout=10.0, max_retries=1,
    backoff=0.01, backoff_max=0.05,
)


class RecordingMatcher:
    """A picklable double that records batch sizes and completion order.

    Batches whose first element is the string ``"slow"`` sleep before
    returning, so concurrent server workers finish out of submission
    order — the property the pipelined client must tolerate.
    """

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.batches: list[int] = []
        self.completed: list[str] = []
        self._lock = threading.Lock()

    def predict_proba(self, pairs):
        pairs = list(pairs)
        if pairs and pairs[0] == "slow":
            time.sleep(self.delay)
        with self._lock:
            self.batches.append(len(pairs))
            self.completed.append(str(pairs[0]) if pairs else "")
        return np.linspace(0.0, 1.0, len(pairs))


def _constant_batch(pair, n_rows: int) -> ColumnarPairBatch:
    """A columnar batch whose every row is *pair* itself."""
    columns = {
        (side, attribute): ValueColumn.constant(
            getattr(pair, side)[attribute], n_rows
        )
        for side in ("left", "right")
        for attribute in pair.schema.attributes
    }
    return ColumnarPairBatch(pair, columns, n_rows)


@pytest.fixture(scope="module")
def served(beer_matcher):
    with MatcherServer(beer_matcher, workers=2) as server:
        backend = RemoteBackend(server.address, config=FAST_CONFIG)
        yield server, backend
        backend.close()


class TestParseAddress:
    def test_host_port_string(self):
        assert parse_address("127.0.0.1:7654") == ("127.0.0.1", 7654)

    def test_tuple(self):
        assert parse_address(("localhost", 99)) == ("localhost", 99)

    def test_rejects_garbage(self):
        for bad in ("no-port", "host:", ":1234", 17, "host:port"):
            with pytest.raises(ConfigurationError):
                parse_address(bad)


class TestHandshake:
    def test_capabilities_come_from_the_server(self, served, beer_matcher):
        server, backend = served
        caps = backend.capabilities()
        assert caps.fingerprint == matcher_fingerprint(beer_matcher)
        assert caps.supports_columnar is True
        assert caps.max_batch_size == DEFAULT_MAX_BATCH_SIZE
        assert caps.matcher_class == type(beer_matcher).__name__

    def test_wrong_protocol_version_is_rejected(self, served, monkeypatch):
        server, _ = served
        import repro.backends.client as client_module

        monkeypatch.setattr(client_module, "PROTOCOL_VERSION", 99)
        probe = RemoteBackend(server.address, config=FAST_CONFIG)
        try:
            with pytest.raises(BackendProtocolError):
                probe.capabilities()
        finally:
            probe.close()


class TestPredictParity:
    def test_scores_are_bit_identical(self, served, beer_matcher,
                                      beer_dataset):
        _, backend = served
        pairs = list(beer_dataset)[:40]
        np.testing.assert_array_equal(
            backend.predict_proba(pairs),
            beer_matcher.predict_proba(pairs),
        )

    def test_empty_batch_short_circuits(self, served):
        _, backend = served
        assert backend.predict_proba([]).shape == (0,)

    def test_columnar_is_bit_identical(self, served, beer_matcher,
                                       match_pair):
        _, backend = served
        batch = _constant_batch(match_pair, 13)
        np.testing.assert_array_equal(
            backend.predict_proba_columnar(batch),
            beer_matcher.predict_proba_columnar(batch),
        )

    def test_health_reports_connected(self, served):
        _, backend = served
        backend.capabilities()
        health = backend.health()
        assert health["available"] is True
        assert health["breaker"] == "closed"
        assert health["connected"] is True


class TestPipelining:
    def test_large_calls_split_into_inflight_chunks(self):
        matcher = RecordingMatcher()
        registry = MetricsRegistry()
        with MatcherServer(matcher, max_batch_size=8, workers=2) as server:
            backend = RemoteBackend(
                server.address, config=FAST_CONFIG, metrics=registry,
            )
            try:
                scores = backend.predict_proba([f"p{i}" for i in range(30)])
            finally:
                backend.close()
        # 30 rows over an 8-row server max = 4 wire requests (their
        # completion order is the server pool's business)...
        assert sorted(matcher.batches) == [6, 8, 8, 8]
        # ...reassembled in order on the client.
        expected = np.concatenate(
            [np.linspace(0.0, 1.0, n) for n in (8, 8, 8, 6)]
        )
        np.testing.assert_array_equal(scores, expected)

    def test_out_of_order_responses_reassemble_in_order(self):
        matcher = RecordingMatcher(delay=0.3)
        with MatcherServer(matcher, max_batch_size=4, workers=2) as server:
            backend = RemoteBackend(server.address, config=FAST_CONFIG)
            try:
                # First chunk is slow; the second completes first on the
                # server (two workers), so its response frame arrives
                # out of order.
                pairs = ["slow", "a", "b", "c", "fast", "d", "e", "f"]
                scores = backend.predict_proba(pairs)
            finally:
                backend.close()
        assert matcher.completed[0] == "fast"  # out-of-order on the wire
        expected = np.concatenate(
            [np.linspace(0.0, 1.0, 4), np.linspace(0.0, 1.0, 4)]
        )
        np.testing.assert_array_equal(scores, expected)

    def test_pipeline_chunk_size_caps_below_server_max(self):
        matcher = RecordingMatcher()
        config = RemoteBackendConfig(
            connect_timeout=2.0, call_timeout=10.0, pipeline_chunk_size=5,
        )
        with MatcherServer(matcher, max_batch_size=64) as server:
            backend = RemoteBackend(server.address, config=config)
            try:
                backend.predict_proba([f"p{i}" for i in range(12)])
            finally:
                backend.close()
        assert sorted(matcher.batches) == [2, 5, 5]

    def test_concurrent_callers_share_one_connection(self, served,
                                                     beer_matcher,
                                                     beer_dataset):
        _, backend = served
        pairs = list(beer_dataset)[:16]
        expected = beer_matcher.predict_proba(pairs)
        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []

        def call(slot: int) -> None:
            try:
                results[slot] = backend.predict_proba(pairs)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for got in results.values():
            np.testing.assert_array_equal(got, expected)


class TestServerSurface:
    """Raw-socket conversations: the wire contract beyond the client."""

    @staticmethod
    def _dial(server):
        import socket as socket_module

        from repro.backends.base import PROTOCOL_VERSION
        from repro.backends.protocol import read_frame, send_frame

        sock = socket_module.create_connection(server.address, timeout=5.0)
        send_frame(sock, {"op": "hello", "id": 0,
                          "protocol": PROTOCOL_VERSION})
        hello = read_frame(sock)
        assert hello["ok"] is True
        return sock, send_frame, read_frame

    def test_oversized_batch_is_refused(self):
        matcher = RecordingMatcher()
        with MatcherServer(matcher, max_batch_size=4) as server:
            sock, send_frame, read_frame = self._dial(server)
            try:
                # Bypass the client's splitting to hit the server check.
                send_frame(sock, {"op": "predict", "id": 1,
                                  "pairs": list(range(9))})
                reply = read_frame(sock)
            finally:
                sock.close()
        assert reply["ok"] is False
        assert "exceeds the advertised max" in reply["error"]
        assert matcher.batches == []  # never reached the model

    def test_ping_pongs(self, served):
        server, _ = served
        sock, send_frame, read_frame = self._dial(server)
        try:
            send_frame(sock, {"op": "ping", "id": 5})
            reply = read_frame(sock)
        finally:
            sock.close()
        assert reply == {"id": 5, "ok": True, "result": "pong"}

    def test_unknown_op_is_bad_request(self, served):
        server, _ = served
        sock, send_frame, read_frame = self._dial(server)
        try:
            send_frame(sock, {"op": "train", "id": 6})
            reply = read_frame(sock)
        finally:
            sock.close()
        assert reply["ok"] is False
        assert reply["code"] == "bad_request"

    def test_stale_protocol_hello_is_refused(self, served):
        import socket as socket_module

        from repro.backends.protocol import read_frame, send_frame

        server, _ = served
        sock = socket_module.create_connection(server.address, timeout=5.0)
        try:
            send_frame(sock, {"op": "hello", "id": 0, "protocol": 0})
            reply = read_frame(sock)
        finally:
            sock.close()
        assert reply["ok"] is False
        assert reply["code"] == "backend_protocol"

    def test_columnar_refused_without_support(self, match_pair):
        matcher = RecordingMatcher()  # no predict_proba_columnar
        with MatcherServer(matcher) as server:
            backend = RemoteBackend(server.address, config=FAST_CONFIG)
            try:
                from repro.exceptions import ServiceError

                with pytest.raises(ServiceError, match="columnar"):
                    backend.predict_proba_columnar(
                        _constant_batch(match_pair, 3)
                    )
            finally:
                backend.close()
