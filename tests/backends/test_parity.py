"""Bit-identical explanation weights through a remote backend.

The acceptance bar for the backend layer: for *every* matcher type, the
landmark explanation computed against a :class:`RemoteBackend` must be
bit-identical — not approximately equal — to the one computed against
the in-process matcher.  The transport moves float64 arrays verbatim
(pickle, no re-encoding), the guard consumes no numpy RNG state, and the
client reassembles pipelined chunks positionally, so any drift is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.client import RemoteBackend, RemoteBackendConfig
from repro.backends.server import MatcherServer
from repro.core.landmark import LandmarkExplainer
from repro.core.serialize import dual_digest, dual_to_dict
from repro.explainers.lime_text import LimeConfig
from repro.matchers.boosting import GradientBoostedStumpsMatcher
from repro.matchers.embedding import EmbeddingMatcher
from repro.matchers.logistic import LogisticRegressionMatcher
from repro.matchers.neural import MLPMatcher
from repro.matchers.rules import RuleBasedMatcher
from repro.service.request import ExplainRequest
from repro.service.service import ExplanationService

SAMPLES = 24

MATCHER_TYPES = {
    "logistic": LogisticRegressionMatcher,
    "mlp": MLPMatcher,
    "rules": RuleBasedMatcher,
    "boosted": GradientBoostedStumpsMatcher,
    "embedding": EmbeddingMatcher,
}

CONFIG = RemoteBackendConfig(
    connect_timeout=5.0, call_timeout=60.0, max_retries=1,
    backoff=0.01, backoff_max=0.05,
)


def _explain(matcher_like, pair):
    explainer = LandmarkExplainer(
        matcher_like,
        lime_config=LimeConfig(n_samples=SAMPLES, seed=0),
        seed=0,
    )
    return explainer.explain(pair)


@pytest.fixture(scope="module", params=sorted(MATCHER_TYPES))
def fitted(request, beer_dataset):
    return request.param, MATCHER_TYPES[request.param]().fit(beer_dataset)


class TestExplanationParity:
    def test_weights_bit_identical_across_the_wire(self, fitted, match_pair):
        name, matcher = fitted
        local = _explain(matcher, match_pair)
        with MatcherServer(matcher, workers=2) as server:
            backend = RemoteBackend(server.address, config=CONFIG)
            try:
                # The proxy advertises exactly the matcher's columnar
                # support, so both sides take the same prediction path.
                proxy = backend.as_matcher()
                assert proxy.supports_columnar == bool(
                    getattr(matcher, "supports_columnar", False)
                )
                remote = _explain(proxy, match_pair)
            finally:
                backend.close()
        for side in ("left_landmark", "right_landmark"):
            ours = getattr(remote, side).explanation
            theirs = getattr(local, side).explanation
            assert np.array_equal(ours.weights, theirs.weights), name
            assert ours.feature_names == theirs.feature_names, name
        assert dual_to_dict(remote) == dual_to_dict(local), name
        assert dual_digest(remote) == dual_digest(local), name


class TestServiceParity:
    def test_served_result_equals_in_process_service(
        self, beer_matcher, non_match_pair
    ):
        request = ExplainRequest(
            pair=non_match_pair, method="both", samples=SAMPLES, seed=0
        )
        with ExplanationService(beer_matcher) as service:
            local = service.explain(request)
        with MatcherServer(beer_matcher, workers=2) as server:
            backend = RemoteBackend(server.address, config=CONFIG)
            with ExplanationService(backend) as service:
                assert service.fingerprint == backend.capabilities().fingerprint
                remote = service.explain(request)
        assert remote == local
