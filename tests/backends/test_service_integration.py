"""Backends wired into the serving stack: shards, fleet, artifact pins.

Covers the deployment topology the backend layer exists for — N shard
processes sharing one matcher server — plus the two startup guards that
keep a deployment from serving the wrong weights: the ShardSpec
fingerprint pin (blob and backend mode) and the service-level
``backend_unavailable`` health degradation.
"""

from __future__ import annotations

import pickle

import pytest

from repro.backends.client import RemoteBackend, RemoteBackendConfig
from repro.backends.server import MatcherServer
from repro.config import ServiceConfig, ShardConfig
from repro.core.serialize import matcher_fingerprint
from repro.exceptions import (
    ArtifactMismatchError,
    ConfigurationError,
)
from repro.obs.metrics import MetricsRegistry
from repro.service import ExplainRequest, ExplanationService, ShardedService
from repro.service.shard import ShardSpec, _build_matcher_source
from repro.service.supervisor import ShardedService as _Supervisor

SAMPLES = 24

FAST_SHARDS = dict(
    heartbeat_interval=0.05,
    heartbeat_timeout=1.5,
    check_interval=0.05,
    restart_backoff_base=0.2,
    restart_backoff_max=1.0,
)

CONFIG = RemoteBackendConfig(
    connect_timeout=5.0, call_timeout=60.0, max_retries=1,
    backoff=0.01, backoff_max=0.05,
)


def _spec(**overrides) -> ShardSpec:
    defaults = dict(
        shard_id=0,
        service_config=ServiceConfig(),
        engine_config=None,
        store_dir=None,
        store_config=None,
    )
    defaults.update(overrides)
    return ShardSpec(**defaults)


class TestMatcherSource:
    def test_blob_mode_verifies_the_fingerprint(self, beer_matcher):
        registry = MetricsRegistry(enabled=False)
        spec = _spec(
            matcher_blob=pickle.dumps(beer_matcher),
            fingerprint=matcher_fingerprint(beer_matcher),
        )
        matcher = _build_matcher_source(spec, registry)
        assert matcher_fingerprint(matcher) == spec.fingerprint

    def test_blob_mode_refuses_foreign_weights(self, beer_matcher):
        registry = MetricsRegistry(enabled=False)
        spec = _spec(
            matcher_blob=pickle.dumps(beer_matcher),
            fingerprint="0" * 64,
        )
        with pytest.raises(ArtifactMismatchError, match="stale weights"):
            _build_matcher_source(spec, registry)

    def test_backend_mode_refuses_foreign_server(self, beer_matcher):
        registry = MetricsRegistry(enabled=False)
        with MatcherServer(beer_matcher) as server:
            spec = _spec(
                backend_address="%s:%d" % server.address,
                backend_config=CONFIG,
                fingerprint="f" * 64,
            )
            with pytest.raises(ArtifactMismatchError):
                _build_matcher_source(spec, registry)

    def test_backend_mode_accepts_the_pinned_server(self, beer_matcher):
        registry = MetricsRegistry(enabled=False)
        with MatcherServer(beer_matcher) as server:
            spec = _spec(
                backend_address="%s:%d" % server.address,
                backend_config=CONFIG,
                fingerprint=matcher_fingerprint(beer_matcher),
            )
            backend = _build_matcher_source(spec, registry)
            try:
                caps = backend.capabilities()
                assert caps.fingerprint == spec.fingerprint
            finally:
                backend.close()

    def test_neither_source_is_a_config_error(self):
        registry = MetricsRegistry(enabled=False)
        with pytest.raises(ConfigurationError, match="neither"):
            _build_matcher_source(_spec(), registry)


class TestShardedOverBackend:
    def test_requires_exactly_one_source(self, beer_matcher):
        with pytest.raises(ConfigurationError, match="exactly one"):
            _Supervisor(beer_matcher, backend_address="127.0.0.1:1")
        with pytest.raises(ConfigurationError, match="exactly one"):
            _Supervisor(None)

    def test_shards_share_one_matcher_server(
        self, beer_matcher, non_match_pair
    ):
        request = ExplainRequest(
            pair=non_match_pair, method="both", samples=SAMPLES, seed=0
        )
        with ExplanationService(beer_matcher) as single:
            expected = single.explain(request)
        with MatcherServer(beer_matcher, workers=4) as server:
            with ShardedService(
                backend_address="%s:%d" % server.address,
                shard_config=ShardConfig(n_shards=2, **FAST_SHARDS),
            ) as sharded:
                assert sharded.fingerprint == matcher_fingerprint(beer_matcher)
                got = sharded.explain(request, timeout=120)
        assert got == expected


class TestServiceHealth:
    def test_backend_section_and_degradation(self, beer_matcher, match_pair):
        with MatcherServer(beer_matcher) as server:
            backend = RemoteBackend(
                server.address,
                config=RemoteBackendConfig(
                    connect_timeout=2.0, call_timeout=5.0, max_retries=0,
                    backoff=0.01, backoff_max=0.02, trip_after=1, cooldown=2,
                ),
            )
            with ExplanationService(backend) as service:
                status, healthy = service.health()
                assert status == 200
                assert healthy["ok"] is True
                assert healthy["backend"]["available"] is True
                # Kill the server and trip the breaker with one request.
                server.close()
                request = ExplainRequest(
                    pair=match_pair, method="single", samples=SAMPLES
                )
                future = service.submit(request)
                with pytest.raises(Exception) as info:
                    future.result(timeout=60)
                assert getattr(info.value, "code", "") in (
                    "backend_unavailable", "explanation_error",
                )
                status, sick = service.health()
                assert status == 503
                assert sick["degraded"] == "backend_unavailable"
                assert sick["backend"]["available"] is False

    def test_in_process_health_has_no_backend_section(self, beer_matcher):
        with ExplanationService(beer_matcher) as service:
            _, payload = service.health()
            assert "backend" not in payload
