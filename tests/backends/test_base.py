"""The backend protocol surface: capabilities, adapters, normalization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.base import (
    DEFAULT_MAX_BATCH_SIZE,
    PROTOCOL_VERSION,
    BackendCapabilities,
    BackendMatcher,
    InProcessBackend,
    MatcherBackend,
    as_backend,
)
from repro.core.serialize import matcher_fingerprint
from repro.exceptions import BackendError, ConfigurationError


class TestBackendCapabilities:
    def test_round_trips_through_dict(self):
        caps = BackendCapabilities(
            fingerprint="abc123",
            supports_columnar=True,
            max_batch_size=256,
            matcher_class="LogisticRegressionMatcher",
        )
        assert BackendCapabilities.from_dict(caps.to_dict()) == caps

    def test_requires_fingerprint(self):
        with pytest.raises(ConfigurationError, match="fingerprint"):
            BackendCapabilities(
                fingerprint="", supports_columnar=False, max_batch_size=1
            )

    def test_requires_positive_batch(self):
        with pytest.raises(ConfigurationError, match="max_batch_size"):
            BackendCapabilities(
                fingerprint="x", supports_columnar=False, max_batch_size=0
            )

    def test_protocol_version_defaults_current(self):
        caps = BackendCapabilities(
            fingerprint="x", supports_columnar=False, max_batch_size=1
        )
        assert caps.protocol_version == PROTOCOL_VERSION


class TestInProcessBackend:
    def test_predictions_are_bit_identical(self, beer_matcher, beer_dataset):
        backend = InProcessBackend(beer_matcher)
        pairs = list(beer_dataset)[:20]
        np.testing.assert_array_equal(
            backend.predict_proba(pairs), beer_matcher.predict_proba(pairs)
        )

    def test_capabilities_report_the_matcher(self, beer_matcher):
        caps = InProcessBackend(beer_matcher).capabilities()
        assert caps.fingerprint == matcher_fingerprint(beer_matcher)
        assert caps.matcher_class == type(beer_matcher).__name__
        assert caps.max_batch_size == DEFAULT_MAX_BATCH_SIZE
        assert caps.supports_columnar == bool(
            getattr(beer_matcher, "supports_columnar", False)
        )

    def test_as_matcher_returns_the_raw_object(self, beer_matcher):
        assert InProcessBackend(beer_matcher).as_matcher() is beer_matcher

    def test_accepts_duck_typed_doubles(self):
        class Double:
            def predict_proba(self, pairs):
                return np.zeros(len(pairs))

        backend = InProcessBackend(Double())
        assert backend.predict_proba([1, 2]).shape == (2,)

    def test_rejects_non_matchers(self):
        with pytest.raises(ConfigurationError, match="predict_proba"):
            InProcessBackend(object())

    def test_health_is_available(self, beer_matcher):
        assert InProcessBackend(beer_matcher).health()["available"] is True


class TestBackendMatcher:
    def test_fit_refuses(self, beer_matcher):
        proxy = BackendMatcher(InProcessBackend(beer_matcher))
        with pytest.raises(BackendError, match="cannot be trained"):
            proxy.fit(None)

    def test_predictions_delegate(self, beer_matcher, beer_dataset):
        proxy = BackendMatcher(InProcessBackend(beer_matcher))
        pairs = list(beer_dataset)[:8]
        np.testing.assert_array_equal(
            proxy.predict_proba(pairs), beer_matcher.predict_proba(pairs)
        )


class TestAsBackend:
    def test_passes_backends_through(self, beer_matcher):
        backend = InProcessBackend(beer_matcher)
        assert as_backend(backend) is backend

    def test_wraps_matchers(self, beer_matcher):
        backend = as_backend(beer_matcher)
        assert isinstance(backend, MatcherBackend)
        assert backend.as_matcher() is beer_matcher

    def test_rejects_everything_else(self):
        with pytest.raises(ConfigurationError, match="expected a matcher"):
            as_backend(42)
