"""Frame-level behaviour of the backend wire protocol."""

from __future__ import annotations

import pickle
import socket
import struct

import numpy as np
import pytest

from repro.backends.protocol import (
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    read_frame,
    send_frame,
)
from repro.exceptions import BackendProtocolError

_HEADER = struct.Struct("!4sI")


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        message = {"op": "predict", "id": 7, "pairs": ["x", "y"]}
        send_frame(a, message)
        assert read_frame(b) == message

    def test_numpy_payload_survives(self, pair):
        a, b = pair
        scores = np.linspace(0.0, 1.0, 17)
        send_frame(a, {"id": 1, "ok": True, "result": scores})
        np.testing.assert_array_equal(read_frame(b)["result"], scores)

    def test_frames_are_ordered_and_delimited(self, pair):
        a, b = pair
        for index in range(5):
            send_frame(a, {"id": index})
        assert [read_frame(b)["id"] for _ in range(5)] == list(range(5))

    def test_bad_magic_is_protocol_error(self, pair):
        a, b = pair
        a.sendall(b"HTTP/1.1 200 OK\r\n\r\n" + b"\x00" * 16)
        with pytest.raises(BackendProtocolError, match="bad frame magic"):
            read_frame(b)

    def test_oversized_length_is_protocol_error(self, pair):
        a, b = pair
        a.sendall(_HEADER.pack(FRAME_MAGIC, MAX_FRAME_BYTES + 1))
        with pytest.raises(BackendProtocolError, match="exceeds cap"):
            read_frame(b)

    def test_undecodable_payload_is_protocol_error(self, pair):
        a, b = pair
        garbage = b"\x80\x05not-a-pickle"
        a.sendall(_HEADER.pack(FRAME_MAGIC, len(garbage)) + garbage)
        with pytest.raises(BackendProtocolError, match="undecodable"):
            read_frame(b)

    def test_non_dict_payload_is_protocol_error(self, pair):
        a, b = pair
        payload = pickle.dumps([1, 2, 3], protocol=4)
        a.sendall(_HEADER.pack(FRAME_MAGIC, len(payload)) + payload)
        with pytest.raises(BackendProtocolError, match="expected dict"):
            read_frame(b)

    def test_clean_eof_is_connection_error(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionError):
            read_frame(b)

    def test_mid_frame_eof_is_connection_error(self, pair):
        a, b = pair
        a.sendall(FRAME_MAGIC[:2])  # half a header, then gone
        a.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            read_frame(b)

    def test_refuses_to_send_oversized_frames(self, pair):
        a, _ = pair
        message = {"blob": b"x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(BackendProtocolError, match="refusing to send"):
            send_frame(a, message)
