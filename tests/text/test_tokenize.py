"""Tests for the prefixed tokenizer (paper Sec. 3.1, "Tokenizer")."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import TokenizationError
from repro.text.tokenize import (
    PrefixedToken,
    Tokenizer,
    format_prefixed_token,
    parse_prefixed_token,
)

words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=8
)


class TestPrefixedToken:
    def test_prefixed_form(self):
        token = PrefixedToken("name", 2, "camera")
        assert token.prefixed == "name#2_camera"

    def test_rejects_hash_in_attribute(self):
        with pytest.raises(TokenizationError):
            PrefixedToken("na#me", 0, "x")

    def test_rejects_negative_position(self):
        with pytest.raises(TokenizationError):
            PrefixedToken("name", -1, "x")

    def test_rejects_empty_word(self):
        with pytest.raises(TokenizationError):
            PrefixedToken("name", 0, "")

    def test_shifted(self):
        token = PrefixedToken("name", 1, "x").shifted(5)
        assert token.position == 6
        assert token.attribute == "name"
        assert token.word == "x"


class TestParseFormatRoundTrip:
    def test_round_trip(self):
        token = PrefixedToken("description", 7, "10.2")
        assert parse_prefixed_token(token.prefixed) == token

    def test_word_with_underscore_survives(self):
        text = format_prefixed_token("name", 0, "a_b")
        assert parse_prefixed_token(text).word == "a_b"

    def test_missing_hash_raises(self):
        with pytest.raises(TokenizationError):
            parse_prefixed_token("name0_sony")

    def test_missing_underscore_raises(self):
        with pytest.raises(TokenizationError):
            parse_prefixed_token("name#0sony")

    def test_non_numeric_position_raises(self):
        with pytest.raises(TokenizationError):
            parse_prefixed_token("name#x_sony")

    def test_empty_attribute_raises(self):
        with pytest.raises(TokenizationError):
            parse_prefixed_token("#0_sony")

    @given(words, st.integers(min_value=0, max_value=999), words)
    def test_round_trip_property(self, attribute, position, word):
        token = PrefixedToken(attribute, position, word)
        assert parse_prefixed_token(token.prefixed) == token


class TestTokenizer:
    def setup_method(self):
        self.tokenizer = Tokenizer()

    def test_tokenize_value_enumerates(self):
        tokens = self.tokenizer.tokenize_value("name", "sony camera sony")
        assert [t.position for t in tokens] == [0, 1, 2]
        assert [t.word for t in tokens] == ["sony", "camera", "sony"]

    def test_duplicate_words_get_distinct_prefixes(self):
        tokens = self.tokenizer.tokenize_value("name", "sony sony")
        assert tokens[0].prefixed != tokens[1].prefixed

    def test_tokenize_entity_order(self):
        entity = {"name": "a b", "price": "9.99"}
        tokens = self.tokenizer.tokenize_entity(entity)
        assert [t.prefixed for t in tokens] == [
            "name#0_a",
            "name#1_b",
            "price#0_9.99",
        ]

    def test_detokenize_full_entity(self):
        entity = {"name": "sony digital camera", "price": "849.99"}
        tokens = self.tokenizer.tokenize_entity(entity)
        assert self.tokenizer.detokenize(tokens) == entity

    def test_detokenize_subset_preserves_order(self):
        tokens = self.tokenizer.tokenize_value("name", "a b c d")
        subset = [tokens[3], tokens[0], tokens[2]]
        assert self.tokenizer.detokenize(subset) == {"name": "a c d"}

    def test_detokenize_empty(self):
        assert self.tokenizer.detokenize([]) == {}

    def test_detokenize_strings(self):
        values = self.tokenizer.detokenize_strings(["name#1_b", "name#0_a"])
        assert values == {"name": "a b"}

    def test_empty_value_produces_no_tokens(self):
        assert self.tokenizer.tokenize_value("name", "") == []
        assert self.tokenizer.tokenize_value("name", None) == []

    @given(
        st.dictionaries(
            st.sampled_from(["name", "brand", "price"]),
            st.lists(words, min_size=1, max_size=6).map(" ".join),
            min_size=1,
            max_size=3,
        )
    )
    def test_round_trip_property(self, entity):
        # Tokenization normalizes values first, so the round trip lands on
        # the *normalized* entity (idempotent thereafter).
        from repro.text.normalize import normalize_value

        tokens = self.tokenizer.tokenize_entity(entity)
        rebuilt = self.tokenizer.detokenize(tokens)
        expected = {
            k: normalize_value(v) for k, v in entity.items() if normalize_value(v)
        }
        assert rebuilt == expected

    @given(
        st.lists(words, min_size=1, max_size=8).map(" ".join),
        st.binary(min_size=1, max_size=8).map(
            lambda b: [bit % 2 == 1 for bit in b]
        ),
    )
    def test_any_subset_rebuilds_subsequence(self, value, keep_bits):
        tokens = self.tokenizer.tokenize_value("name", value)
        kept = [t for t, keep in zip(tokens, keep_bits) if keep]
        rebuilt = self.tokenizer.detokenize(kept)
        if not kept:
            assert rebuilt == {}
        else:
            rebuilt_words = rebuilt["name"].split(" ")
            assert rebuilt_words == [t.word for t in sorted(kept, key=lambda t: t.position)]
