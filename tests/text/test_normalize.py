"""Tests for repro.text.normalize."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.normalize import (
    normalize_value,
    normalize_whitespace,
    strip_accents,
    tokens_of,
)


class TestNormalizeWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("a  b\t c\n d") == "a b c d"

    def test_strips_ends(self):
        assert normalize_whitespace("  hello  ") == "hello"

    def test_empty(self):
        assert normalize_whitespace("") == ""


class TestStripAccents:
    def test_cafe(self):
        assert strip_accents("café") == "cafe"

    def test_no_accents_unchanged(self):
        assert strip_accents("hello world") == "hello world"

    def test_multiple_accents(self):
        assert strip_accents("crème brûlée") == "creme brulee"


class TestNormalizeValue:
    def test_none_is_empty(self):
        assert normalize_value(None) == ""

    def test_nan_is_empty(self):
        assert normalize_value(float("nan")) == ""

    def test_nan_string_is_empty(self):
        assert normalize_value("NaN") == ""
        assert normalize_value("null") == ""

    def test_lowercases(self):
        assert normalize_value("Sony Camera") == "sony camera"

    def test_keeps_decimal_prices(self):
        assert normalize_value(849.99) == "849.99"

    def test_whole_floats_become_ints(self):
        assert normalize_value(2021.0) == "2021"

    def test_integers(self):
        assert normalize_value(42) == "42"

    def test_punctuation_to_space(self):
        assert normalize_value("black/white (new)") == "black white new"

    def test_hyphen_splits_tokens(self):
        assert normalize_value("dslr-a200w") == "dslr a200w"

    def test_hash_dropped(self):
        assert normalize_value("item#12") == "item12"

    def test_keeps_periods_inside_numbers(self):
        assert normalize_value("10.2 megapixels") == "10.2 megapixels"

    @given(st.text(max_size=60))
    def test_idempotent(self, text):
        once = normalize_value(text)
        assert normalize_value(once) == once

    @given(st.text(max_size=60))
    def test_never_leading_or_trailing_space(self, text):
        normalized = normalize_value(text)
        assert normalized == normalized.strip()

    @given(st.floats(allow_nan=True, allow_infinity=False))
    def test_floats_never_crash(self, value):
        result = normalize_value(value)
        assert isinstance(result, str)
        if math.isnan(value):
            assert result == ""


class TestTokensOf:
    def test_simple_split(self):
        assert tokens_of("sony digital camera") == ["sony", "digital", "camera"]

    def test_empty_value_no_tokens(self):
        assert tokens_of("") == []
        assert tokens_of(None) == []

    def test_no_empty_tokens(self):
        assert "" not in tokens_of("a,  b,,   c")

    @given(st.text(max_size=80))
    def test_tokens_are_nonempty_and_spaceless(self, text):
        for token in tokens_of(text):
            assert token
            assert " " not in token
