"""Tests for the TF-IDF vectorizer."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ModelNotFittedError
from repro.text.vectorize import TfidfVectorizer, cosine

DOCS = [
    ["sony", "camera", "digital"],
    ["nikon", "camera"],
    ["leather", "case"],
]

tokens = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]), min_size=0, max_size=8
)


class TestFit:
    def test_vocabulary_is_sorted_and_complete(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        assert list(vectorizer.vocabulary_) == sorted(
            {"sony", "camera", "digital", "nikon", "leather", "case"}
        )

    def test_min_df_filters_rare_terms(self):
        vectorizer = TfidfVectorizer(min_df=2).fit(DOCS)
        assert set(vectorizer.vocabulary_) == {"camera"}

    def test_min_df_validation(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(min_df=0)

    def test_idf_rarer_terms_weigh_more(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        idf = {
            term: vectorizer.idf_[index]
            for term, index in vectorizer.vocabulary_.items()
        }
        assert idf["sony"] > idf["camera"]


class TestTransform:
    def test_requires_fit(self):
        with pytest.raises(ModelNotFittedError):
            TfidfVectorizer().transform_one(["a"])

    def test_unknown_terms_ignored(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        assert vectorizer.transform_one(["unseen", "words"]) == {}

    def test_vectors_are_l2_normalized(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        vector = vectorizer.transform_one(["sony", "camera"])
        norm = math.sqrt(sum(w * w for w in vector.values()))
        assert norm == pytest.approx(1.0)

    def test_fit_transform_matches_transform(self):
        vectorizer = TfidfVectorizer()
        vectors = vectorizer.fit_transform(DOCS)
        assert vectors == vectorizer.transform(DOCS)


class TestCosine:
    def test_identical_documents(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        vector = vectorizer.transform_one(DOCS[0])
        assert cosine(vector, vector) == pytest.approx(1.0)

    def test_disjoint_documents(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        assert cosine(
            vectorizer.transform_one(["sony"]),
            vectorizer.transform_one(["leather"]),
        ) == pytest.approx(0.0)

    def test_empty_vector(self):
        assert cosine({}, {0: 1.0}) == 0.0

    @given(corpus=st.lists(tokens, min_size=1, max_size=6), doc=tokens)
    def test_cosine_bounded(self, corpus, doc):
        vectorizer = TfidfVectorizer().fit(corpus + [doc])
        vector = vectorizer.transform_one(doc)
        for other_tokens in corpus:
            other = vectorizer.transform_one(other_tokens)
            assert -1e-9 <= cosine(vector, other) <= 1.0 + 1e-9
