"""Tests for the string/token similarity library."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text import similarity as sim

short_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), max_size=12
)
token_lists = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1,
        max_size=6,
    ),
    max_size=6,
)

STRING_MEASURES = [
    sim.levenshtein_similarity,
    sim.jaro_similarity,
    sim.jaro_winkler_similarity,
    sim.prefix_similarity,
]
SET_MEASURES = [
    sim.jaccard_similarity,
    sim.overlap_coefficient,
    sim.dice_coefficient,
    sim.cosine_token_similarity,
    sim.monge_elkan_similarity,
]


class TestLevenshtein:
    def test_identical(self):
        assert sim.levenshtein_distance("kitten", "kitten") == 0

    def test_classic_kitten_sitting(self):
        assert sim.levenshtein_distance("kitten", "sitting") == 3

    def test_empty_vs_word(self):
        assert sim.levenshtein_distance("", "abc") == 3

    def test_symmetric(self):
        assert sim.levenshtein_distance("abcd", "ab") == sim.levenshtein_distance(
            "ab", "abcd"
        )

    def test_similarity_normalization(self):
        assert sim.levenshtein_similarity("abc", "abd") == pytest.approx(2 / 3)

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        ab = sim.levenshtein_distance(a, b)
        bc = sim.levenshtein_distance(b, c)
        ac = sim.levenshtein_distance(a, c)
        assert ac <= ab + bc


class TestJaro:
    def test_known_value_martha(self):
        # Classic textbook example.
        assert sim.jaro_similarity("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_disjoint_strings(self):
        assert sim.jaro_similarity("abc", "xyz") == 0.0

    def test_winkler_boosts_common_prefix(self):
        base = sim.jaro_similarity("prefixed", "prefixes")
        boosted = sim.jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted >= base

    def test_winkler_known_value(self):
        assert sim.jaro_winkler_similarity("dixon", "dicksonx") == pytest.approx(
            0.8133, abs=1e-3
        )


class TestSetMeasures:
    def test_jaccard_half_overlap(self):
        assert sim.jaccard_similarity(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_overlap_subset_is_one(self):
        assert sim.overlap_coefficient(["a"], ["a", "b", "c"]) == 1.0

    def test_dice(self):
        assert sim.dice_coefficient(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

    def test_cosine_multiset_counts(self):
        # "a a" vs "a": cosine of (2,) and (1,) over shared vocabulary = 1.
        assert sim.cosine_token_similarity(["a", "a"], ["a"]) == pytest.approx(1.0)

    def test_monge_elkan_tolerates_typos(self):
        clean = ["golden", "dragon"]
        typo = ["goldne", "dragon"]
        assert sim.monge_elkan_similarity(clean, typo) > 0.9


class TestNumericSimilarity:
    def test_equal_numbers(self):
        assert sim.numeric_similarity("10", "10.0") == 1.0

    def test_relative_difference(self):
        assert sim.numeric_similarity("100", "90") == pytest.approx(0.9)

    def test_non_numeric_is_zero(self):
        assert sim.numeric_similarity("abc", "10") == 0.0

    def test_both_empty_is_one(self):
        assert sim.numeric_similarity("", "") == 1.0

    def test_zero_vs_zero(self):
        assert sim.numeric_similarity("0", "0.0") == 1.0

    @pytest.mark.parametrize("value", ["nan", "NaN", "inf", "-inf", "Infinity"])
    def test_non_finite_parses_are_zero_not_nan(self, value):
        # float("nan") / float("inf") *parse*, so without an explicit
        # finiteness guard they fall through to NaN arithmetic.
        assert sim.numeric_similarity(value, "5") == 0.0
        assert sim.numeric_similarity("5", value) == 0.0
        assert sim.numeric_similarity(value, value) == 0.0


class TestSharedInvariants:
    @pytest.mark.parametrize("measure", STRING_MEASURES)
    @given(a=short_text, b=short_text)
    def test_string_measures_bounded(self, measure, a, b):
        value = measure(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12

    @pytest.mark.parametrize("measure", STRING_MEASURES)
    @given(a=short_text)
    def test_string_measures_identity(self, measure, a):
        assert measure(a, a) == pytest.approx(1.0)

    @pytest.mark.parametrize("measure", SET_MEASURES)
    @given(a=token_lists, b=token_lists)
    def test_set_measures_bounded_and_symmetric(self, measure, a, b):
        value = measure(a, b)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert measure(b, a) == pytest.approx(value, abs=1e-9)

    @pytest.mark.parametrize("measure", SET_MEASURES)
    def test_set_measures_empty_conventions(self, measure):
        assert measure([], []) == 1.0
        assert measure(["a"], []) == 0.0
