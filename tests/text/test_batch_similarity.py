"""Bit-identity of the batched character kernels vs the scalar reference.

The columnar feature extractor routes Levenshtein and Jaro-Winkler
through :mod:`repro.text.batch_similarity`; these tests pin the contract
that every batched result equals the scalar function's result exactly —
same bits, not "close".
"""

import numpy as np
import pytest

from repro.text.batch_similarity import (
    char_similarities_batch,
    jaro_winkler_similarity_batch,
    levenshtein_distance_batch,
    levenshtein_similarity_batch,
)
from repro.text.similarity import (
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
)


def random_strings(rng, count, alphabet, max_len):
    out = []
    for _ in range(count):
        length = int(rng.integers(0, max_len + 1))
        out.append("".join(rng.choice(alphabet, size=length)))
    return out


ALPHABETS = {
    "binary": list("ab"),
    "ascii": list("abcdefgh xyz0123"),
    "unicode": list("abcé欧ラø水 '"),
}


class TestLevenshtein:
    @pytest.mark.parametrize("alphabet", sorted(ALPHABETS))
    def test_distance_matches_scalar(self, alphabet):
        rng = np.random.default_rng(hash(alphabet) % (2**32))
        a = random_strings(rng, 300, ALPHABETS[alphabet], 24)
        b = random_strings(rng, 300, ALPHABETS[alphabet], 24)
        batched = levenshtein_distance_batch(a, b)
        for index, (left, right) in enumerate(zip(a, b)):
            assert batched[index] == levenshtein_distance(left, right)

    def test_similarity_bit_identical(self):
        rng = np.random.default_rng(1)
        a = random_strings(rng, 300, ALPHABETS["ascii"], 20)
        b = random_strings(rng, 300, ALPHABETS["ascii"], 20)
        batched = levenshtein_similarity_batch(a, b)
        for index, (left, right) in enumerate(zip(a, b)):
            assert batched[index] == levenshtein_similarity(left, right)

    def test_empty_cases(self):
        a = ["", "abc", "", "a"]
        b = ["", "", "xy", "a"]
        assert levenshtein_distance_batch(a, b).tolist() == [0, 3, 2, 0]
        assert levenshtein_similarity_batch(a, b).tolist() == [1.0, 0.0, 0.0, 1.0]

    def test_empty_batch(self):
        assert levenshtein_distance_batch([], []).shape == (0,)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            levenshtein_distance_batch(["a"], [])


class TestJaroWinkler:
    @pytest.mark.parametrize("alphabet", sorted(ALPHABETS))
    def test_bit_identical_to_scalar(self, alphabet):
        rng = np.random.default_rng(hash(alphabet) % (2**31))
        a = random_strings(rng, 300, ALPHABETS[alphabet], 24)
        b = random_strings(rng, 300, ALPHABETS[alphabet], 24)
        batched = jaro_winkler_similarity_batch(a, b)
        for index, (left, right) in enumerate(zip(a, b)):
            assert batched[index] == jaro_winkler_similarity(left, right)

    def test_equal_strings_are_exactly_one(self):
        values = ["", "a", "hello world", "é水"]
        batched = jaro_winkler_similarity_batch(values, list(values))
        assert batched.tolist() == [1.0] * len(values)

    def test_transposition_heavy_pairs(self):
        a = ["martha", "dixon", "crate", "ab"]
        b = ["marhta", "dicksonx", "trace", "ba"]
        batched = jaro_winkler_similarity_batch(a, b)
        for index, (left, right) in enumerate(zip(a, b)):
            assert batched[index] == jaro_winkler_similarity(left, right)


class TestCombinedEntryPoint:
    def test_matches_individual_kernels(self):
        rng = np.random.default_rng(9)
        a = random_strings(rng, 200, ALPHABETS["unicode"], 24)
        b = random_strings(rng, 200, ALPHABETS["unicode"], 24)
        lev, jw = char_similarities_batch(a, b)
        assert (lev == levenshtein_similarity_batch(a, b)).all()
        assert (jw == jaro_winkler_similarity_batch(a, b)).all()

    def test_scalar_parity_on_short_strings(self):
        pairs = [
            ("", ""), ("", "x"), ("x", ""), ("a", "b"),
            ("ab", "ab"), ("abc", "acb"), ("aaaa", "aa"),
        ]
        a = [left for left, _ in pairs]
        b = [right for _, right in pairs]
        lev, jw = char_similarities_batch(a, b)
        for index, (left, right) in enumerate(pairs):
            assert lev[index] == levenshtein_similarity(left, right)
            assert jw[index] == jaro_winkler_similarity(left, right)
