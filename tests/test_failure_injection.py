"""Failure injection: misbehaving black boxes must fail loudly, not subtly.

Perturbation explainers sit between the user and an arbitrary model.  When
that model misbehaves — NaN scores, wrong output shapes, exceptions — the
explainer must surface a clear error instead of returning plausible-looking
garbage weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.landmark import LandmarkExplainer
from repro.data.records import EMDataset
from repro.exceptions import ExplanationError
from repro.explainers.kernel_shap import KernelShapExplainer
from repro.explainers.lime_text import LimeConfig, LimeTextExplainer
from repro.matchers.base import EntityMatcher

NAMES = ("a", "b", "c")


class BrokenMatcher(EntityMatcher):
    """A matcher whose predictions misbehave in a configurable way."""

    def __init__(self, mode: str) -> None:
        self.mode = mode

    def fit(self, dataset: EMDataset) -> "BrokenMatcher":
        return self

    def predict_proba(self, pairs):
        if self.mode == "nan":
            values = np.full(len(pairs), 0.5)
            values[0] = np.nan
            return values
        if self.mode == "inf":
            return np.full(len(pairs), np.inf)
        if self.mode == "wrong_shape":
            return np.zeros((len(pairs), 2))
        if self.mode == "raises":
            raise RuntimeError("model backend exploded")
        raise AssertionError(f"unknown mode {self.mode}")


class TestExplainerValidation:
    def test_lime_rejects_nan_probabilities(self):
        explainer = LimeTextExplainer(LimeConfig(n_samples=8, seed=0))

        def nan_box(masks):
            values = np.full(len(masks), 0.5)
            values[-1] = np.nan
            return values

        with pytest.raises(ExplanationError, match="non-finite"):
            explainer.explain(NAMES, nan_box)

    def test_lime_rejects_infinite_probabilities(self):
        explainer = LimeTextExplainer(LimeConfig(n_samples=8, seed=0))
        with pytest.raises(ExplanationError, match="non-finite"):
            explainer.explain(NAMES, lambda masks: np.full(len(masks), np.inf))

    def test_shap_rejects_nan_probabilities(self):
        explainer = KernelShapExplainer(n_samples=8, seed=0)
        with pytest.raises(ExplanationError, match="non-finite"):
            explainer.explain(NAMES, lambda masks: np.full(len(masks), np.nan))

    def test_lime_rejects_wrong_shape(self):
        explainer = LimeTextExplainer(LimeConfig(n_samples=8, seed=0))
        with pytest.raises(ExplanationError, match="shape"):
            explainer.explain(NAMES, lambda masks: np.zeros((len(masks), 2)))


class TestLandmarkPropagation:
    """Failures inside the matcher must reach the caller unchanged or as
    ExplanationError — never as silent success."""

    def test_nan_matcher_fails_loudly(self, match_pair):
        explainer = LandmarkExplainer(
            BrokenMatcher("nan"), lime_config=LimeConfig(n_samples=8, seed=0)
        )
        with pytest.raises(ExplanationError):
            explainer.explain(match_pair, "single")

    def test_wrong_shape_matcher_fails_loudly(self, match_pair):
        explainer = LandmarkExplainer(
            BrokenMatcher("wrong_shape"),
            lime_config=LimeConfig(n_samples=8, seed=0),
        )
        with pytest.raises(ExplanationError):
            explainer.explain(match_pair, "single")

    def test_raising_matcher_propagates(self, match_pair):
        explainer = LandmarkExplainer(
            BrokenMatcher("raises"), lime_config=LimeConfig(n_samples=8, seed=0)
        )
        with pytest.raises(RuntimeError, match="exploded"):
            explainer.explain_landmark(match_pair, "left", "single")

    def test_auto_generation_also_guarded(self, match_pair):
        # generation="auto" calls predict_one first; an exploding matcher
        # must not be masked by the resolution step.
        explainer = LandmarkExplainer(
            BrokenMatcher("raises"), lime_config=LimeConfig(n_samples=8, seed=0)
        )
        with pytest.raises(RuntimeError):
            explainer.explain(match_pair)
