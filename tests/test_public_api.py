"""The public API surface: everything advertised in repro.__all__ works."""

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_flow(self):
        """The README quickstart, condensed."""
        dataset = repro.load_dataset("S-BR", size_cap=150)
        matcher = repro.LogisticRegressionMatcher().fit(dataset)
        explainer = repro.LandmarkExplainer(
            matcher, lime_config=repro.LimeConfig(n_samples=32, seed=0)
        )
        dual = explainer.explain(dataset[0])
        assert dual.left_landmark.explanation.n_samples == 32
        assert dual.render()

    def test_exceptions_inherit_from_repro_error(self):
        from repro import exceptions

        for name in (
            "SchemaError",
            "TokenizationError",
            "DatasetError",
            "ModelNotFittedError",
            "ExplanationError",
            "ConfigurationError",
        ):
            assert issubclass(getattr(exceptions, name), exceptions.ReproError)

    def test_dataset_codes_constant(self):
        assert len(repro.DATASET_CODES) == 12
        assert repro.DATASET_CODES[0] == "S-BR"
