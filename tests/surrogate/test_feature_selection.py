"""Tests for LIME's feature-selection strategies."""

import numpy as np
import pytest

from repro.surrogate.feature_selection import forward_selection, highest_weights


@pytest.fixture()
def planted_problem():
    """Ten features; only columns 1 and 7 drive the target."""
    rng = np.random.default_rng(0)
    features = rng.integers(0, 2, size=(300, 10)).astype(float)
    target = 3.0 * features[:, 1] - 2.0 * features[:, 7] + 0.01 * rng.normal(size=300)
    weights = np.ones(300)
    return features, target, weights


class TestHighestWeights:
    def test_finds_planted_features(self, planted_problem):
        features, target, weights = planted_problem
        selected = highest_weights(features, target, weights, n_select=2)
        assert set(selected) == {1, 7}

    def test_returns_sorted_indices(self, planted_problem):
        features, target, weights = planted_problem
        selected = highest_weights(features, target, weights, n_select=4)
        assert list(selected) == sorted(selected)

    def test_select_all_shortcut(self, planted_problem):
        features, target, weights = planted_problem
        selected = highest_weights(features, target, weights, n_select=10)
        assert list(selected) == list(range(10))

    def test_select_more_than_available(self, planted_problem):
        features, target, weights = planted_problem
        selected = highest_weights(features, target, weights, n_select=99)
        assert list(selected) == list(range(10))


class TestForwardSelection:
    def test_finds_planted_features(self, planted_problem):
        features, target, weights = planted_problem
        selected = forward_selection(features, target, weights, n_select=2)
        assert set(selected) == {1, 7}

    def test_agrees_with_highest_weights_on_easy_problem(self, planted_problem):
        features, target, weights = planted_problem
        greedy = forward_selection(features, target, weights, n_select=2)
        ranked = highest_weights(features, target, weights, n_select=2)
        assert set(greedy) == set(ranked)

    def test_requested_count_returned(self, planted_problem):
        features, target, weights = planted_problem
        selected = forward_selection(features, target, weights, n_select=5)
        assert len(selected) == 5
        assert len(set(selected)) == 5
