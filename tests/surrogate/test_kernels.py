"""Tests for locality kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.surrogate.kernels import cosine_distance_to_ones, exponential_kernel


class TestCosineDistance:
    def test_full_mask_has_zero_distance(self):
        masks = np.ones((1, 8))
        assert cosine_distance_to_ones(masks)[0] == pytest.approx(0.0)

    def test_empty_mask_has_distance_one(self):
        masks = np.zeros((1, 8))
        assert cosine_distance_to_ones(masks)[0] == pytest.approx(1.0)

    def test_single_kept_token(self):
        masks = np.zeros((1, 4))
        masks[0, 0] = 1
        assert cosine_distance_to_ones(masks)[0] == pytest.approx(1 - 0.5)

    def test_monotone_in_removals(self):
        d = 10
        distances = []
        for kept in range(d, 0, -1):
            mask = np.zeros((1, d))
            mask[0, :kept] = 1
            distances.append(cosine_distance_to_ones(mask)[0])
        assert all(a < b for a, b in zip(distances, distances[1:]))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            cosine_distance_to_ones(np.ones(3))

    def test_zero_width_masks(self):
        assert cosine_distance_to_ones(np.ones((2, 0))).tolist() == [0.0, 0.0]

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=2**30))
    def test_bounded(self, d, seed):
        rng = np.random.default_rng(seed)
        masks = rng.integers(0, 2, size=(5, d))
        distances = cosine_distance_to_ones(masks)
        assert np.all(distances >= -1e-12)
        assert np.all(distances <= 1.0 + 1e-12)


class TestExponentialKernel:
    def test_zero_distance_gives_weight_one(self):
        assert exponential_kernel(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_decreasing_in_distance(self):
        weights = exponential_kernel(np.array([0.0, 0.5, 1.0]), kernel_width=0.5)
        assert weights[0] > weights[1] > weights[2]

    def test_width_controls_locality(self):
        distance = np.array([1.0])
        narrow = exponential_kernel(distance, kernel_width=0.1)
        wide = exponential_kernel(distance, kernel_width=10.0)
        assert narrow[0] < wide[0]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            exponential_kernel(np.array([0.1]), kernel_width=0.0)

    @given(st.floats(min_value=0.0, max_value=5.0), st.floats(min_value=0.01, max_value=100.0))
    def test_output_in_unit_interval(self, distance, width):
        # Tiny widths underflow to exactly 0.0 for far points; that is fine.
        weight = exponential_kernel(np.array([distance]), kernel_width=width)[0]
        assert 0.0 <= weight <= 1.0
