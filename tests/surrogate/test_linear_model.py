"""Tests for the weighted ridge / lasso surrogates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelNotFittedError
from repro.surrogate.linear_model import WeightedLasso, WeightedRidge


def linear_problem(seed=0, n=200, d=5, noise=0.01):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d))
    coef = rng.normal(size=d)
    intercept = 0.7
    target = features @ coef + intercept + noise * rng.normal(size=n)
    return features, target, coef, intercept


class TestWeightedRidge:
    def test_recovers_linear_function(self):
        features, target, coef, intercept = linear_problem()
        model = WeightedRidge(alpha=1e-8).fit(features, target)
        assert np.allclose(model.coef_, coef, atol=0.05)
        assert model.intercept_ == pytest.approx(intercept, abs=0.05)

    def test_alpha_shrinks_coefficients(self):
        features, target, *_ = linear_problem()
        weak = WeightedRidge(alpha=1e-6).fit(features, target)
        strong = WeightedRidge(alpha=1e4).fit(features, target)
        assert np.abs(strong.coef_).sum() < np.abs(weak.coef_).sum()

    def test_sample_weights_focus_the_fit(self):
        # Two clusters with different local slopes; weighting one cluster
        # should recover that cluster's slope.
        x = np.concatenate([np.linspace(0, 1, 50), np.linspace(10, 11, 50)])
        y = np.concatenate([2 * x[:50], -3 * x[50:]])
        features = x[:, None]
        weights_first = np.concatenate([np.ones(50), np.zeros(50) + 1e-9])
        model = WeightedRidge(alpha=1e-8).fit(features, y, weights_first)
        assert model.coef_[0] == pytest.approx(2.0, abs=0.01)

    def test_intercept_not_penalized(self):
        target = np.full(50, 100.0)
        features = np.random.default_rng(0).normal(size=(50, 3))
        model = WeightedRidge(alpha=1e6).fit(features, target)
        assert model.intercept_ == pytest.approx(100.0, abs=0.5)

    def test_zero_features(self):
        model = WeightedRidge().fit(np.empty((4, 0)), np.array([1.0, 2, 3, 4]))
        assert model.intercept_ == pytest.approx(2.5)
        assert model.predict(np.empty((2, 0))).tolist() == [2.5, 2.5]

    def test_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            WeightedRidge().predict(np.zeros((1, 2)))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            WeightedRidge(alpha=-1)

    def test_negative_sample_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedRidge().fit(
                np.ones((2, 1)), np.ones(2), np.array([1.0, -1.0])
            )

    def test_score_perfect_fit(self):
        features, target, *_ = linear_problem(noise=0.0)
        model = WeightedRidge(alpha=1e-10).fit(features, target)
        assert model.score(features, target) == pytest.approx(1.0, abs=1e-6)

    def test_score_constant_prediction(self):
        target = np.array([1.0, 2.0, 3.0])
        features = np.zeros((3, 1))
        model = WeightedRidge().fit(features, target)
        assert model.score(features, target) == pytest.approx(0.0, abs=1e-9)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_prediction_residuals_orthogonal_to_design(self, seed):
        # Normal equations: weighted residuals ⟂ centred columns at alpha→0.
        features, target, *_ = linear_problem(seed=seed, n=60, d=3)
        weights = np.abs(np.random.default_rng(seed).normal(size=60)) + 0.1
        model = WeightedRidge(alpha=1e-10).fit(features, target, weights)
        residual = target - model.predict(features)
        centred = features - (weights[:, None] * features).sum(0) / weights.sum()
        moments = centred.T @ (weights * residual)
        assert np.allclose(moments, 0.0, atol=1e-6)


class TestWeightedLasso:
    def test_recovers_sparse_signal(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(300, 8))
        coef = np.zeros(8)
        coef[2] = 3.0
        coef[5] = -2.0
        target = features @ coef + 0.01 * rng.normal(size=300)
        model = WeightedLasso(alpha=1.0).fit(features, target)
        assert abs(model.coef_[2] - 3.0) < 0.1
        assert abs(model.coef_[5] + 2.0) < 0.1

    def test_large_alpha_zeroes_everything(self):
        features, target, *_ = linear_problem()
        model = WeightedLasso(alpha=1e6).fit(features, target)
        assert np.allclose(model.coef_, 0.0)

    def test_sparsity_increases_with_alpha(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(120, 10))
        target = features @ rng.normal(size=10) * 0.2 + rng.normal(size=120)
        small = WeightedLasso(alpha=0.1).fit(features, target)
        large = WeightedLasso(alpha=50.0).fit(features, target)
        assert np.sum(large.coef_ == 0) >= np.sum(small.coef_ == 0)

    def test_matches_ridge_at_zero_penalty(self):
        features, target, *_ = linear_problem(noise=0.0)
        lasso = WeightedLasso(alpha=0.0, max_iter=2000).fit(features, target)
        ridge = WeightedRidge(alpha=1e-10).fit(features, target)
        assert np.allclose(lasso.coef_, ridge.coef_, atol=1e-4)

    def test_converges_before_budget(self):
        features, target, *_ = linear_problem(n=80, d=4)
        model = WeightedLasso(alpha=0.5, max_iter=500).fit(features, target)
        assert model.n_iter_ < 500

    def test_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            WeightedLasso().predict(np.zeros((1, 2)))

    def test_zero_features(self):
        model = WeightedLasso().fit(np.empty((3, 0)), np.array([2.0, 4, 6]))
        assert model.intercept_ == pytest.approx(4.0)


class TestInputValidation:
    @pytest.mark.parametrize("model_cls", [WeightedRidge, WeightedLasso])
    def test_dimension_checks(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit(np.zeros(5), np.zeros(5))  # 1-D features
        with pytest.raises(ValueError):
            model_cls().fit(np.zeros((5, 2)), np.zeros(4))  # length mismatch
        with pytest.raises(ValueError):
            model_cls().fit(np.zeros((5, 2)), np.zeros(5), np.zeros(4))
