"""Tests for the Mojito Drop / Copy baselines."""

import numpy as np
import pytest

from repro.baselines.mojito import MojitoCopyExplainer, MojitoDropExplainer
from repro.exceptions import ConfigurationError, ExplanationError
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def lime_config():
    return LimeConfig(n_samples=48, seed=0)


@pytest.fixture(scope="module")
def drop(beer_matcher, lime_config):
    return MojitoDropExplainer(beer_matcher, lime_config, seed=0)


@pytest.fixture(scope="module")
def copy(beer_matcher, lime_config):
    return MojitoCopyExplainer(beer_matcher, lime_config, seed=0)


class TestMojitoDrop:
    def test_covers_tokens_of_both_sides(self, drop, match_pair):
        explanation = drop.explain(match_pair)
        sides = {entry.side for entry in explanation.token_weights.entries}
        assert sides == {"left", "right"}

    def test_token_count_matches_record(self, drop, match_pair):
        from repro.text.tokenize import Tokenizer

        tokenizer = Tokenizer()
        expected = sum(
            len(tokenizer.tokenize_entity(match_pair.entity(side)))
            for side in ("left", "right")
        )
        explanation = drop.explain(match_pair)
        assert len(explanation.token_weights) == expected

    def test_model_probability_anchored_at_original(
        self, drop, beer_matcher, match_pair
    ):
        explanation = drop.explain(match_pair)
        assert explanation.explanation.model_probability == pytest.approx(
            beer_matcher.predict_one(match_pair)
        )

    def test_deterministic(self, drop, match_pair):
        a = drop.explain(match_pair)
        b = drop.explain(match_pair)
        assert np.array_equal(a.explanation.weights, b.explanation.weights)

    def test_removal_pair_strips_exactly_the_positive_tokens(self, drop, match_pair):
        from repro.text.tokenize import Tokenizer

        tokenizer = Tokenizer()
        explanation = drop.explain(match_pair)
        n_positive = len(explanation.token_weights.entries_by_sign("positive"))
        reduced = explanation.removal_pair("positive")

        def count_tokens(pair):
            return sum(
                len(tokenizer.tokenize_entity(pair.entity(side)))
                for side in ("left", "right")
            )

        assert count_tokens(reduced) == count_tokens(match_pair) - n_positive
        assert n_positive > 0  # a true match has positive evidence

    def test_render(self, drop, match_pair):
        assert "mojito_drop" in drop.explain(match_pair).render()


class TestMojitoCopy:
    def test_features_are_attributes(self, copy, non_match_pair):
        explanation = copy.explain(non_match_pair)
        assert explanation.explanation.feature_names == (
            non_match_pair.schema.attributes
        )

    def test_all_tokens_of_attribute_share_weight(self, copy, non_match_pair):
        explanation = copy.explain(non_match_pair)
        by_attribute: dict[str, set[float]] = {}
        for entry in explanation.token_weights.entries:
            by_attribute.setdefault(entry.attribute, set()).add(round(entry.weight, 12))
        for weights in by_attribute.values():
            assert len(weights) == 1

    def test_copy_direction_left_to_right(self, beer_matcher, lime_config, non_match_pair):
        explainer = MojitoCopyExplainer(
            beer_matcher, lime_config, copy_from="left", seed=0
        )
        rebuilt = explainer._rebuild(
            non_match_pair, np.zeros(len(non_match_pair.schema), dtype=np.int8)
        )
        assert dict(rebuilt.right) == dict(non_match_pair.left)
        assert dict(rebuilt.left) == dict(non_match_pair.left)

    def test_copy_direction_right_to_left(self, beer_matcher, lime_config, non_match_pair):
        explainer = MojitoCopyExplainer(
            beer_matcher, lime_config, copy_from="right", seed=0
        )
        assert explainer.copy_to == "left"
        rebuilt = explainer._rebuild(
            non_match_pair, np.zeros(len(non_match_pair.schema), dtype=np.int8)
        )
        assert dict(rebuilt.left) == dict(non_match_pair.right)

    def test_invalid_direction(self, beer_matcher, lime_config):
        with pytest.raises(ConfigurationError):
            MojitoCopyExplainer(beer_matcher, lime_config, copy_from="top")

    def test_discriminative_attributes_weigh_negative(
        self, copy, beer_matcher, non_match_pair
    ):
        # Keeping the original (non-copied) value of the most discriminative
        # attribute holds the record in the non-match class, so its weight
        # toward the match probability must be negative.
        explanation = copy.explain(non_match_pair)
        weights = explanation.explanation.as_dict()
        assert min(weights.values()) < 0

    def test_anchored_at_original_record(self, copy, beer_matcher, non_match_pair):
        explanation = copy.explain(non_match_pair)
        assert explanation.explanation.model_probability == pytest.approx(
            beer_matcher.predict_one(non_match_pair)
        )


class TestMojitoAttributeDrop:
    @pytest.fixture(scope="class")
    def attr_drop(self, beer_matcher, lime_config):
        from repro.baselines.mojito import MojitoAttributeDropExplainer

        return MojitoAttributeDropExplainer(beer_matcher, lime_config, seed=0)

    def test_features_are_side_attribute_cells(self, attr_drop, non_match_pair):
        explanation = attr_drop.explain(non_match_pair)
        for name in explanation.explanation.feature_names:
            side, attribute = name.split(".", 1)
            assert side in ("left", "right")
            assert attribute in non_match_pair.schema.attributes

    def test_skips_empty_cells(self, attr_drop, beer_matcher, non_match_pair):
        gappy = non_match_pair.with_left(
            {**dict(non_match_pair.left), "style": ""}
        )
        explanation = attr_drop.explain(gappy)
        assert "left.style" not in explanation.explanation.feature_names

    def test_tokens_of_a_cell_share_its_weight(self, attr_drop, non_match_pair):
        explanation = attr_drop.explain(non_match_pair)
        by_cell: dict[tuple[str, str], set[float]] = {}
        for entry in explanation.token_weights.entries:
            by_cell.setdefault((entry.side, entry.attribute), set()).add(
                round(entry.weight, 12)
            )
        for weights in by_cell.values():
            assert len(weights) == 1

    def test_weight_distribution_sums_to_cell_weight(
        self, attr_drop, non_match_pair
    ):
        explanation = attr_drop.explain(non_match_pair)
        cell_weights = explanation.explanation.as_dict()
        totals: dict[str, float] = {}
        for entry in explanation.token_weights.entries:
            key = f"{entry.side}.{entry.attribute}"
            totals[key] = totals.get(key, 0.0) + entry.weight
        for key, total in totals.items():
            assert total == pytest.approx(cell_weights[key], abs=1e-9)

    def test_anchored_at_original(self, attr_drop, beer_matcher, non_match_pair):
        explanation = attr_drop.explain(non_match_pair)
        assert explanation.explanation.model_probability == pytest.approx(
            beer_matcher.predict_one(non_match_pair)
        )

    def test_empty_record_rejected(self, attr_drop, beer_dataset):
        from repro.exceptions import ExplanationError

        empty = beer_dataset[0].with_left(
            {a: "" for a in beer_dataset.schema.attributes}
        ).with_right({a: "" for a in beer_dataset.schema.attributes})
        with pytest.raises(ExplanationError):
            attr_drop.explain(empty)
