"""Tests for PairSchema."""

import pytest

from repro.data.schema import LEFT_PREFIX, RIGHT_PREFIX, PairSchema
from repro.exceptions import SchemaError


class TestConstruction:
    def test_basic(self):
        schema = PairSchema(("name", "price"))
        assert len(schema) == 2
        assert list(schema) == ["name", "price"]
        assert "name" in schema
        assert "missing" not in schema

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            PairSchema(())

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            PairSchema(("name", "name"))

    def test_reserved_name_rejected(self):
        with pytest.raises(SchemaError):
            PairSchema(("label",))

    def test_hash_rejected(self):
        with pytest.raises(SchemaError):
            PairSchema(("na#me",))

    def test_side_prefix_rejected(self):
        with pytest.raises(SchemaError):
            PairSchema(("left_name",))

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            PairSchema(("",))


class TestColumns:
    def test_left_right_columns(self):
        schema = PairSchema(("name",))
        assert schema.left_column("name") == LEFT_PREFIX + "name"
        assert schema.right_column("name") == RIGHT_PREFIX + "name"

    def test_unknown_attribute_raises(self):
        schema = PairSchema(("name",))
        with pytest.raises(SchemaError):
            schema.left_column("price")

    def test_flat_columns_order(self):
        schema = PairSchema(("name", "price"))
        assert schema.flat_columns() == [
            "left_name",
            "left_price",
            "right_name",
            "right_price",
        ]


class TestValidationAndConform:
    def test_validate_accepts_exact(self):
        schema = PairSchema(("name",))
        schema.validate_entity({"name": "x"})  # should not raise

    def test_validate_rejects_missing(self):
        schema = PairSchema(("name", "price"))
        with pytest.raises(SchemaError, match="missing"):
            schema.validate_entity({"name": "x"})

    def test_validate_rejects_extra(self):
        schema = PairSchema(("name",))
        with pytest.raises(SchemaError, match="extra"):
            schema.validate_entity({"name": "x", "brand": "y"})

    def test_conform_fills_gaps(self):
        schema = PairSchema(("name", "price"))
        assert schema.conform({"name": "x"}) == {"name": "x", "price": ""}

    def test_conform_none_becomes_empty(self):
        schema = PairSchema(("name",))
        assert schema.conform({"name": None}) == {"name": ""}

    def test_conform_rejects_unknown(self):
        schema = PairSchema(("name",))
        with pytest.raises(SchemaError):
            schema.conform({"brand": "y"})

    def test_empty_entity(self):
        schema = PairSchema(("a", "b"))
        assert schema.empty_entity() == {"a": "", "b": ""}


class TestFromFlatColumns:
    def test_round_trip(self):
        schema = PairSchema(("name", "price"))
        inferred = PairSchema.from_flat_columns(
            ["pair_id", "label", *schema.flat_columns()]
        )
        assert inferred.attributes == schema.attributes

    def test_unpaired_columns_rejected(self):
        with pytest.raises(SchemaError):
            PairSchema.from_flat_columns(["left_name", "right_price"])

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            PairSchema.from_flat_columns(["left_name", "right_name", "weird"])

    def test_preserves_left_order(self):
        inferred = PairSchema.from_flat_columns(
            ["left_b", "left_a", "right_a", "right_b"]
        )
        assert inferred.attributes == ("b", "a")
