"""Tests for the synthetic benchmark: corruption, generator, dirty, magellan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.records import MATCH, NON_MATCH
from repro.data.synthetic.corruption import (
    CorruptionConfig,
    corrupt_entity,
    corrupt_value,
)
from repro.data.synthetic.dirty import make_dirty
from repro.data.synthetic.generator import SyntheticEMGenerator
from repro.data.synthetic.magellan import (
    DATASET_CODES,
    DATASET_SPECS,
    load_benchmark,
    load_dataset,
    table1_rows,
)
from repro.data.synthetic.vocabularies import ALL_FACTORIES, BEER_FACTORY
from repro.exceptions import DatasetError
from repro.text.similarity import jaccard_similarity


class TestCorruption:
    def test_empty_value_stays_empty(self):
        rng = np.random.default_rng(0)
        assert corrupt_value("name", "", rng, CorruptionConfig()) == ""

    def test_never_empties_a_value(self):
        rng = np.random.default_rng(0)
        config = CorruptionConfig(token_drop=0.95)
        for _ in range(50):
            assert corrupt_value("name", "alpha beta gamma", rng, config) != ""

    def test_numeric_drift_preserves_decimals(self):
        rng = np.random.default_rng(0)
        config = CorruptionConfig(numeric_drift=1.0, numeric_relative_sigma=0.05)
        drifted = corrupt_value("price", "849.99", rng, config)
        assert "." in drifted
        assert len(drifted.split(".")[1]) == 2

    def test_numeric_attribute_not_tokenized(self):
        rng = np.random.default_rng(0)
        config = CorruptionConfig(numeric_drift=0.0)
        assert corrupt_value("price", "849.99", rng, config) == "849.99"

    def test_corrupt_entity_covers_all_attributes(self):
        rng = np.random.default_rng(0)
        entity = {"name": "golden dragon palace", "city": "boston"}
        corrupted = corrupt_entity(entity, rng)
        assert set(corrupted) == set(entity)

    def test_deterministic_given_rng_state(self):
        entity = {"name": "alpha beta gamma delta"}
        a = corrupt_entity(entity, np.random.default_rng(5))
        b = corrupt_entity(entity, np.random.default_rng(5))
        assert a == b

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25)
    def test_corruption_invariants(self, seed):
        # True invariants: a non-empty value stays non-empty and token
        # drops/edits never *add* tokens.  (Zero token overlap is possible
        # in the extreme — drop all but one word, then typo it — so overlap
        # is checked on average in test_match_pairs_share_identity_tokens.)
        rng = np.random.default_rng(seed)
        value = "golden dragon palace kitchen garden"
        corrupted = corrupt_value("name", value, rng, CorruptionConfig())
        assert corrupted != ""
        assert len(corrupted.split()) <= len(value.split())


class TestGenerator:
    def test_match_rate_respected(self):
        generator = SyntheticEMGenerator(BEER_FACTORY, match_rate=0.2, seed=0)
        dataset = generator.generate(200)
        assert dataset.match_count == 40

    def test_match_pairs_share_identity_tokens(self):
        generator = SyntheticEMGenerator(BEER_FACTORY, match_rate=0.5, seed=0)
        dataset = generator.generate(100)
        overlaps = []
        for pair in dataset.by_label(MATCH):
            left_tokens = " ".join(pair.left.values()).split()
            right_tokens = " ".join(pair.right.values()).split()
            overlaps.append(jaccard_similarity(left_tokens, right_tokens))
        assert np.mean(overlaps) > 0.4

    def test_matches_overlap_more_than_non_matches(self):
        generator = SyntheticEMGenerator(BEER_FACTORY, match_rate=0.5, seed=0)
        dataset = generator.generate(200)

        def mean_overlap(label):
            values = []
            for pair in dataset.by_label(label):
                values.append(
                    jaccard_similarity(
                        " ".join(pair.left.values()).split(),
                        " ".join(pair.right.values()).split(),
                    )
                )
            return np.mean(values)

        assert mean_overlap(MATCH) > mean_overlap(NON_MATCH) + 0.15

    def test_hard_negatives_share_tokens(self):
        hard = SyntheticEMGenerator(
            BEER_FACTORY, match_rate=0.1, hard_negative_fraction=1.0, seed=0
        ).generate(100)
        easy = SyntheticEMGenerator(
            BEER_FACTORY, match_rate=0.1, hard_negative_fraction=0.0, seed=0
        ).generate(100)

        def mean_overlap(dataset):
            values = []
            for pair in dataset.by_label(NON_MATCH):
                values.append(
                    jaccard_similarity(
                        " ".join(pair.left.values()).split(),
                        " ".join(pair.right.values()).split(),
                    )
                )
            return np.mean(values)

        assert mean_overlap(hard) > mean_overlap(easy)

    def test_deterministic(self):
        a = SyntheticEMGenerator(BEER_FACTORY, seed=3).generate(50)
        b = SyntheticEMGenerator(BEER_FACTORY, seed=3).generate(50)
        for pair_a, pair_b in zip(a, b):
            assert dict(pair_a.left) == dict(pair_b.left)
            assert pair_a.label == pair_b.label

    def test_size_validation(self):
        with pytest.raises(DatasetError):
            SyntheticEMGenerator(BEER_FACTORY).generate(1)

    def test_match_rate_validation(self):
        with pytest.raises(DatasetError):
            SyntheticEMGenerator(BEER_FACTORY, match_rate=0.0)

    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
    def test_every_factory_generates_schema_complete_entities(self, factory):
        generator = SyntheticEMGenerator(factory, match_rate=0.3, seed=0)
        dataset = generator.generate(30)
        for pair in dataset:
            assert set(pair.left) == set(factory.attributes)
            assert set(pair.right) == set(factory.attributes)

    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=lambda f: f.name)
    def test_similar_entities_differ_from_seed(self, factory):
        rng = np.random.default_rng(0)
        for _ in range(10):
            seed_entity = factory.make(rng)
            similar = factory.make_similar(rng, seed_entity)
            assert similar != seed_entity


class TestDirty:
    def test_moves_values_into_anchor(self):
        dataset = SyntheticEMGenerator(BEER_FACTORY, seed=0).generate(100)
        dirty = make_dirty(dataset, move_probability=1.0, seed=0)
        pair = dirty[0]
        anchor = dataset.schema.attributes[0]
        for attribute in dataset.schema.attributes:
            if attribute != anchor:
                assert pair.left[attribute] == ""
        # everything landed in the anchor
        original = dataset[0]
        for attribute in dataset.schema.attributes:
            for word in original.left[attribute].split():
                assert word in pair.left[anchor]

    def test_zero_probability_is_identity(self):
        dataset = SyntheticEMGenerator(BEER_FACTORY, seed=0).generate(50)
        dirty = make_dirty(dataset, move_probability=0.0)
        for original, dirtied in zip(dataset, dirty):
            assert dict(original.left) == dict(dirtied.left)

    def test_labels_unchanged(self):
        dataset = SyntheticEMGenerator(BEER_FACTORY, seed=0).generate(50)
        dirty = make_dirty(dataset, seed=1)
        assert np.array_equal(dataset.labels, dirty.labels)

    def test_bad_anchor_rejected(self):
        dataset = SyntheticEMGenerator(BEER_FACTORY, seed=0).generate(10)
        with pytest.raises(ValueError):
            make_dirty(dataset, anchor="nope")

    def test_bad_probability_rejected(self):
        dataset = SyntheticEMGenerator(BEER_FACTORY, seed=0).generate(10)
        with pytest.raises(ValueError):
            make_dirty(dataset, move_probability=1.5)


class TestMagellan:
    def test_twelve_datasets(self):
        assert len(DATASET_CODES) == 12

    def test_specs_match_table1(self):
        spec = DATASET_SPECS["S-WA"]
        assert spec.size == 10242
        assert spec.match_percent == 9.39
        assert spec.full_name == "Walmart-Amazon"

    def test_load_dataset_size_cap(self):
        dataset = load_dataset("S-DG", size_cap=150)
        assert len(dataset) == 150

    def test_match_rate_close_to_spec(self):
        dataset = load_dataset("S-IA", size_cap=500)
        assert abs(dataset.match_rate - 0.2449) < 0.02

    def test_small_datasets_have_exact_size(self):
        dataset = load_dataset("S-BR")
        assert len(dataset) == 450

    def test_dirty_variant_is_dirty(self):
        clean = load_dataset("S-IA", size_cap=200)
        dirty = load_dataset("D-IA", size_cap=200)
        empty_clean = sum(
            1 for p in clean for v in list(p.left.values()) if not v
        )
        empty_dirty = sum(
            1 for p in dirty for v in list(p.left.values()) if not v
        )
        assert empty_dirty > empty_clean

    def test_unknown_code_rejected(self):
        with pytest.raises(DatasetError, match="unknown dataset code"):
            load_dataset("S-XX")

    def test_deterministic_across_loads(self):
        a = load_dataset("S-FZ", seed=2, size_cap=80)
        b = load_dataset("S-FZ", seed=2, size_cap=80)
        assert dict(a[0].left) == dict(b[0].left)

    def test_load_benchmark_subset(self):
        datasets = load_benchmark(size_cap=60, codes=("S-BR", "D-IA"))
        assert set(datasets) == {"S-BR", "D-IA"}

    def test_table1_rows_nominal(self):
        rows = table1_rows()
        assert len(rows) == 12
        assert rows[0]["code"] == "S-BR"
        assert rows[0]["size"] == 450

    def test_table1_rows_measured(self):
        datasets = load_benchmark(size_cap=60, codes=("S-BR",))
        rows = table1_rows(datasets)
        row = next(r for r in rows if r["code"] == "S-BR")
        assert row["measured_size"] == 60
