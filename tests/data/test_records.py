"""Tests for RecordPair and EMDataset."""

import numpy as np
import pytest

from repro.data.records import EMDataset, MATCH, NON_MATCH, RecordPair
from repro.data.schema import PairSchema
from repro.exceptions import DatasetError, SchemaError


@pytest.fixture()
def schema():
    return PairSchema(("name", "price"))


@pytest.fixture()
def pair(schema):
    return RecordPair(
        schema=schema,
        left={"name": "sony camera", "price": "849.99"},
        right={"name": "nikon case", "price": "7.99"},
        label=NON_MATCH,
        pair_id=3,
    )


class TestRecordPair:
    def test_entities_are_read_only(self, pair):
        with pytest.raises(TypeError):
            pair.left["name"] = "hacked"

    def test_label_validation(self, schema):
        with pytest.raises(SchemaError):
            RecordPair(schema, {"name": "a", "price": ""}, {"name": "b", "price": ""}, label=2)

    def test_schema_validation(self, schema):
        with pytest.raises(SchemaError):
            RecordPair(schema, {"name": "a"}, {"name": "b", "price": ""})

    def test_none_values_become_empty_strings(self, schema):
        pair = RecordPair(
            schema, {"name": None, "price": "1"}, {"name": "b", "price": ""}
        )
        assert pair.left["name"] == ""

    def test_entity_accessor(self, pair):
        assert pair.entity("left") is pair.left
        assert pair.entity("right") is pair.right
        with pytest.raises(ValueError):
            pair.entity("middle")

    def test_with_left_replaces_and_conforms(self, pair):
        updated = pair.with_left({"name": "new"})
        assert updated.left["name"] == "new"
        assert updated.left["price"] == ""
        assert updated.right == pair.right
        assert updated.label == pair.label
        # original untouched
        assert pair.left["name"] == "sony camera"

    def test_with_side(self, pair):
        assert pair.with_side("right", {"name": "z"}).right["name"] == "z"
        with pytest.raises(ValueError):
            pair.with_side("top", {})

    def test_swapped(self, pair):
        swapped = pair.swapped()
        assert swapped.left == pair.right
        assert swapped.right == pair.left
        assert swapped.label == pair.label

    def test_flat_layout(self, pair):
        flat = pair.flat()
        assert flat["left_name"] == "sony camera"
        assert flat["right_price"] == "7.99"
        assert list(flat) == ["left_name", "left_price", "right_name", "right_price"]

    def test_is_match(self, schema):
        match = RecordPair(
            schema, {"name": "a", "price": ""}, {"name": "a", "price": ""}, MATCH
        )
        assert match.is_match

    def test_describe_mentions_label_and_values(self, pair):
        text = pair.describe()
        assert "non-match" in text
        assert "sony camera" in text


class TestEMDataset:
    def _dataset(self, schema, labels):
        pairs = [
            RecordPair(
                schema,
                {"name": f"item {i}", "price": str(i)},
                {"name": f"item {i}", "price": str(i)},
                label=label,
                pair_id=i,
            )
            for i, label in enumerate(labels)
        ]
        return EMDataset("toy", schema, pairs)

    def test_len_iter_getitem(self, schema):
        dataset = self._dataset(schema, [0, 1, 0])
        assert len(dataset) == 3
        assert dataset[1].label == 1
        assert [p.pair_id for p in dataset] == [0, 1, 2]

    def test_labels_and_match_rate(self, schema):
        dataset = self._dataset(schema, [0, 1, 0, 1])
        assert np.array_equal(dataset.labels, [0, 1, 0, 1])
        assert dataset.match_count == 2
        assert dataset.match_rate == 0.5

    def test_empty_dataset_match_rate(self, schema):
        dataset = EMDataset("empty", schema, [])
        assert dataset.match_rate == 0.0

    def test_by_label(self, schema):
        dataset = self._dataset(schema, [0, 1, 0])
        assert len(dataset.by_label(MATCH)) == 1
        assert len(dataset.by_label(NON_MATCH)) == 2

    def test_subset(self, schema):
        dataset = self._dataset(schema, [0, 1, 0])
        sub = dataset.subset([2, 0], name="sub")
        assert [p.pair_id for p in sub] == [2, 0]
        assert sub.name == "sub"

    def test_append_enforces_schema(self, schema):
        dataset = self._dataset(schema, [0])
        other_schema = PairSchema(("title",))
        bad = RecordPair(other_schema, {"title": "x"}, {"title": "y"})
        with pytest.raises(DatasetError):
            dataset.append(bad)

    def test_constructor_enforces_schema(self, schema):
        other_schema = PairSchema(("title",))
        bad = RecordPair(other_schema, {"title": "x"}, {"title": "y"})
        with pytest.raises(DatasetError):
            EMDataset("bad", schema, [bad])

    def test_summary_matches_table1_shape(self, schema):
        dataset = self._dataset(schema, [0, 1, 0, 0])
        summary = dataset.summary()
        assert summary["size"] == 4
        assert summary["match_percent"] == 25.0
        assert summary["attributes"] == ["name", "price"]
