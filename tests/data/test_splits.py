"""Tests for train/test splitting and per-label sampling."""

import numpy as np
import pytest

from repro.data.records import EMDataset, MATCH, NON_MATCH, RecordPair
from repro.data.schema import PairSchema
from repro.data.splits import sample_per_label, train_test_split
from repro.exceptions import DatasetError


def make_dataset(n_match: int, n_non_match: int) -> EMDataset:
    schema = PairSchema(("name",))
    pairs = []
    for i in range(n_match):
        pairs.append(
            RecordPair(schema, {"name": f"m{i}"}, {"name": f"m{i}"}, MATCH, i)
        )
    for i in range(n_non_match):
        pairs.append(
            RecordPair(
                schema,
                {"name": f"a{i}"},
                {"name": f"b{i}"},
                NON_MATCH,
                n_match + i,
            )
        )
    return EMDataset("toy", schema, pairs)


class TestTrainTestSplit:
    def test_partition_is_exact(self):
        dataset = make_dataset(20, 80)
        train, test = train_test_split(dataset, test_fraction=0.25, seed=1)
        assert len(train) + len(test) == len(dataset)
        train_ids = {p.pair_id for p in train}
        test_ids = {p.pair_id for p in test}
        assert not train_ids & test_ids

    def test_stratification_preserves_match_rate(self):
        dataset = make_dataset(20, 80)
        train, test = train_test_split(dataset, test_fraction=0.25, seed=1)
        assert test.match_count == 5
        assert train.match_count == 15

    def test_deterministic_given_seed(self):
        dataset = make_dataset(10, 40)
        _, test_a = train_test_split(dataset, seed=7)
        _, test_b = train_test_split(dataset, seed=7)
        assert [p.pair_id for p in test_a] == [p.pair_id for p in test_b]

    def test_different_seeds_differ(self):
        dataset = make_dataset(10, 90)
        _, test_a = train_test_split(dataset, seed=1)
        _, test_b = train_test_split(dataset, seed=2)
        assert [p.pair_id for p in test_a] != [p.pair_id for p in test_b]

    def test_invalid_fraction(self):
        dataset = make_dataset(5, 5)
        with pytest.raises(DatasetError):
            train_test_split(dataset, test_fraction=0.0)
        with pytest.raises(DatasetError):
            train_test_split(dataset, test_fraction=1.0)

    def test_tiny_dataset_rejected(self):
        dataset = make_dataset(1, 0)
        with pytest.raises(DatasetError):
            train_test_split(dataset)

    def test_unstratified_still_partitions(self):
        dataset = make_dataset(10, 30)
        train, test = train_test_split(dataset, stratified=False, seed=0)
        assert len(train) + len(test) == 40

    def test_accepts_generator(self):
        dataset = make_dataset(10, 30)
        rng = np.random.default_rng(0)
        train, test = train_test_split(dataset, seed=rng)
        assert len(train) + len(test) == 40


class TestSamplePerLabel:
    def test_caps_each_class(self):
        dataset = make_dataset(30, 200)
        sample = sample_per_label(dataset, per_label=25, seed=0)
        assert sample.by_label(MATCH).pairs and len(sample.by_label(MATCH)) == 25
        assert len(sample.by_label(NON_MATCH)) == 25

    def test_takes_all_when_class_is_small(self):
        # The paper: S-BR has only 68 matching records, all are used.
        dataset = make_dataset(8, 200)
        sample = sample_per_label(dataset, per_label=100, seed=0)
        assert len(sample.by_label(MATCH)) == 8
        assert len(sample.by_label(NON_MATCH)) == 100

    def test_deterministic(self):
        dataset = make_dataset(50, 50)
        a = sample_per_label(dataset, per_label=10, seed=3)
        b = sample_per_label(dataset, per_label=10, seed=3)
        assert [p.pair_id for p in a] == [p.pair_id for p in b]

    def test_sampling_without_replacement(self):
        dataset = make_dataset(50, 50)
        sample = sample_per_label(dataset, per_label=40, seed=0)
        ids = [p.pair_id for p in sample]
        assert len(ids) == len(set(ids))

    def test_invalid_per_label(self):
        dataset = make_dataset(5, 5)
        with pytest.raises(DatasetError):
            sample_per_label(dataset, per_label=0)
