"""Tests for the inverted-index blocker."""

import pytest

from repro.blocking import BlockingReport, InvertedIndexBlocker
from repro.data.synthetic.generator import SyntheticEMGenerator
from repro.data.synthetic.vocabularies import WALMART_AMAZON_FACTORY
from repro.exceptions import ConfigurationError

LEFT = [
    {"name": "sony digital camera", "city": "boston"},
    {"name": "golden dragon palace", "city": "denver"},
    {"name": "acme anvils", "city": "tulsa"},
]
RIGHT = [
    {"name": "sony camera bag", "city": "boston"},
    {"name": "golden dragon", "city": "denver"},
    {"name": "completely unrelated", "city": "miami"},
]


class TestValidation:
    def test_min_shared_tokens(self):
        with pytest.raises(ConfigurationError):
            InvertedIndexBlocker(min_shared_tokens=0)

    def test_max_token_frequency(self):
        with pytest.raises(ConfigurationError):
            InvertedIndexBlocker(max_token_frequency=0.0)


class TestCandidates:
    def test_shared_token_pairs_found(self):
        blocker = InvertedIndexBlocker(attributes=("name",), min_shared_tokens=1)
        pairs = blocker.candidates(LEFT, RIGHT)
        assert (0, 0) in pairs  # sony, camera
        assert (1, 1) in pairs  # golden, dragon
        assert (2, 2) not in pairs  # nothing shared

    def test_min_shared_tokens_tightens(self):
        loose = InvertedIndexBlocker(attributes=("name",), min_shared_tokens=1)
        tight = InvertedIndexBlocker(attributes=("name",), min_shared_tokens=2)
        assert set(tight.candidates(LEFT, RIGHT)) <= set(loose.candidates(LEFT, RIGHT))

    def test_all_attributes_by_default(self):
        blocker = InvertedIndexBlocker(min_shared_tokens=1)
        pairs = blocker.candidates(LEFT, RIGHT)
        # "boston" links (0, 0) through the city attribute even at name
        # mismatch ... but (0,0) also shares name tokens; check a city-only
        # link: denver links (1, 1) and nothing else new.
        assert (0, 0) in pairs

    def test_stopword_like_tokens_pruned(self):
        left = [{"name": f"the item{i}"} for i in range(10)]
        right = [{"name": f"the widget{i}"} for i in range(10)]
        blocker = InvertedIndexBlocker(min_shared_tokens=1, max_token_frequency=0.2)
        # "the" appears in every right record → pruned → no candidates.
        assert blocker.candidates(left, right) == []

    def test_empty_tables(self):
        blocker = InvertedIndexBlocker()
        assert blocker.candidates([], RIGHT) == []
        assert blocker.candidates(LEFT, []) == []

    def test_candidates_sorted_and_unique(self):
        blocker = InvertedIndexBlocker(min_shared_tokens=1)
        pairs = blocker.candidates(LEFT, RIGHT)
        assert pairs == sorted(set(pairs))


class TestReport:
    def test_reduction_and_completeness(self):
        blocker = InvertedIndexBlocker(attributes=("name",), min_shared_tokens=1)
        gold = {(0, 0), (1, 1)}
        pairs, report = blocker.report(LEFT, RIGHT, gold)
        assert report.n_candidates == len(pairs)
        assert report.pair_completeness == 1.0
        assert 0.0 < report.reduction_ratio < 1.0

    def test_missed_gold_lowers_completeness(self):
        blocker = InvertedIndexBlocker(attributes=("name",), min_shared_tokens=1)
        gold = {(0, 0), (2, 2)}  # (2, 2) shares nothing
        _, report = blocker.report(LEFT, RIGHT, gold)
        assert report.pair_completeness == 0.5

    def test_no_gold_means_completeness_one(self):
        _, report = InvertedIndexBlocker().report(LEFT, RIGHT)
        assert report.pair_completeness == 1.0
        assert report.n_gold == 0

    def test_render(self):
        _, report = InvertedIndexBlocker().report(LEFT, RIGHT, {(0, 0)})
        assert "reduction ratio" in report.render()

    def test_empty_report_guards(self):
        report = BlockingReport(n_left=0, n_right=0, n_candidates=0)
        assert report.reduction_ratio == 0.0


class TestOnSyntheticCatalogs:
    def test_high_reduction_high_completeness(self):
        generator = SyntheticEMGenerator(WALMART_AMAZON_FACTORY, seed=3)
        left, right, gold = generator.generate_tables(n_entities=150, overlap=0.4)
        blocker = InvertedIndexBlocker(
            attributes=("title", "brand", "modelno"), min_shared_tokens=2
        )
        _, report = blocker.report(left, right, gold)
        assert report.reduction_ratio > 0.9
        assert report.pair_completeness > 0.9


class TestGenerateTables:
    def test_shapes_and_gold(self):
        generator = SyntheticEMGenerator(WALMART_AMAZON_FACTORY, seed=0)
        left, right, gold = generator.generate_tables(n_entities=40, overlap=0.5)
        assert len(left) == 40
        assert len(right) == 40
        assert len(gold) == 20
        for left_id, right_id in gold:
            assert 0 <= left_id < 40
            assert 0 <= right_id < 40

    def test_gold_pairs_share_tokens(self):
        from repro.text.similarity import jaccard_similarity

        generator = SyntheticEMGenerator(WALMART_AMAZON_FACTORY, seed=0)
        left, right, gold = generator.generate_tables(n_entities=40, overlap=0.5)
        for left_id, right_id in list(gold)[:10]:
            overlap = jaccard_similarity(
                " ".join(left[left_id].values()).split(),
                " ".join(right[right_id].values()).split(),
            )
            assert overlap > 0.1

    def test_deterministic(self):
        a = SyntheticEMGenerator(WALMART_AMAZON_FACTORY, seed=5).generate_tables(20)
        b = SyntheticEMGenerator(WALMART_AMAZON_FACTORY, seed=5).generate_tables(20)
        assert a[0] == b[0]
        assert a[2] == b[2]

    def test_validation(self):
        generator = SyntheticEMGenerator(WALMART_AMAZON_FACTORY)
        with pytest.raises(Exception):
            generator.generate_tables(0)
        with pytest.raises(Exception):
            generator.generate_tables(10, overlap=1.5)
