"""Tests for CSV round-tripping."""

import pytest

from repro.data.io import read_csv, write_csv
from repro.data.records import EMDataset, RecordPair
from repro.data.schema import PairSchema
from repro.exceptions import DatasetError


@pytest.fixture()
def dataset():
    schema = PairSchema(("name", "price"))
    pairs = [
        RecordPair(
            schema,
            {"name": "sony camera", "price": "849.99"},
            {"name": "nikon case", "price": "7.99"},
            label=0,
            pair_id=0,
        ),
        RecordPair(
            schema,
            {"name": "golden ale", "price": ""},
            {"name": "golden ale", "price": ""},
            label=1,
            pair_id=1,
        ),
    ]
    return EMDataset("toy", schema, pairs)


class TestRoundTrip:
    def test_values_survive(self, dataset, tmp_path):
        path = tmp_path / "toy.csv"
        write_csv(dataset, path)
        loaded = read_csv(path)
        assert len(loaded) == len(dataset)
        assert loaded.schema.attributes == dataset.schema.attributes
        for original, restored in zip(dataset, loaded):
            assert dict(original.left) == dict(restored.left)
            assert dict(original.right) == dict(restored.right)
            assert original.label == restored.label
            assert original.pair_id == restored.pair_id

    def test_name_defaults_to_stem(self, dataset, tmp_path):
        path = tmp_path / "mydata.csv"
        write_csv(dataset, path)
        assert read_csv(path).name == "mydata"

    def test_explicit_name(self, dataset, tmp_path):
        path = tmp_path / "x.csv"
        write_csv(dataset, path)
        assert read_csv(path, name="custom").name == "custom"

    def test_benchmark_dataset_round_trips(self, tmp_path):
        from repro.data.synthetic.magellan import load_dataset

        original = load_dataset("S-FZ", size_cap=60)
        path = tmp_path / "sfz.csv"
        write_csv(original, path)
        loaded = read_csv(path)
        assert len(loaded) == len(original)
        assert loaded.match_count == original.match_count


class TestReadErrors:
    def test_missing_label_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("left_name,right_name\na,b\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="label"):
            read_csv(path)

    def test_bad_label_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("label,left_name,right_name\nmaybe,a,b\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="bad label"):
            read_csv(path)

    def test_bad_pair_id(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "pair_id,label,left_name,right_name\nxyz,0,a,b\n", encoding="utf-8"
        )
        with pytest.raises(DatasetError, match="pair_id"):
            read_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_csv(path)

    def test_missing_pair_id_uses_row_order(self, tmp_path):
        path = tmp_path / "ok.csv"
        path.write_text(
            "label,left_name,right_name\n0,a,b\n1,c,c\n", encoding="utf-8"
        )
        loaded = read_csv(path)
        assert [p.pair_id for p in loaded] == [0, 1]


class TestIllFormedInputs:
    """Hardening for real-world exports: BOM, blank rows, bad cells."""

    def test_utf8_bom_is_stripped(self, tmp_path):
        path = tmp_path / "bom.csv"
        path.write_bytes(
            b"\xef\xbb\xbfpair_id,label,left_name,right_name\n7,1,a,a\n"
        )
        loaded = read_csv(path)
        assert loaded.schema.attributes == ("name",)
        assert loaded.pairs[0].pair_id == 7

    def test_blank_rows_skipped_silently(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text(
            "label,left_name,right_name\n0,a,b\n,,\n\n1,c,c\n   , ,\n",
            encoding="utf-8",
        )
        loaded = read_csv(path)
        assert [p.label for p in loaded] == [0, 1]

    def test_missing_cells_default_to_empty(self, tmp_path):
        # Short row: the right_price cell is absent entirely.
        path = tmp_path / "short.csv"
        path.write_text(
            "label,left_name,left_price,right_name,right_price\n1,a,9,b\n",
            encoding="utf-8",
        )
        loaded = read_csv(path)
        assert loaded.pairs[0].right["price"] == ""

    def test_extra_cells_ignored(self, tmp_path):
        path = tmp_path / "long.csv"
        path.write_text(
            "label,left_name,right_name\n1,a,b,STRAY,STRAY2\n",
            encoding="utf-8",
        )
        loaded = read_csv(path)
        assert dict(loaded.pairs[0].left) == {"name": "a"}

    def test_mixed_dtype_cells_read_as_text(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text(
            "label,left_price,right_price\n1,9.99,free\n0,10,10.0\n",
            encoding="utf-8",
        )
        loaded = read_csv(path)
        assert loaded.pairs[0].left["price"] == "9.99"
        assert loaded.pairs[0].right["price"] == "free"

    def test_whitespace_label_and_pair_id_parse(self, tmp_path):
        path = tmp_path / "ws.csv"
        path.write_text(
            "pair_id,label,left_name,right_name\n 3 , 1 ,a,a\n",
            encoding="utf-8",
        )
        loaded = read_csv(path)
        assert loaded.pairs[0].pair_id == 3
        assert loaded.pairs[0].label == 1

    def test_strict_mode_still_aborts(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "label,left_name,right_name\n1,a,b\nWAT,c,d\n", encoding="utf-8"
        )
        with pytest.raises(DatasetError, match="bad label"):
            read_csv(path)

    def test_on_row_error_skips_and_reports(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "pair_id,label,left_name,right_name\n"
            "0,1,a,a\n"
            "1,WAT,b,b\n"
            "zzz,0,c,d\n"
            "3,0,e,f\n",
            encoding="utf-8",
        )
        failures = []
        loaded = read_csv(
            path, on_row_error=lambda index, error: failures.append((index, error))
        )
        assert [p.pair_id for p in loaded] == [0, 3]
        assert [index for index, _ in failures] == [1, 2]
        assert all(isinstance(error, DatasetError) for _, error in failures)
        assert "bad label" in str(failures[0][1])
        assert "pair_id" in str(failures[1][1])

    def test_header_errors_raise_even_in_lenient_mode(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_csv(path, on_row_error=lambda *a: None)
        path2 = tmp_path / "nolabel.csv"
        path2.write_text("left_name,right_name\na,b\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="label"):
            read_csv(path2, on_row_error=lambda *a: None)
