"""Tests for CSV round-tripping."""

import pytest

from repro.data.io import read_csv, write_csv
from repro.data.records import EMDataset, RecordPair
from repro.data.schema import PairSchema
from repro.exceptions import DatasetError


@pytest.fixture()
def dataset():
    schema = PairSchema(("name", "price"))
    pairs = [
        RecordPair(
            schema,
            {"name": "sony camera", "price": "849.99"},
            {"name": "nikon case", "price": "7.99"},
            label=0,
            pair_id=0,
        ),
        RecordPair(
            schema,
            {"name": "golden ale", "price": ""},
            {"name": "golden ale", "price": ""},
            label=1,
            pair_id=1,
        ),
    ]
    return EMDataset("toy", schema, pairs)


class TestRoundTrip:
    def test_values_survive(self, dataset, tmp_path):
        path = tmp_path / "toy.csv"
        write_csv(dataset, path)
        loaded = read_csv(path)
        assert len(loaded) == len(dataset)
        assert loaded.schema.attributes == dataset.schema.attributes
        for original, restored in zip(dataset, loaded):
            assert dict(original.left) == dict(restored.left)
            assert dict(original.right) == dict(restored.right)
            assert original.label == restored.label
            assert original.pair_id == restored.pair_id

    def test_name_defaults_to_stem(self, dataset, tmp_path):
        path = tmp_path / "mydata.csv"
        write_csv(dataset, path)
        assert read_csv(path).name == "mydata"

    def test_explicit_name(self, dataset, tmp_path):
        path = tmp_path / "x.csv"
        write_csv(dataset, path)
        assert read_csv(path, name="custom").name == "custom"

    def test_benchmark_dataset_round_trips(self, tmp_path):
        from repro.data.synthetic.magellan import load_dataset

        original = load_dataset("S-FZ", size_cap=60)
        path = tmp_path / "sfz.csv"
        write_csv(original, path)
        loaded = read_csv(path)
        assert len(loaded) == len(original)
        assert loaded.match_count == original.match_count


class TestReadErrors:
    def test_missing_label_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("left_name,right_name\na,b\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="label"):
            read_csv(path)

    def test_bad_label_value(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("label,left_name,right_name\nmaybe,a,b\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="bad label"):
            read_csv(path)

    def test_bad_pair_id(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "pair_id,label,left_name,right_name\nxyz,0,a,b\n", encoding="utf-8"
        )
        with pytest.raises(DatasetError, match="pair_id"):
            read_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_csv(path)

    def test_missing_pair_id_uses_row_order(self, tmp_path):
        path = tmp_path / "ok.csv"
        path.write_text(
            "label,left_name,right_name\n0,a,b\n1,c,c\n", encoding="utf-8"
        )
        loaded = read_csv(path)
        assert [p.pair_id for p in loaded] == [0, 1]
