"""Tests for dataset profiling."""

import pytest

from repro.data.profiling import profile_dataset
from repro.data.records import EMDataset
from repro.data.synthetic.magellan import load_dataset
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def profile(beer_dataset):
    return profile_dataset(beer_dataset)


class TestDatasetProfile:
    def test_basic_shape(self, profile, beer_dataset):
        assert profile.n_pairs == len(beer_dataset)
        assert profile.match_rate == pytest.approx(beer_dataset.match_rate)
        assert len(profile.attributes) == len(beer_dataset.schema.attributes)

    def test_matches_overlap_more(self, profile):
        assert profile.record_match_overlap > profile.record_non_match_overlap
        assert profile.overlap_gap > 0.1

    def test_attribute_overlaps_bounded(self, profile):
        for attribute_profile in profile.attributes:
            assert 0.0 <= attribute_profile.match_overlap <= 1.0
            assert 0.0 <= attribute_profile.non_match_overlap <= 1.0
            assert 0.0 <= attribute_profile.empty_rate <= 1.0
            assert attribute_profile.mean_tokens >= 0.0

    def test_separation_ranking_sorted(self, profile):
        ranking = profile.ranking_by_separation()
        separations = {
            attribute_profile.attribute: attribute_profile.separation
            for attribute_profile in profile.attributes
        }
        values = [separations[attribute] for attribute in ranking]
        assert values == sorted(values, reverse=True)

    def test_separation_ranking_predicts_model_ranking(
        self, profile, beer_matcher
    ):
        # The attribute with the biggest class-overlap gap should be near
        # the top of the trained model's own ranking.
        top_data = profile.ranking_by_separation()[0]
        assert top_data in beer_matcher.attribute_ranking()[:2]

    def test_dirty_variant_has_emptier_attributes(self):
        clean = profile_dataset(load_dataset("S-IA", size_cap=200))
        dirty = profile_dataset(load_dataset("D-IA", size_cap=200))
        clean_empty = sum(a.empty_rate for a in clean.attributes)
        dirty_empty = sum(a.empty_rate for a in dirty.attributes)
        assert dirty_empty > clean_empty

    def test_render(self, profile):
        text = profile.render()
        assert "record overlap" in text
        assert "beer_name" in text

    def test_empty_dataset_rejected(self, beer_dataset):
        empty = EMDataset("empty", beer_dataset.schema, [])
        with pytest.raises(DatasetError):
            profile_dataset(empty)
