"""Tests for the Anchors explainer and its landmark coupling."""

import numpy as np
import pytest

from repro.core.generation import GENERATION_SINGLE, LandmarkGenerator
from repro.exceptions import ConfigurationError
from repro.explainers.anchors import (
    AnchorExplanation,
    AnchorsTextExplainer,
    anchor_for_landmark,
)

NAMES = ("alpha", "beta", "gamma", "delta", "epsilon")


def single_token_box(pivot_index: int):
    """Class 1 iff the pivot token is present — the ideal anchor target."""

    def predict_masks(masks):
        return masks[:, pivot_index].astype(float)

    return predict_masks


class TestValidation:
    def test_precision_threshold(self):
        with pytest.raises(ConfigurationError):
            AnchorsTextExplainer(precision_threshold=0.4)

    def test_sample_count(self):
        with pytest.raises(ConfigurationError):
            AnchorsTextExplainer(n_samples_per_candidate=2)

    def test_beam_width(self):
        with pytest.raises(ConfigurationError):
            AnchorsTextExplainer(beam_width=0)

    def test_max_anchor_size(self):
        with pytest.raises(ConfigurationError):
            AnchorsTextExplainer(max_anchor_size=0)


class TestSearch:
    def test_finds_the_pivot_token(self):
        explainer = AnchorsTextExplainer(seed=0)
        explanation = explainer.explain(NAMES, single_token_box(2))
        assert explanation.anchor_tokens == ("gamma",)
        assert explanation.precision == 1.0
        assert explanation.predicted_class == 1

    def test_conjunction_anchor(self):
        # class 1 iff tokens 0 AND 3 both present.
        def box(masks):
            return (masks[:, 0] & masks[:, 3]).astype(float)

        explanation = AnchorsTextExplainer(seed=0).explain(NAMES, box)
        assert set(explanation.anchor_tokens) == {"alpha", "delta"}

    def test_coverage_halves_per_anchor_token(self):
        explanation = AnchorsTextExplainer(seed=0).explain(NAMES, single_token_box(0))
        # one forced token → roughly half of random masks satisfy the rule
        assert 0.3 < explanation.coverage < 0.7

    def test_max_size_respected(self):
        def noisy_box(masks):
            rng = np.random.default_rng(0)
            return rng.random(len(masks))  # no anchor can be precise

        explanation = AnchorsTextExplainer(
            max_anchor_size=2, n_samples_per_candidate=8, seed=0
        ).explain(NAMES, noisy_box)
        assert len(explanation.anchor_indices) <= 2

    def test_deterministic(self):
        a = AnchorsTextExplainer(seed=1).explain(NAMES, single_token_box(4))
        b = AnchorsTextExplainer(seed=1).explain(NAMES, single_token_box(4))
        assert a.anchor_indices == b.anchor_indices
        assert a.precision == b.precision

    def test_model_call_budget_tracked(self):
        explanation = AnchorsTextExplainer(seed=0).explain(
            NAMES, single_token_box(1)
        )
        assert explanation.n_model_calls > len(NAMES)

    def test_render(self):
        explanation = AnchorsTextExplainer(seed=0).explain(
            NAMES, single_token_box(1)
        )
        text = explanation.render()
        assert "IF beta PRESENT THEN match" in text


class TestLandmarkCoupling:
    def test_anchor_for_landmark(self, beer_matcher, match_pair):
        instance = LandmarkGenerator().generate(
            match_pair, "left", GENERATION_SINGLE
        )
        explanation = anchor_for_landmark(
            instance,
            beer_matcher,
            AnchorsTextExplainer(n_samples_per_candidate=16, seed=0),
        )
        assert isinstance(explanation, AnchorExplanation)
        assert explanation.predicted_class == 1
        # Anchor tokens are prefixed tokens of the varying (right) entity.
        for token in explanation.anchor_tokens:
            assert "#" in token
