"""Tests for perturbation-mask sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explainers.perturbation import sample_masks


class TestSampleMasks:
    def test_shape(self):
        masks = sample_masks(7, 32, np.random.default_rng(0))
        assert masks.shape == (32, 7)

    def test_first_row_is_original(self):
        masks = sample_masks(5, 16, np.random.default_rng(0))
        assert masks[0].tolist() == [1, 1, 1, 1, 1]

    def test_every_other_row_has_a_removal(self):
        masks = sample_masks(5, 64, np.random.default_rng(0))
        assert np.all(masks[1:].sum(axis=1) < 5)

    def test_binary_values(self):
        masks = sample_masks(4, 40, np.random.default_rng(3))
        assert set(np.unique(masks)) <= {0, 1}

    def test_without_original(self):
        masks = sample_masks(5, 64, np.random.default_rng(0), include_original=False)
        # With 64 samples of 1..5 removals, all-ones should never appear.
        assert np.all(masks.sum(axis=1) < 5)

    def test_removal_sizes_cover_the_range(self):
        masks = sample_masks(6, 500, np.random.default_rng(0))
        removal_sizes = set((6 - masks[1:].sum(axis=1)).tolist())
        assert removal_sizes == {1, 2, 3, 4, 5, 6}

    def test_zero_features(self):
        masks = sample_masks(0, 8, np.random.default_rng(0))
        assert masks.shape == (8, 0)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_masks(-1, 8, rng)
        with pytest.raises(ValueError):
            sample_masks(3, 0, rng)

    def test_deterministic_given_seed(self):
        a = sample_masks(6, 30, np.random.default_rng(9))
        b = sample_masks(6, 30, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_rows_are_distinct_when_hypercube_permits(self):
        # 2^10 - 1 distinct removal masks >> 95 requested rows: no dupes.
        masks = sample_masks(10, 96, np.random.default_rng(0))
        assert len({row.tobytes() for row in masks}) == 96

    def test_small_hypercube_is_fully_covered(self):
        # d=3 has exactly 7 distinct masks with >= 1 removal; a 8-row
        # request (anchor + 7) must enumerate them all.
        masks = sample_masks(3, 8, np.random.default_rng(0))
        assert len({row.tobytes() for row in masks[1:]}) == 7

    def test_duplicates_only_beyond_capacity(self):
        # Requesting more rows than the hypercube holds: the first
        # 1 + capacity rows stay distinct, the overflow repeats.
        masks = sample_masks(3, 20, np.random.default_rng(1))
        assert len({row.tobytes() for row in masks[:8]}) == 8
        assert np.all(masks[8:].sum(axis=1) < 3)

    def test_distinct_without_original(self):
        masks = sample_masks(8, 40, np.random.default_rng(2), include_original=False)
        assert len({row.tobytes() for row in masks}) == 40

    def test_near_capacity_d16(self):
        # Regression for the vectorized deterministic top-up
        # (_missing_rows): at d=16 a request close to the 2^16 - 1
        # hypercube capacity must still produce fully distinct rows with
        # >= 1 removal each, with no pattern emitted twice.
        d, capacity = 16, (1 << 16) - 1
        n = capacity - 100
        masks = sample_masks(d, n, np.random.default_rng(5))
        assert masks.shape == (n, d)
        assert masks[0].sum() == d
        assert np.all(masks[1:].sum(axis=1) < d)
        assert len({row.tobytes() for row in masks}) == n

    def test_near_capacity_overflow_d16(self):
        # One past capacity: exactly the anchor + every hypercube pattern,
        # then duplicates.
        d, capacity = 16, (1 << 16) - 1
        masks = sample_masks(d, capacity + 2, np.random.default_rng(6))
        distinct = {row.tobytes() for row in masks}
        assert len(distinct) == capacity + 1

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=2, max_value=64),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30)
    def test_invariants(self, d, n, seed):
        masks = sample_masks(d, n, np.random.default_rng(seed))
        assert masks.shape == (n, d)
        assert masks[0].sum() == d
        assert np.all((masks == 0) | (masks == 1))
        # Distinctness whenever the hypercube permits: the anchor plus
        # min(n - 1, 2^d - 1) pairwise-distinct perturbations.
        expected = 1 + min(n - 1, (1 << d) - 1)
        assert len({row.tobytes() for row in masks}) == expected
