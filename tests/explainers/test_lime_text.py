"""Tests for the from-scratch LIME explainer.

The strongest check available for any LIME implementation: when the black
box *is* a (noisy) linear function of the mask, the surrogate must recover
its coefficients.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ExplanationError
from repro.explainers.lime_text import LimeConfig, LimeTextExplainer


def linear_black_box(coef, intercept=0.1):
    coef = np.asarray(coef)

    def predict_masks(masks):
        return masks @ coef + intercept

    return predict_masks


NAMES = ("alpha", "beta", "gamma", "delta")


class TestConfigValidation:
    def test_bad_n_samples(self):
        with pytest.raises(ConfigurationError):
            LimeConfig(n_samples=1)

    def test_bad_surrogate(self):
        with pytest.raises(ConfigurationError):
            LimeConfig(surrogate="svm")

    def test_bad_selection(self):
        with pytest.raises(ConfigurationError):
            LimeConfig(selection="magic")

    def test_bad_num_features(self):
        with pytest.raises(ConfigurationError):
            LimeConfig(num_features=0)


class TestRecovery:
    def test_recovers_linear_coefficients(self):
        coef = np.array([0.4, -0.3, 0.2, 0.0])
        explainer = LimeTextExplainer(LimeConfig(n_samples=512, alpha=1e-6, seed=0))
        explanation = explainer.explain(NAMES, linear_black_box(coef))
        assert np.allclose(explanation.weights, coef, atol=0.02)

    def test_model_probability_is_first_row(self):
        coef = np.array([0.1, 0.1, 0.1, 0.1])
        explainer = LimeTextExplainer(LimeConfig(n_samples=64, seed=0))
        explanation = explainer.explain(NAMES, linear_black_box(coef, intercept=0.2))
        assert explanation.model_probability == pytest.approx(0.6)

    def test_surrogate_probability_close_to_model_on_linear_box(self):
        coef = np.array([0.2, -0.1, 0.05, 0.15])
        explainer = LimeTextExplainer(LimeConfig(n_samples=512, alpha=1e-6, seed=0))
        explanation = explainer.explain(NAMES, linear_black_box(coef))
        assert explanation.surrogate_probability == pytest.approx(
            explanation.model_probability, abs=0.01
        )

    def test_r2_high_on_linear_box(self):
        coef = np.array([0.3, -0.2, 0.1, 0.05])
        explainer = LimeTextExplainer(LimeConfig(n_samples=256, alpha=1e-6, seed=0))
        explanation = explainer.explain(NAMES, linear_black_box(coef))
        assert explanation.score > 0.99

    def test_lasso_surrogate_sparsifies(self):
        coef = np.array([0.5, 0.0, 0.0, 0.0])
        explainer = LimeTextExplainer(
            LimeConfig(n_samples=512, surrogate="lasso", alpha=2.0, seed=0)
        )
        explanation = explainer.explain(NAMES, linear_black_box(coef))
        assert abs(explanation.weights[0]) > 0.1
        assert np.allclose(explanation.weights[1:], 0.0, atol=0.02)

    def test_num_features_restricts_support(self):
        coef = np.array([0.5, -0.4, 0.01, 0.01])
        explainer = LimeTextExplainer(
            LimeConfig(n_samples=512, num_features=2, seed=0)
        )
        explanation = explainer.explain(NAMES, linear_black_box(coef))
        nonzero = np.flatnonzero(explanation.weights)
        assert set(nonzero) == {0, 1}

    def test_forward_selection_path(self):
        coef = np.array([0.5, -0.4, 0.0, 0.0])
        explainer = LimeTextExplainer(
            LimeConfig(n_samples=256, num_features=2, selection="forward_selection", seed=0)
        )
        explanation = explainer.explain(NAMES, linear_black_box(coef))
        nonzero = set(np.flatnonzero(explanation.weights))
        assert nonzero == {0, 1}


class TestContract:
    def test_duplicate_names_rejected(self):
        explainer = LimeTextExplainer(LimeConfig(n_samples=8, seed=0))
        with pytest.raises(ExplanationError):
            explainer.explain(("a", "a"), linear_black_box([0.1, 0.1]))

    def test_empty_names_rejected(self):
        explainer = LimeTextExplainer(LimeConfig(n_samples=8, seed=0))
        with pytest.raises(ExplanationError):
            explainer.explain((), lambda masks: np.zeros(len(masks)))

    def test_bad_prediction_shape_rejected(self):
        explainer = LimeTextExplainer(LimeConfig(n_samples=8, seed=0))
        with pytest.raises(ExplanationError):
            explainer.explain(("a", "b"), lambda masks: np.zeros(3))

    def test_deterministic_given_seed(self):
        coef = np.array([0.3, -0.1, 0.2, 0.0])
        config = LimeConfig(n_samples=64, seed=42)
        a = LimeTextExplainer(config).explain(NAMES, linear_black_box(coef))
        b = LimeTextExplainer(config).explain(NAMES, linear_black_box(coef))
        assert np.array_equal(a.weights, b.weights)

    def test_metadata_records_settings(self):
        explainer = LimeTextExplainer(LimeConfig(n_samples=16, seed=0))
        explanation = explainer.explain(NAMES, linear_black_box([0.1] * 4))
        assert explanation.metadata["surrogate"] == "ridge"
        assert explanation.n_samples == 16
