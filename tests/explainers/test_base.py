"""Tests for the Explanation container."""

import numpy as np
import pytest

from repro.exceptions import ExplanationError
from repro.explainers.base import Explanation


def make_explanation(weights=(0.5, -0.2, 0.1)):
    names = tuple(f"tok{i}" for i in range(len(weights)))
    return Explanation(
        feature_names=names,
        weights=np.array(weights),
        intercept=0.3,
        score=0.9,
        model_probability=0.8,
        surrogate_probability=0.75,
        n_samples=64,
    )


class TestConstruction:
    def test_weight_shape_mismatch(self):
        with pytest.raises(ExplanationError):
            Explanation(
                feature_names=("a", "b"),
                weights=np.array([1.0]),
                intercept=0.0,
                score=0.0,
                model_probability=0.0,
                surrogate_probability=0.0,
                n_samples=2,
            )

    def test_len(self):
        assert len(make_explanation()) == 3


class TestAccessors:
    def test_as_dict(self):
        explanation = make_explanation()
        assert explanation.as_dict() == {
            "tok0": 0.5,
            "tok1": -0.2,
            "tok2": pytest.approx(0.1),
        }

    def test_weight_of(self):
        assert make_explanation().weight_of("tok1") == pytest.approx(-0.2)

    def test_weight_of_unknown(self):
        with pytest.raises(ExplanationError):
            make_explanation().weight_of("nope")

    def test_sum_of(self):
        assert make_explanation().sum_of(["tok0", "tok2"]) == pytest.approx(0.6)

    def test_sum_of_unknown(self):
        with pytest.raises(ExplanationError):
            make_explanation().sum_of(["tok0", "ghost"])


class TestTop:
    def test_top_orders_by_magnitude(self):
        top = make_explanation().top(2)
        assert [name for name, _ in top] == ["tok0", "tok1"]

    def test_top_positive_only(self):
        top = make_explanation().top(5, sign="positive")
        assert all(weight > 0 for _, weight in top)
        assert [name for name, _ in top] == ["tok0", "tok2"]

    def test_top_negative_only(self):
        top = make_explanation().top(5, sign="negative")
        assert [name for name, _ in top] == ["tok1"]

    def test_invalid_sign(self):
        with pytest.raises(ValueError):
            make_explanation().top(3, sign="sideways")


class TestRender:
    def test_render_mentions_diagnostics(self):
        text = make_explanation().render()
        assert "R²=0.900" in text
        assert "tok0" in text
