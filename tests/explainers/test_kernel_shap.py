"""Tests for the Kernel SHAP explainer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ExplanationError
from repro.explainers.kernel_shap import KernelShapExplainer, shapley_kernel_weights

NAMES = ("alpha", "beta", "gamma", "delta")


def linear_black_box(coef, intercept=0.1):
    coef = np.asarray(coef)

    def predict_masks(masks):
        return masks @ coef + intercept

    return predict_masks


class TestShapleyKernelWeights:
    def test_anchors_get_huge_weight(self):
        masks = np.array([[1, 1, 1], [0, 0, 0], [1, 0, 0]])
        weights = shapley_kernel_weights(masks)
        assert weights[0] > 1e5
        assert weights[1] > 1e5
        assert weights[2] < 1e5

    def test_symmetric_in_coalition_size(self):
        masks = np.array([[1, 0, 0, 0], [1, 1, 1, 0]])
        weights = shapley_kernel_weights(masks)
        # |z|=1 and |z|=d-1 get the same kernel weight.
        assert weights[0] == pytest.approx(weights[1])

    def test_known_value(self):
        # d=4, |z|=2: (4-1) / (C(4,2) * 2 * 2) = 3/24.
        masks = np.array([[1, 1, 0, 0]])
        assert shapley_kernel_weights(masks)[0] == pytest.approx(3 / 24)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            shapley_kernel_weights(np.ones(3))


class TestKernelShap:
    def test_recovers_linear_coefficients_exactly(self):
        # For an additive model, Shapley values equal the coefficients.
        coef = np.array([0.4, -0.3, 0.2, 0.0])
        explainer = KernelShapExplainer(n_samples=256, seed=0)
        explanation = explainer.explain(NAMES, linear_black_box(coef))
        assert np.allclose(explanation.weights, coef, atol=1e-6)

    def test_efficiency_axiom(self):
        # Σ shapley values = f(full) − f(empty).
        rng = np.random.default_rng(0)
        coef = rng.normal(size=4) * 0.2

        def box(masks):
            return masks @ coef + 0.3

        explanation = KernelShapExplainer(n_samples=256, seed=0).explain(NAMES, box)
        assert explanation.weights.sum() == pytest.approx(coef.sum(), abs=1e-5)
        assert explanation.intercept == pytest.approx(0.3, abs=1e-5)

    def test_single_feature(self):
        explanation = KernelShapExplainer(n_samples=16, seed=0).explain(
            ("only",), lambda masks: masks[:, 0] * 0.5 + 0.2
        )
        assert explanation.weights[0] == pytest.approx(0.5, abs=1e-6)

    def test_plugs_into_landmark_explainer(self, beer_matcher, match_pair):
        from repro.core.landmark import LandmarkExplainer

        explainer = LandmarkExplainer(
            beer_matcher, explainer=KernelShapExplainer(n_samples=64, seed=0)
        )
        dual = explainer.explain(match_pair, "single")
        assert len(dual.combined()) > 0
        assert dual.left_landmark.explanation.metadata["surrogate"] == "kernel_shap"

    def test_landmark_rejects_both_configs(self, beer_matcher):
        from repro.core.landmark import LandmarkExplainer
        from repro.explainers.lime_text import LimeConfig

        with pytest.raises(ConfigurationError):
            LandmarkExplainer(
                beer_matcher,
                lime_config=LimeConfig(n_samples=8),
                explainer=KernelShapExplainer(),
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            KernelShapExplainer(n_samples=2)
        with pytest.raises(ConfigurationError):
            KernelShapExplainer(alpha=-1.0)
        with pytest.raises(ExplanationError):
            KernelShapExplainer(seed=0).explain((), lambda m: np.zeros(len(m)))
        with pytest.raises(ExplanationError):
            KernelShapExplainer(seed=0).explain(
                ("a", "a"), lambda m: np.zeros(len(m))
            )

    def test_deterministic(self):
        coef = np.array([0.1, 0.2, -0.1, 0.05])
        a = KernelShapExplainer(n_samples=64, seed=3).explain(
            NAMES, linear_black_box(coef)
        )
        b = KernelShapExplainer(n_samples=64, seed=3).explain(
            NAMES, linear_black_box(coef)
        )
        assert np.array_equal(a.weights, b.weights)
