"""Tests for the rule-based matcher."""

import pytest

from repro.data.records import RecordPair
from repro.data.schema import PairSchema
from repro.exceptions import ConfigurationError
from repro.matchers.evaluate import evaluate_matcher
from repro.matchers.rules import MatchRule, RuleBasedMatcher


@pytest.fixture()
def schema():
    return PairSchema(("name", "city"))


def make_pair(schema, left_name, right_name, city="boston"):
    return RecordPair(
        schema,
        {"name": left_name, "city": city},
        {"name": right_name, "city": city},
    )


class TestMatchRule:
    def test_requires_predicates(self):
        with pytest.raises(ConfigurationError):
            MatchRule({})

    def test_threshold_bounds(self):
        with pytest.raises(ConfigurationError):
            MatchRule({"name": 1.5})

    def test_margin_positive_when_rule_fires(self, schema):
        rule = MatchRule({"name": 0.5})
        pair = make_pair(schema, "golden dragon", "golden dragon")
        assert rule.margin(pair) > 0

    def test_margin_negative_when_rule_fails(self, schema):
        rule = MatchRule({"name": 0.9})
        pair = make_pair(schema, "golden dragon", "silver fox")
        assert rule.margin(pair) < 0

    def test_conjunction_takes_worst_predicate(self, schema):
        rule = MatchRule({"name": 0.5, "city": 0.5})
        pair = RecordPair(
            schema,
            {"name": "golden dragon", "city": "boston"},
            {"name": "golden dragon", "city": "denver"},
        )
        assert rule.margin(pair) < 0  # city fails even though name passes

    def test_describe(self):
        rule = MatchRule({"name": 0.6})
        assert "jaccard(name) >= 0.60" in rule.describe()


class TestRuleBasedMatcher:
    def test_hand_written_rules(self, schema):
        matcher = RuleBasedMatcher([MatchRule({"name": 0.5})])
        same = make_pair(schema, "golden dragon", "golden dragon")
        different = make_pair(schema, "golden dragon", "red lion pub")
        assert matcher.predict_one(same) > 0.5
        assert matcher.predict_one(different) < 0.5

    def test_any_rule_fires_dnf(self, schema):
        matcher = RuleBasedMatcher(
            [MatchRule({"name": 0.99}), MatchRule({"city": 0.5})]
        )
        pair = make_pair(schema, "abc", "xyz")  # same city
        assert matcher.predict_one(pair) > 0.5

    def test_predict_without_rules_raises(self, schema):
        matcher = RuleBasedMatcher()
        with pytest.raises(ConfigurationError):
            matcher.predict_proba([make_pair(schema, "a", "b")])

    def test_fit_synthesizes_a_threshold(self, beer_dataset):
        matcher = RuleBasedMatcher().fit(beer_dataset)
        assert matcher.rules
        quality = evaluate_matcher(matcher, beer_dataset)
        assert quality.f1 > 0.4  # crude, but far better than chance

    def test_fit_keeps_explicit_rules(self, beer_dataset):
        rule = MatchRule({"beer_name": 0.7})
        matcher = RuleBasedMatcher([rule]).fit(beer_dataset)
        assert matcher.rules == [rule]

    def test_describe_lists_rules(self, schema):
        matcher = RuleBasedMatcher([MatchRule({"name": 0.5})])
        assert "jaccard(name)" in matcher.describe()

    def test_probabilities_bounded(self, beer_dataset):
        matcher = RuleBasedMatcher().fit(beer_dataset)
        probabilities = matcher.predict_proba(beer_dataset.pairs[:30])
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0
