"""Tests for the token-embedding matcher."""

import numpy as np
import pytest

from repro.data.splits import train_test_split
from repro.exceptions import DatasetError, ModelNotFittedError
from repro.matchers.embedding import EmbeddingMatcher
from repro.matchers.evaluate import evaluate_matcher


@pytest.fixture(scope="module")
def embedding_matcher(beer_dataset):
    return EmbeddingMatcher(epochs=100, seed=0).fit(beer_dataset)


class TestValidation:
    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            EmbeddingMatcher(embedding_dim=0)
        with pytest.raises(ValueError):
            EmbeddingMatcher(hidden_size=0)

    def test_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            EmbeddingMatcher().predict_proba([])
        with pytest.raises(ModelNotFittedError):
            EmbeddingMatcher().vocabulary_size

    def test_single_class_rejected(self, beer_dataset):
        with pytest.raises(DatasetError):
            EmbeddingMatcher().fit(beer_dataset.by_label(1))


class TestLearning:
    def test_fits_training_data(self, beer_dataset, embedding_matcher):
        quality = evaluate_matcher(embedding_matcher, beer_dataset)
        assert quality.f1 > 0.9

    def test_generalizes_to_held_out_pairs(self, beer_dataset):
        train, test = train_test_split(beer_dataset, test_fraction=0.3, seed=0)
        matcher = EmbeddingMatcher(epochs=100, seed=0).fit(train)
        quality = evaluate_matcher(matcher, test)
        assert quality.f1 > 0.5

    def test_loss_decreases(self, embedding_matcher):
        history = embedding_matcher.loss_history_
        assert history[-1] < history[0] * 0.5

    def test_vocabulary_includes_oov_bucket(self, embedding_matcher):
        assert embedding_matcher.vocabulary_["<oov>"] == 0
        assert embedding_matcher.vocabulary_size > 10

    def test_probabilities_bounded(self, beer_dataset, embedding_matcher):
        probabilities = embedding_matcher.predict_proba(beer_dataset.pairs[:40])
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0

    def test_deterministic(self, beer_dataset):
        a = EmbeddingMatcher(epochs=20, seed=4).fit(beer_dataset)
        b = EmbeddingMatcher(epochs=20, seed=4).fit(beer_dataset)
        probs_a = a.predict_proba(beer_dataset.pairs[:10])
        probs_b = b.predict_proba(beer_dataset.pairs[:10])
        assert np.allclose(probs_a, probs_b)

    def test_unseen_tokens_fall_back_to_oov(self, beer_dataset, embedding_matcher):
        pair = beer_dataset[0].with_right(
            {
                "beer_name": "zzzz qqqq totally unseen words",
                "brew_factory_name": "xylophone",
                "style": "mystery",
                "abv": "1.0",
            }
        )
        probability = embedding_matcher.predict_one(pair)
        assert 0.0 <= probability <= 1.0

    def test_empty_attribute_gives_zero_summary(self, beer_dataset, embedding_matcher):
        pair = beer_dataset[0].with_right(
            {"beer_name": "", "brew_factory_name": "", "style": "", "abv": ""}
        )
        probability = embedding_matcher.predict_one(pair)
        assert 0.0 <= probability <= 1.0


class TestTokenSensitivity:
    def test_responds_to_single_token_removal(
        self, beer_dataset, embedding_matcher
    ):
        # Unlike pure similarity features, the embedding model must react
        # to removing an identity token from one side of a match.
        match = next(pair for pair in beer_dataset if pair.is_match)
        original = embedding_matcher.predict_one(match)
        gutted = match.with_right(
            {**dict(match.right), "beer_name": ""}
        )
        changed = embedding_matcher.predict_one(gutted)
        assert abs(original - changed) > 0.01

    def test_explains_through_landmark_pipeline(
        self, beer_dataset, embedding_matcher
    ):
        from repro.core.landmark import LandmarkExplainer
        from repro.explainers.lime_text import LimeConfig

        explainer = LandmarkExplainer(
            embedding_matcher, lime_config=LimeConfig(n_samples=32, seed=0)
        )
        dual = explainer.explain(beer_dataset[0])
        assert len(dual.combined()) > 0


class TestTokenSaliency:
    def test_covers_every_token(self, beer_dataset, embedding_matcher):
        from repro.text.normalize import tokens_of

        pair = beer_dataset[0]
        saliency = embedding_matcher.token_saliency(pair)
        expected = sum(
            len(tokens_of(value))
            for entity in (pair.left, pair.right)
            for value in entity.values()
        )
        assert len(saliency) == expected
        assert all(np.isfinite(v) for v in saliency.values())

    def test_requires_fit(self):
        from repro.matchers.embedding import EmbeddingMatcher

        with pytest.raises(ModelNotFittedError):
            EmbeddingMatcher().token_saliency(None)

    def test_agrees_with_occlusion_on_average(
        self, beer_dataset, embedding_matcher
    ):
        from scipy.stats import spearmanr

        from repro.core.explanation import remove_tokens_from_pair

        rhos = []
        for pair in beer_dataset.pairs[:5]:
            saliency = embedding_matcher.token_saliency(pair)
            if len(saliency) < 3:
                continue
            p0 = embedding_matcher.predict_one(pair)
            occlusion = {
                key: p0
                - embedding_matcher.predict_one(
                    remove_tokens_from_pair(pair, [key])
                )
                for key in saliency
            }
            keys = list(saliency)
            if np.ptp([occlusion[k] for k in keys]) == 0.0:
                continue
            rhos.append(
                spearmanr(
                    [saliency[k] for k in keys], [occlusion[k] for k in keys]
                ).statistic
            )
        assert rhos
        assert float(np.mean(rhos)) > 0.1
