"""Tests for the gradient-boosted stumps matcher."""

import numpy as np
import pytest

from repro.data.splits import train_test_split
from repro.exceptions import DatasetError, ModelNotFittedError
from repro.matchers.boosting import GradientBoostedStumpsMatcher, Stump
from repro.matchers.evaluate import evaluate_matcher


@pytest.fixture(scope="module")
def boosted(beer_dataset):
    return GradientBoostedStumpsMatcher(n_stumps=50).fit(beer_dataset)


class TestStump:
    def test_routes_by_threshold(self):
        stump = Stump(feature=1, threshold=0.5, left_value=-1.0, right_value=2.0)
        features = np.array([[0.0, 0.2], [0.0, 0.9]])
        assert stump.predict(features).tolist() == [-1.0, 2.0]


class TestValidation:
    def test_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientBoostedStumpsMatcher(n_stumps=0)
        with pytest.raises(ValueError):
            GradientBoostedStumpsMatcher(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedStumpsMatcher(n_thresholds=0)

    def test_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            GradientBoostedStumpsMatcher().predict_proba([])
        with pytest.raises(ModelNotFittedError):
            GradientBoostedStumpsMatcher().feature_usage()

    def test_single_class_rejected(self, beer_dataset):
        with pytest.raises(DatasetError):
            GradientBoostedStumpsMatcher().fit(beer_dataset.by_label(1))


class TestLearning:
    def test_fits_the_benchmark(self, beer_dataset, boosted):
        quality = evaluate_matcher(boosted, beer_dataset)
        assert quality.f1 > 0.85

    def test_generalizes(self, beer_dataset):
        train, test = train_test_split(beer_dataset, test_fraction=0.3, seed=0)
        matcher = GradientBoostedStumpsMatcher(n_stumps=40).fit(train)
        assert evaluate_matcher(matcher, test).f1 > 0.6

    def test_more_stumps_do_not_hurt_training_fit(self, beer_dataset):
        small = GradientBoostedStumpsMatcher(n_stumps=5).fit(beer_dataset)
        large = GradientBoostedStumpsMatcher(n_stumps=60).fit(beer_dataset)
        assert (
            evaluate_matcher(large, beer_dataset).f1
            >= evaluate_matcher(small, beer_dataset).f1 - 1e-9
        )

    def test_probabilities_bounded(self, beer_dataset, boosted):
        probabilities = boosted.predict_proba(beer_dataset.pairs[:40])
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0

    def test_deterministic(self, beer_dataset):
        a = GradientBoostedStumpsMatcher(n_stumps=15).fit(beer_dataset)
        b = GradientBoostedStumpsMatcher(n_stumps=15).fit(beer_dataset)
        probs_a = a.predict_proba(beer_dataset.pairs[:10])
        probs_b = b.predict_proba(beer_dataset.pairs[:10])
        assert np.array_equal(probs_a, probs_b)

    def test_feature_usage_counts_stumps(self, boosted):
        usage = boosted.feature_usage()
        assert sum(usage.values()) == len(boosted.stumps_)
        # The dominant features should belong to identity attributes.
        top_feature = max(usage, key=usage.get)
        assert top_feature.split(".")[0] in ("beer_name", "abv", "style")

    def test_explainable_through_landmark_pipeline(self, beer_dataset, boosted):
        from repro.core.landmark import LandmarkExplainer
        from repro.explainers.lime_text import LimeConfig

        explainer = LandmarkExplainer(
            boosted, lime_config=LimeConfig(n_samples=32, seed=0)
        )
        dual = explainer.explain(beer_dataset[0])
        assert len(dual.combined()) > 0
