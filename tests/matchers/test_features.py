"""Tests for the per-attribute feature extractor."""

import numpy as np
import pytest

from repro.data.records import RecordPair
from repro.data.schema import PairSchema
from repro.matchers.features import BASE_MEASURES, FeatureConfig, PairFeatureExtractor


@pytest.fixture()
def schema():
    return PairSchema(("name", "price"))


@pytest.fixture()
def extractor(schema):
    return PairFeatureExtractor(schema)


def make_pair(schema, left_name, right_name, left_price="10", right_price="10"):
    return RecordPair(
        schema,
        {"name": left_name, "price": left_price},
        {"name": right_name, "price": right_price},
    )


class TestShape:
    def test_n_features(self, extractor, schema):
        assert extractor.n_features == len(schema) * len(BASE_MEASURES)

    def test_feature_names_are_grouped(self, extractor):
        names = extractor.feature_names
        assert names[0].startswith("name.")
        assert names[len(BASE_MEASURES)].startswith("price.")

    def test_attribute_groups_cover_all_columns(self, extractor):
        groups = extractor.attribute_groups()
        covered = []
        for group in groups.values():
            covered.extend(range(group.start, group.stop))
        assert sorted(covered) == list(range(extractor.n_features))

    def test_monge_elkan_optional(self, schema):
        with_me = PairFeatureExtractor(schema, FeatureConfig(use_monge_elkan=True))
        assert "name.monge_elkan" in with_me.feature_names
        without = PairFeatureExtractor(schema)
        assert "name.monge_elkan" not in without.feature_names

    def test_transform_empty_list(self, extractor):
        result = extractor.transform([])
        assert result.shape == (0, extractor.n_features)


class TestValues:
    def test_identical_pair_has_high_similarity(self, extractor, schema):
        pair = make_pair(schema, "golden ale", "golden ale")
        features = extractor.transform_pair(pair)
        # The numeric measure is 0 for non-numeric values by design; every
        # other measure must be 1 on an identical pair.
        numeric_columns = {
            i for i, name in enumerate(extractor.feature_names)
            if name.endswith(".numeric")
        }
        for i, value in enumerate(features):
            if i in numeric_columns and extractor.feature_names[i] == "name.numeric":
                assert value == 0.0
            else:
                assert value >= 0.99

    def test_disjoint_pair_scores_low(self, extractor, schema):
        pair = make_pair(schema, "golden ale", "nikon case", "1", "999")
        features = extractor.transform_pair(pair)
        by_name = dict(zip(extractor.feature_names, features))
        # Token-set measures see no overlap at all.
        assert by_name["name.jaccard"] == 0.0
        assert by_name["name.overlap"] == 0.0
        assert by_name["name.dice"] == 0.0
        assert by_name["name.exact"] == 0.0
        assert by_name["name.levenshtein"] < 0.5

    def test_all_features_bounded(self, extractor, schema):
        pair = make_pair(schema, "sony camera x", "sony kamera", "10.5", "12")
        features = extractor.transform_pair(pair)
        assert np.all(features >= 0.0)
        assert np.all(features <= 1.0)

    def test_both_empty_attribute_is_all_zero(self, extractor, schema):
        pair = make_pair(schema, "a", "a", left_price="", right_price="")
        features = extractor.transform_pair(pair)
        groups = extractor.attribute_groups()
        assert np.all(features[groups["price"]] == 0.0)

    def test_one_side_empty_scores_zero_similarity(self, extractor, schema):
        pair = make_pair(schema, "golden ale", "", "10", "10")
        features = extractor.transform_pair(pair)
        groups = extractor.attribute_groups()
        name_features = features[groups["name"]]
        assert np.all(name_features == 0.0)

    def test_nan_looking_values_stay_finite(self, extractor, schema):
        # "nan" parses as float("nan"); the numeric measure must not leak it.
        pair = make_pair(schema, "nan", "nan", left_price="nan", right_price="5")
        features = extractor.transform_pair(pair)
        assert np.isfinite(features).all()
        assert np.all(features >= 0.0)
        assert np.all(features <= 1.0)

    def test_matrix_matches_single_rows(self, extractor, schema):
        pairs = [
            make_pair(schema, "a b", "a c"),
            make_pair(schema, "x", "y"),
        ]
        matrix = extractor.transform(pairs)
        for row, pair in zip(matrix, pairs):
            assert np.array_equal(row, extractor.transform_pair(pair))


class TestCache:
    def test_cache_hit_returns_same_values(self, extractor, schema):
        pair = make_pair(schema, "sony camera", "sony kamera")
        first = extractor.transform_pair(pair).copy()
        second = extractor.transform_pair(pair)
        assert np.array_equal(first, second)

    def test_cache_eviction_resets(self, schema):
        extractor = PairFeatureExtractor(schema, FeatureConfig(cache_size=2))
        for i in range(10):
            pair = make_pair(schema, f"name {i}", "other")
            extractor.transform_pair(pair)
        # Must still compute correctly after evictions.
        pair = make_pair(schema, "name 0", "other")
        features = extractor.transform_pair(pair)
        assert features.shape == (extractor.n_features,)

    def test_clear_cache(self, extractor, schema):
        extractor.transform_pair(make_pair(schema, "a", "b"))
        extractor.clear_cache()
        assert not extractor._cache
