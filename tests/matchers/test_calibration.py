"""Tests for threshold tuning and Platt calibration."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ModelNotFittedError
from repro.matchers.calibration import PlattCalibrator, tune_threshold
from repro.matchers.evaluate import evaluate_matcher


class TestTuneThreshold:
    def test_best_threshold_beats_default_or_ties(self, beer_matcher, beer_dataset):
        choice = tune_threshold(beer_matcher, beer_dataset, metric="f1")
        default = evaluate_matcher(beer_matcher, beer_dataset, threshold=0.5).f1
        assert choice.score >= default

    def test_sweep_covers_grid(self, beer_matcher, beer_dataset):
        grid = (0.3, 0.5, 0.7)
        choice = tune_threshold(beer_matcher, beer_dataset, grid=grid)
        assert tuple(threshold for threshold, _ in choice.sweep) == grid

    def test_tie_breaks_toward_half(self, beer_matcher, beer_dataset):
        # A grid of equivalent extreme thresholds plus 0.5: when scores tie,
        # 0.5 must win.
        choice = tune_threshold(
            beer_matcher, beer_dataset, metric="recall", grid=(0.05, 0.10, 0.5)
        )
        if all(score == choice.sweep[0][1] for _, score in choice.sweep):
            assert choice.threshold == 0.5

    def test_unknown_metric(self, beer_matcher, beer_dataset):
        with pytest.raises(ConfigurationError):
            tune_threshold(beer_matcher, beer_dataset, metric="auc")

    def test_bad_grid_value(self, beer_matcher, beer_dataset):
        with pytest.raises(ConfigurationError):
            tune_threshold(beer_matcher, beer_dataset, grid=(0.0, 0.5))

    def test_render(self, beer_matcher, beer_dataset):
        text = tune_threshold(beer_matcher, beer_dataset).render()
        assert "best f1" in text


class TestPlattCalibrator:
    def test_requires_fit(self, beer_matcher):
        with pytest.raises(ModelNotFittedError):
            PlattCalibrator(beer_matcher).predict_proba([])

    def test_preserves_ranking(self, beer_matcher, beer_dataset):
        calibrated = PlattCalibrator(beer_matcher).fit(beer_dataset)
        raw = beer_matcher.predict_proba(beer_dataset.pairs[:50])
        adjusted = calibrated.predict_proba(beer_dataset.pairs[:50])
        # Platt scaling is monotone: orderings must agree.
        assert np.array_equal(np.argsort(raw), np.argsort(adjusted))

    def test_probabilities_bounded(self, beer_matcher, beer_dataset):
        calibrated = PlattCalibrator(beer_matcher).fit(beer_dataset)
        probabilities = calibrated.predict_proba(beer_dataset.pairs)
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0

    def test_improves_cross_entropy_on_smoothed_targets(
        self, beer_matcher, beer_dataset
    ):
        # Newton starts at the identity map (a=1, b=0) and minimizes the
        # cross-entropy against Platt's smoothed targets, so the fitted map
        # must not be worse than the identity.
        calibrated = PlattCalibrator(beer_matcher).fit(beer_dataset)
        assert calibrated.a_ is not None and calibrated.a_ > 0

        labels = beer_dataset.labels.astype(float)
        n_positive = labels.sum()
        n_negative = len(labels) - n_positive
        targets = np.where(
            labels == 1.0,
            (n_positive + 1.0) / (n_positive + 2.0),
            1.0 / (n_negative + 2.0),
        )

        def cross_entropy(probabilities):
            clipped = np.clip(probabilities, 1e-12, 1 - 1e-12)
            return -np.mean(
                targets * np.log(clipped) + (1 - targets) * np.log(1 - clipped)
            )

        raw = beer_matcher.predict_proba(beer_dataset.pairs)
        adjusted = calibrated.predict_proba(beer_dataset.pairs)
        assert cross_entropy(adjusted) <= cross_entropy(raw) + 1e-9

    def test_quality_not_destroyed(self, beer_matcher, beer_dataset):
        calibrated = PlattCalibrator(beer_matcher).fit(beer_dataset)
        quality = evaluate_matcher(calibrated, beer_dataset)
        assert quality.f1 > 0.7

    def test_works_as_explainer_target(self, beer_matcher, beer_dataset):
        from repro.core.landmark import LandmarkExplainer
        from repro.explainers.lime_text import LimeConfig

        calibrated = PlattCalibrator(beer_matcher).fit(beer_dataset)
        explainer = LandmarkExplainer(
            calibrated, lime_config=LimeConfig(n_samples=32, seed=0)
        )
        dual = explainer.explain(beer_dataset[0])
        assert len(dual.combined()) > 0
