"""Tests for matcher quality metrics."""

import numpy as np
import pytest

from repro.matchers.evaluate import MatchQuality, quality_from_predictions


class TestMatchQuality:
    def test_perfect(self):
        quality = MatchQuality(10, 0, 90, 0)
        assert quality.accuracy == 1.0
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_known_values(self):
        quality = MatchQuality(true_positive=6, false_positive=2,
                               true_negative=88, false_negative=4)
        assert quality.precision == pytest.approx(0.75)
        assert quality.recall == pytest.approx(0.6)
        assert quality.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)
        assert quality.support == 100

    def test_zero_division_guards(self):
        quality = MatchQuality(0, 0, 0, 0)
        assert quality.accuracy == 0.0
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_no_predicted_positives(self):
        quality = MatchQuality(0, 0, 90, 10)
        assert quality.precision == 0.0
        assert quality.recall == 0.0

    def test_report_contains_counts(self):
        report = MatchQuality(1, 2, 3, 4).report()
        assert "tp=1 fp=2 tn=3 fn=4" in report


class TestQualityFromPredictions:
    def test_counts(self):
        labels = np.array([1, 1, 0, 0, 1])
        predicted = np.array([1, 0, 0, 1, 1])
        quality = quality_from_predictions(labels, predicted)
        assert quality.true_positive == 2
        assert quality.false_negative == 1
        assert quality.false_positive == 1
        assert quality.true_negative == 1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quality_from_predictions(np.array([1, 0]), np.array([1]))
