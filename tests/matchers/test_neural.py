"""Tests for the numpy MLP matcher."""

import numpy as np
import pytest

from repro.exceptions import DatasetError, ModelNotFittedError
from repro.matchers.evaluate import evaluate_matcher
from repro.matchers.neural import MLPMatcher


@pytest.fixture(scope="module")
def mlp(beer_dataset):
    return MLPMatcher(hidden_sizes=(16,), epochs=150, seed=0).fit(beer_dataset)


class TestValidation:
    def test_empty_hidden_sizes_rejected(self):
        with pytest.raises(ValueError):
            MLPMatcher(hidden_sizes=())

    def test_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            MLPMatcher().predict_proba([])

    def test_single_class_rejected(self, beer_dataset):
        matches_only = beer_dataset.by_label(1)
        with pytest.raises(DatasetError):
            MLPMatcher().fit(matches_only)


class TestLearning:
    def test_beats_chance_on_benchmark(self, beer_dataset, mlp):
        quality = evaluate_matcher(mlp, beer_dataset)
        assert quality.f1 > 0.7

    def test_loss_decreases(self, mlp):
        history = mlp.loss_history_
        assert history[-1] < history[0] * 0.8

    def test_probabilities_bounded(self, beer_dataset, mlp):
        probabilities = mlp.predict_proba(beer_dataset.pairs[:50])
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0

    def test_deterministic_given_seed(self, beer_dataset):
        a = MLPMatcher(hidden_sizes=(8,), epochs=30, seed=5).fit(beer_dataset)
        b = MLPMatcher(hidden_sizes=(8,), epochs=30, seed=5).fit(beer_dataset)
        probs_a = a.predict_proba(beer_dataset.pairs[:20])
        probs_b = b.predict_proba(beer_dataset.pairs[:20])
        assert np.allclose(probs_a, probs_b)

    def test_two_hidden_layers(self, beer_dataset):
        deep = MLPMatcher(hidden_sizes=(16, 8), epochs=100, seed=0).fit(beer_dataset)
        quality = evaluate_matcher(deep, beer_dataset)
        assert quality.f1 > 0.6

    def test_predict_empty(self, mlp):
        assert mlp.predict_proba([]).shape == (0,)
