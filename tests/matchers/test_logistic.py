"""Tests for the from-scratch logistic regression matcher."""

import numpy as np
import pytest

from repro.data.records import EMDataset, MATCH, NON_MATCH, RecordPair
from repro.data.schema import PairSchema
from repro.exceptions import DatasetError, ModelNotFittedError
from repro.matchers.evaluate import evaluate_matcher
from repro.matchers.logistic import LogisticRegressionMatcher, _sigmoid


class TestSigmoid:
    def test_midpoint(self):
        assert _sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_are_stable(self):
        values = _sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(values))

    def test_monotonic(self):
        grid = np.linspace(-5, 5, 50)
        values = _sigmoid(grid)
        assert np.all(np.diff(values) > 0)


class TestFitValidation:
    def test_requires_two_pairs(self):
        schema = PairSchema(("name",))
        dataset = EMDataset(
            "one", schema, [RecordPair(schema, {"name": "a"}, {"name": "a"}, MATCH)]
        )
        with pytest.raises(DatasetError):
            LogisticRegressionMatcher().fit(dataset)

    def test_requires_both_classes(self):
        schema = PairSchema(("name",))
        pairs = [
            RecordPair(schema, {"name": f"x{i}"}, {"name": f"x{i}"}, MATCH, i)
            for i in range(5)
        ]
        with pytest.raises(DatasetError, match="single class"):
            LogisticRegressionMatcher().fit(EMDataset("m", schema, pairs))

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegressionMatcher(l2=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            LogisticRegressionMatcher().predict_proba([])

    def test_attribute_weights_before_fit(self):
        with pytest.raises(ModelNotFittedError):
            LogisticRegressionMatcher().attribute_weights()


class TestLearning:
    def test_learns_the_benchmark(self, beer_dataset, beer_matcher):
        quality = evaluate_matcher(beer_matcher, beer_dataset)
        assert quality.f1 > 0.8

    def test_probabilities_in_unit_interval(self, beer_dataset, beer_matcher):
        probabilities = beer_matcher.predict_proba(beer_dataset.pairs)
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0

    def test_matches_score_higher_than_non_matches(self, beer_dataset, beer_matcher):
        probabilities = beer_matcher.predict_proba(beer_dataset.pairs)
        labels = beer_dataset.labels
        assert probabilities[labels == 1].mean() > probabilities[labels == 0].mean() + 0.4

    def test_identical_pair_scores_high(self, beer_dataset, beer_matcher):
        pair = beer_dataset[0]
        identical = pair.with_right(dict(pair.left))
        assert beer_matcher.predict_one(identical) > 0.9

    def test_predict_threshold(self, beer_dataset, beer_matcher):
        strict = beer_matcher.predict(beer_dataset.pairs, threshold=0.99)
        lax = beer_matcher.predict(beer_dataset.pairs, threshold=0.01)
        assert strict.sum() <= lax.sum()

    def test_predict_empty(self, beer_matcher):
        assert beer_matcher.predict_proba([]).shape == (0,)

    def test_determinism(self, beer_dataset):
        a = LogisticRegressionMatcher().fit(beer_dataset)
        b = LogisticRegressionMatcher().fit(beer_dataset)
        assert np.allclose(a.coef_, b.coef_)
        assert a.intercept_ == pytest.approx(b.intercept_)

    def test_stronger_l2_shrinks_weights(self, beer_dataset):
        weak = LogisticRegressionMatcher(l2=0.1).fit(beer_dataset)
        strong = LogisticRegressionMatcher(l2=100.0).fit(beer_dataset)
        assert np.abs(strong.coef_).sum() < np.abs(weak.coef_).sum()

    def test_unbalanced_mode_fits(self, beer_dataset):
        matcher = LogisticRegressionMatcher(balanced=False).fit(beer_dataset)
        quality = evaluate_matcher(matcher, beer_dataset)
        assert quality.accuracy > 0.8

    def test_converges_within_budget(self, beer_matcher):
        assert beer_matcher.n_iter_ <= 50


class TestAttributeIntrospection:
    def test_weights_cover_schema(self, beer_dataset, beer_matcher):
        weights = beer_matcher.attribute_weights()
        assert set(weights) == set(beer_dataset.schema.attributes)
        assert all(value >= 0 for value in weights.values())

    def test_ranking_sorted_by_weight(self, beer_matcher):
        weights = beer_matcher.attribute_weights()
        ranking = beer_matcher.attribute_ranking()
        values = [weights[attribute] for attribute in ranking]
        assert values == sorted(values, reverse=True)

    def test_identity_attribute_ranks_high(self, beer_matcher):
        # beer_name separates matches from same-brewery hard negatives, so
        # the model must weight it heavily.
        ranking = beer_matcher.attribute_ranking()
        assert "beer_name" in ranking[:2]

    def test_feature_names_exposed(self, beer_matcher):
        names = beer_matcher.feature_names
        assert len(names) == len(beer_matcher.coef_)
