"""Tests for explanation views: PairTokenWeights, Landmark/Dual explanations."""

import numpy as np
import pytest

from repro.core.explanation import (
    PairTokenWeights,
    TokenEntry,
    remove_tokens_from_pair,
)
from repro.core.generation import GENERATION_DOUBLE, GENERATION_SINGLE
from repro.core.landmark import LandmarkExplainer
from repro.exceptions import ExplanationError
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def explainer(beer_matcher):
    return LandmarkExplainer(
        beer_matcher, lime_config=LimeConfig(n_samples=48, seed=0), seed=0
    )


@pytest.fixture(scope="module")
def single_dual(explainer, match_pair):
    return explainer.explain(match_pair, GENERATION_SINGLE)


@pytest.fixture(scope="module")
def double_dual(explainer, non_match_pair):
    return explainer.explain(non_match_pair, GENERATION_DOUBLE)


class TestRemoveTokens:
    def test_removes_addressed_tokens(self, toy_pair):
        reduced = remove_tokens_from_pair(toy_pair, [("left", "name", 0)])
        assert reduced.left["name"] == "digital camera dslra200w"
        assert dict(reduced.right) == dict(toy_pair.right)

    def test_no_keys_is_identity_on_normalized_values(self, toy_pair):
        unchanged = remove_tokens_from_pair(toy_pair, [])
        assert dict(unchanged.left) == dict(toy_pair.left)

    def test_removing_everything_empties_both_sides(self, toy_pair):
        from repro.text.tokenize import Tokenizer

        tokenizer = Tokenizer()
        keys = []
        for side in ("left", "right"):
            for token in tokenizer.tokenize_entity(toy_pair.entity(side)):
                keys.append((side, token.attribute, token.position))
        reduced = remove_tokens_from_pair(toy_pair, keys)
        assert all(not v for v in reduced.left.values())
        assert all(not v for v in reduced.right.values())


class TestPairTokenWeights:
    def _weights(self, toy_pair):
        entries = [
            TokenEntry("left", "name", 0, "sony", 0.4),
            TokenEntry("left", "name", 1, "digital", -0.1),
            TokenEntry("right", "name", 0, "nikon", -0.3),
            TokenEntry("right", "price", 0, "7.99", 0.05),
        ]
        return PairTokenWeights(toy_pair, entries)

    def test_duplicate_keys_rejected(self, toy_pair):
        entries = [
            TokenEntry("left", "name", 0, "sony", 0.4),
            TokenEntry("left", "name", 0, "sony", 0.2),
        ]
        with pytest.raises(ExplanationError):
            PairTokenWeights(toy_pair, entries)

    def test_weight_lookup(self, toy_pair):
        weights = self._weights(toy_pair)
        assert weights.weight("left", "name", 0) == pytest.approx(0.4)
        with pytest.raises(ExplanationError):
            weights.weight("left", "name", 9)

    def test_sum_weights(self, toy_pair):
        weights = self._weights(toy_pair)
        total = weights.sum_weights([("left", "name", 0), ("right", "name", 0)])
        assert total == pytest.approx(0.1)

    def test_entries_by_sign(self, toy_pair):
        weights = self._weights(toy_pair)
        positives = {entry.word for entry in weights.entries_by_sign("positive")}
        negatives = {entry.word for entry in weights.entries_by_sign("negative")}
        assert positives == {"sony", "7.99"}
        assert negatives == {"digital", "nikon"}
        with pytest.raises(ValueError):
            weights.entries_by_sign("either")

    def test_attribute_importance_pools_sides(self, toy_pair):
        importance = self._weights(toy_pair).attribute_importance()
        assert importance["name"] == pytest.approx(0.4 + 0.1 + 0.3)
        assert importance["price"] == pytest.approx(0.05)

    def test_removal_pair(self, toy_pair):
        weights = self._weights(toy_pair)
        reduced = weights.removal_pair("positive")
        assert "sony" not in reduced.left["name"]
        assert "digital" in reduced.left["name"]
        assert "7.99" not in reduced.right["price"]

    def test_top(self, toy_pair):
        top = self._weights(toy_pair).top(2)
        assert [entry.word for entry in top] == ["sony", "nikon"]


class TestLandmarkExplanation:
    def test_original_entries_exclude_injected(self, double_dual):
        side = double_dual.left_landmark
        entries = side.original_entries()
        assert all(entry.side == "right" for entry in entries)
        own_token_count = sum(1 for injected in side.instance.injected if not injected)
        assert len(entries) == own_token_count

    def test_top_tokens_signs(self, double_dual):
        side = double_dual.left_landmark
        for _, _, weight, _ in side.top_tokens(10, sign="positive"):
            assert weight > 0
        for _, _, weight, _ in side.top_tokens(10, sign="negative"):
            assert weight < 0

    def test_top_tokens_exclude_injected(self, double_dual):
        side = double_dual.left_landmark
        rows = side.top_tokens(100, include_injected=False)
        assert all(not injected for *_, injected in rows)

    def test_apply_removal_positive_strips_positive_tokens(self, single_dual):
        side = single_dual.left_landmark
        reduced = side.apply_removal("positive")
        positive_words = {
            word for word, _, weight, _ in side.top_tokens(100, sign="positive")
        }
        remaining = " ".join(reduced.entity(side.varying_side).values()).split()
        assert not positive_words & set(remaining)

    def test_apply_removal_bad_sign(self, single_dual):
        with pytest.raises(ValueError):
            single_dual.left_landmark.apply_removal("both")

    def test_attribute_importance_injected_toggle(self, double_dual):
        side = double_dual.left_landmark
        with_injected = side.attribute_importance(include_injected=True)
        without = side.attribute_importance(include_injected=False)
        assert sum(with_injected.values()) >= sum(without.values())

    def test_render(self, single_dual):
        text = single_dual.left_landmark.render()
        assert "landmark=left" in text


class TestDualExplanation:
    def test_combined_covers_every_original_token(self, single_dual, match_pair):
        from repro.text.tokenize import Tokenizer

        tokenizer = Tokenizer()
        combined = single_dual.combined()
        expected = 0
        for side in ("left", "right"):
            expected += len(tokenizer.tokenize_entity(match_pair.entity(side)))
        assert len(combined) == expected

    def test_combined_sides_swap(self, single_dual):
        combined = single_dual.combined()
        left_entries = [e for e in combined.entries if e.side == "left"]
        # Left tokens must come from the right-landmark explanation.
        right_landmark_words = {
            token.word for token in single_dual.right_landmark.instance.tokens
        }
        assert {entry.word for entry in left_entries} <= right_landmark_words

    def test_for_landmark(self, single_dual):
        assert single_dual.for_landmark("left") is single_dual.left_landmark
        assert single_dual.for_landmark("right") is single_dual.right_landmark
        with pytest.raises(ValueError):
            single_dual.for_landmark("both")

    def test_generation_property(self, single_dual, double_dual):
        assert single_dual.generation == GENERATION_SINGLE
        assert double_dual.generation == GENERATION_DOUBLE

    def test_attribute_importance_covers_schema(self, single_dual, match_pair):
        importance = single_dual.attribute_importance()
        assert set(importance) == set(match_pair.schema.attributes)

    def test_render_contains_both_sides(self, single_dual):
        text = single_dual.render()
        assert "landmark=left" in text
        assert "landmark=right" in text

    def test_mismatched_sides_rejected(self, single_dual):
        from repro.core.explanation import DualExplanation

        with pytest.raises(ExplanationError):
            DualExplanation(
                pair=single_dual.pair,
                left_landmark=single_dual.right_landmark,
                right_landmark=single_dual.left_landmark,
            )
