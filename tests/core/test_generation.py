"""Tests for landmark generation (single / double entity)."""

import pytest

from repro.core.generation import (
    GENERATION_DOUBLE,
    GENERATION_SINGLE,
    LandmarkGenerator,
)
from repro.exceptions import ConfigurationError


@pytest.fixture()
def generator():
    return LandmarkGenerator()


class TestSingleEntity:
    def test_varying_side_is_opposite(self, generator, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        assert instance.varying_side == "right"
        assert instance.landmark_side == "left"

    def test_tokens_come_from_varying_entity_only(self, generator, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        words = {token.word for token in instance.tokens}
        assert words == {"nikon", "leather", "case", "5811", "7.99"}

    def test_no_injected_tokens(self, generator, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        assert not any(instance.injected)
        assert instance.n_injected == 0

    def test_right_landmark_perturbs_left(self, generator, toy_pair):
        instance = generator.generate(toy_pair, "right", GENERATION_SINGLE)
        words = {token.word for token in instance.tokens}
        assert "sony" in words
        assert "nikon" not in words

    def test_feature_names_unique(self, generator, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        names = instance.feature_names
        assert len(names) == len(set(names))


class TestDoubleEntity:
    def test_contains_both_entities_tokens(self, generator, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_DOUBLE)
        words = {token.word for token in instance.tokens}
        assert {"nikon", "sony", "camera", "leather"} <= words

    def test_injected_flags_mark_landmark_tokens(self, generator, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_DOUBLE)
        injected_words = {
            token.word
            for token, injected in zip(instance.tokens, instance.injected)
            if injected
        }
        own_words = {
            token.word
            for token, injected in zip(instance.tokens, instance.injected)
            if not injected
        }
        assert "sony" in injected_words  # from the left landmark
        assert "nikon" in own_words

    def test_injected_positions_follow_own_tokens(self, generator, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_DOUBLE)
        for attribute in toy_pair.schema.attributes:
            own_positions = [
                t.position
                for t, injected in zip(instance.tokens, instance.injected)
                if t.attribute == attribute and not injected
            ]
            injected_positions = [
                t.position
                for t, injected in zip(instance.tokens, instance.injected)
                if t.attribute == attribute and injected
            ]
            if own_positions and injected_positions:
                assert min(injected_positions) > max(own_positions)

    def test_duplicate_words_across_entities_stay_distinct(self, generator, toy_pair):
        # "digital" appears only left here, but duplicate words are the
        # general hazard: inject and check uniqueness of prefixed names.
        instance = generator.generate(toy_pair, "right", GENERATION_DOUBLE)
        names = instance.feature_names
        assert len(names) == len(set(names))

    def test_token_count_is_sum_of_sides(self, generator, toy_pair):
        single_left = generator.generate(toy_pair, "right", GENERATION_SINGLE)
        single_right = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        double = generator.generate(toy_pair, "left", GENERATION_DOUBLE)
        assert len(double.tokens) == len(single_left.tokens) + len(single_right.tokens)


class TestInjectionFraction:
    def test_full_injection_by_default(self, toy_pair):
        generator = LandmarkGenerator()
        instance = generator.generate(toy_pair, "left", GENERATION_DOUBLE)
        left_token_count = sum(
            len(value.split()) for value in toy_pair.left.values() if value
        )
        assert instance.n_injected == left_token_count

    def test_half_injection(self, toy_pair):
        generator = LandmarkGenerator(injection_fraction=0.5)
        instance = generator.generate(toy_pair, "left", GENERATION_DOUBLE)
        full = LandmarkGenerator().generate(toy_pair, "left", GENERATION_DOUBLE)
        assert 0 < instance.n_injected < full.n_injected

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            LandmarkGenerator(injection_fraction=0.0)
        with pytest.raises(ConfigurationError):
            LandmarkGenerator(injection_fraction=1.5)


class TestValidation:
    def test_bad_side(self, generator, toy_pair):
        with pytest.raises(ConfigurationError):
            generator.generate(toy_pair, "middle", GENERATION_SINGLE)

    def test_bad_generation(self, generator, toy_pair):
        with pytest.raises(ConfigurationError):
            generator.generate(toy_pair, "left", "triple")
