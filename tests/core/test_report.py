"""Tests for markdown / HTML explanation reports."""

import pytest

from repro.core.landmark import LandmarkExplainer
from repro.core.report import save_html, to_html, to_markdown
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def dual(beer_matcher, non_match_pair):
    explainer = LandmarkExplainer(
        beer_matcher, lime_config=LimeConfig(n_samples=48, seed=0), seed=0
    )
    return explainer.explain(non_match_pair, "double")


class TestMarkdown:
    def test_contains_record_table(self, dual):
        text = to_markdown(dual)
        assert "| attribute | left | right |" in text
        for attribute in dual.pair.schema.attributes:
            assert f"| {attribute} |" in text

    def test_contains_both_landmarks(self, dual):
        text = to_markdown(dual)
        assert "Landmark: left" in text
        assert "Landmark: right" in text

    def test_reports_injection_origin(self, dual):
        text = to_markdown(dual)
        assert "injected" in text

    def test_top_k_respected(self, dual):
        short = to_markdown(dual, k=1)
        long = to_markdown(dual, k=10)
        assert len(long) > len(short)


class TestHtml:
    def test_is_a_complete_document(self, dual):
        page = to_html(dual)
        assert page.startswith("<!DOCTYPE html>")
        assert "</html>" in page

    def test_every_varying_token_rendered(self, dual):
        page = to_html(dual)
        for token in dual.left_landmark.instance.tokens:
            assert f">{token.word}<" in page or token.word in page

    def test_escapes_html_in_values(self, beer_matcher, beer_dataset):
        pair = beer_dataset[0].with_left(
            {
                "beer_name": "<script>alert(1)</script> ale",
                "brew_factory_name": "x",
                "style": "y",
                "abv": "5.0",
            }
        )
        explainer = LandmarkExplainer(
            beer_matcher, lime_config=LimeConfig(n_samples=16, seed=0)
        )
        page = to_html(explainer.explain(pair, "single"))
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page

    def test_injected_tokens_get_dashed_border(self, dual):
        page = to_html(dual)
        assert "dashed" in page

    def test_save_html(self, dual, tmp_path):
        path = save_html(dual, tmp_path / "explanation.html")
        assert path.exists()
        assert path.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")


class TestWeightColor:
    def test_positive_green_negative_red(self):
        from repro.core.report import _weight_color

        assert "46, 160, 67" in _weight_color(0.5, 1.0)
        assert "218, 54, 51" in _weight_color(-0.5, 1.0)

    def test_zero_max_gives_neutral(self):
        from repro.core.report import _weight_color

        assert _weight_color(0.0, 0.0) == "#f0f0f0"
