"""Tests for pair / dataset reconstruction."""

import numpy as np
import pytest

from repro.core.generation import (
    GENERATION_DOUBLE,
    GENERATION_SINGLE,
    LandmarkGenerator,
)
from repro.core.reconstruction import DatasetReconstructor, PairReconstructor


@pytest.fixture()
def generator():
    return LandmarkGenerator()


@pytest.fixture()
def reconstructor():
    return PairReconstructor()


class TestPairReconstructor:
    def test_full_mask_round_trips_varying_entity(
        self, generator, reconstructor, toy_pair
    ):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        rebuilt = reconstructor.rebuild(instance, [1] * len(instance.tokens))
        assert dict(rebuilt.right) == dict(toy_pair.right)

    def test_landmark_never_changes(self, generator, reconstructor, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        rebuilt = reconstructor.rebuild(instance, [0] * len(instance.tokens))
        assert dict(rebuilt.left) == dict(toy_pair.left)

    def test_empty_mask_empties_varying_entity(
        self, generator, reconstructor, toy_pair
    ):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        rebuilt = reconstructor.rebuild(instance, [0] * len(instance.tokens))
        assert all(value == "" for value in rebuilt.right.values())

    def test_partial_mask_keeps_selected_words_in_order(
        self, generator, reconstructor, toy_pair
    ):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        mask = [1] * len(instance.tokens)
        # drop the first name token ("nikon")
        drop_index = next(
            i for i, t in enumerate(instance.tokens)
            if t.attribute == "name" and t.position == 0
        )
        mask[drop_index] = 0
        rebuilt = reconstructor.rebuild(instance, mask)
        assert rebuilt.right["name"] == "leather case 5811"

    def test_double_generation_full_mask_is_augmented_pair(
        self, generator, reconstructor, toy_pair
    ):
        instance = generator.generate(toy_pair, "left", GENERATION_DOUBLE)
        rebuilt = reconstructor.rebuild(instance, [1] * len(instance.tokens))
        # Varying side now holds its own tokens followed by the landmark's.
        assert rebuilt.right["name"].startswith("nikon leather case 5811")
        assert "sony" in rebuilt.right["name"]
        assert dict(rebuilt.left) == dict(toy_pair.left)

    def test_mask_length_checked(self, generator, reconstructor, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        with pytest.raises(ValueError):
            reconstructor.rebuild(instance, [1, 0])

    def test_rebuild_many(self, generator, reconstructor, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        masks = np.ones((4, len(instance.tokens)), dtype=np.int8)
        masks[1:, 0] = 0
        rebuilt = reconstructor.rebuild_many(instance, masks)
        assert len(rebuilt) == 4
        assert dict(rebuilt[0].right) == dict(toy_pair.right)

    def test_label_and_id_preserved(self, generator, reconstructor, toy_pair):
        instance = generator.generate(toy_pair, "left", GENERATION_SINGLE)
        rebuilt = reconstructor.rebuild(instance, [0] * len(instance.tokens))
        assert rebuilt.label == toy_pair.label
        assert rebuilt.pair_id == toy_pair.pair_id


class TestDatasetReconstructor:
    def test_predict_masks_fn_calls_matcher(
        self, generator, beer_matcher, beer_dataset
    ):
        pair = beer_dataset[0]
        instance = generator.generate(pair, "left", GENERATION_SINGLE)
        predict_masks = DatasetReconstructor(beer_matcher).predict_masks_fn(instance)
        masks = np.ones((3, len(instance.tokens)), dtype=np.int8)
        masks[1] = 0
        probabilities = predict_masks(masks)
        assert probabilities.shape == (3,)
        assert np.all((probabilities >= 0) & (probabilities <= 1))
        # Row 0 is the unperturbed pair.
        assert probabilities[0] == pytest.approx(beer_matcher.predict_one(pair))
