"""Tests for request deadlines, cancel tokens and the ambient scope.

The contract under test: deadlines and cancellation are *cooperative*
(polled between engine chunks and before guard calls), abort with the
typed lifecycle errors, and never change the bits of a computation that
completes.
"""

import numpy as np
import pytest

from repro.core.deadline import (
    CancelToken,
    Deadline,
    active_scope,
    checkpoint,
    request_scope,
)
from repro.core.engine import EngineConfig, PredictionEngine
from repro.core.guard import GuardConfig, MatcherGuard
from repro.data.records import NON_MATCH, RecordPair
from repro.data.schema import PairSchema
from repro.exceptions import DeadlineExceededError, RequestCancelledError


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_pairs(n: int) -> list[RecordPair]:
    schema = PairSchema(("name",))
    return [
        RecordPair(
            schema=schema,
            left={"name": f"left item {index}"},
            right={"name": f"right item {index}"},
            label=NON_MATCH,
            pair_id=index,
        )
        for index in range(n)
    ]


class CountingMatcher:
    """Returns 0.5 for everything; optionally advances a clock per call."""

    def __init__(self, clock=None, per_call=0.0, on_call=None):
        self.calls = 0
        self.clock = clock
        self.per_call = per_call
        self.on_call = on_call

    def predict_proba(self, pairs):
        self.calls += 1
        if self.clock is not None:
            self.clock.advance(self.per_call)
        if self.on_call is not None:
            self.on_call(self.calls)
        return np.full(len(pairs), 0.5)

    def predict_one(self, pair):
        return 0.5


class TestDeadline:
    def test_after_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock)
        assert deadline.bounded
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(0.5)
        assert deadline.expired()

    def test_check_raises_with_overrun(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        deadline.check()  # not expired: no-op
        clock.advance(1.25)
        with pytest.raises(DeadlineExceededError, match="exceeded by 0.250s"):
            deadline.check()

    def test_never_is_unbounded(self):
        deadline = Deadline.never()
        assert not deadline.bounded
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check()

    def test_none_budget_means_never(self):
        assert not Deadline.after(None).bounded


class TestCancelToken:
    def test_cancel_is_sticky_and_idempotent(self):
        token = CancelToken()
        assert not token.cancelled
        token.check()  # not cancelled: no-op
        token.cancel()
        token.cancel()
        assert token.cancelled
        with pytest.raises(RequestCancelledError):
            token.check("explain request")


class TestRequestScope:
    def test_scope_installs_and_restores(self):
        assert active_scope() == (None, None)
        deadline, token = Deadline.never(), CancelToken()
        with request_scope(deadline, token):
            assert active_scope() == (deadline, token)
        assert active_scope() == (None, None)

    def test_scopes_nest(self):
        outer_deadline, outer_token = Deadline.never(), CancelToken()
        inner_deadline = Deadline.never()
        with request_scope(outer_deadline, outer_token):
            with request_scope(inner_deadline, None):
                assert active_scope() == (inner_deadline, None)
            assert active_scope() == (outer_deadline, outer_token)

    def test_checkpoint_without_scope_is_noop(self):
        checkpoint()

    def test_checkpoint_raises_on_expired_deadline(self):
        clock = FakeClock()
        with request_scope(Deadline.after(1.0, clock), None):
            checkpoint()
            clock.advance(2.0)
            with pytest.raises(DeadlineExceededError):
                checkpoint()

    def test_checkpoint_raises_on_cancel(self):
        token = CancelToken()
        with request_scope(None, token):
            checkpoint()
            token.cancel()
            with pytest.raises(RequestCancelledError):
                checkpoint()


class TestEngineAbortsBetweenChunks:
    def test_deadline_aborts_between_chunks(self):
        clock = FakeClock()
        matcher = CountingMatcher(clock, per_call=1.0)
        engine = PredictionEngine(
            matcher,
            EngineConfig(dedup=False, cache=False, batch_size=2),
        )
        pairs = make_pairs(6)
        # 0.5s budget, 1s per chunk: chunk 1 completes (and overruns),
        # the poll before chunk 2 aborts.  One matcher call, not three.
        with request_scope(Deadline.after(0.5, clock), None):
            with pytest.raises(DeadlineExceededError):
                engine.predict_pairs(pairs)
        assert matcher.calls == 1

    def test_already_expired_deadline_spends_no_calls(self):
        clock = FakeClock()
        matcher = CountingMatcher(clock)
        engine = PredictionEngine(
            matcher, EngineConfig(dedup=False, cache=False, batch_size=2)
        )
        clock.advance(5.0)
        with request_scope(Deadline.after(-1.0, clock), None):
            with pytest.raises(DeadlineExceededError):
                engine.predict_pairs(make_pairs(4))
        assert matcher.calls == 0

    def test_cancel_mid_computation_aborts_next_chunk(self):
        token = CancelToken()
        matcher = CountingMatcher(
            on_call=lambda calls: token.cancel() if calls == 1 else None
        )
        engine = PredictionEngine(
            matcher, EngineConfig(dedup=False, cache=False, batch_size=2)
        )
        with request_scope(None, token):
            with pytest.raises(RequestCancelledError):
                engine.predict_pairs(make_pairs(6))
        assert matcher.calls == 1

    def test_unexpired_scope_changes_nothing(self):
        matcher = CountingMatcher()
        engine = PredictionEngine(
            matcher, EngineConfig(dedup=False, cache=False, batch_size=2)
        )
        pairs = make_pairs(4)
        bare = engine.predict_pairs(pairs)
        with request_scope(Deadline.never(), CancelToken()):
            scoped = engine.predict_pairs(pairs)
        np.testing.assert_array_equal(bare, scoped)


class TestGuardHonoursScope:
    def test_guard_call_checks_scope_first(self):
        matcher = CountingMatcher()
        guard = MatcherGuard(matcher.predict_proba)
        token = CancelToken()
        token.cancel()
        with request_scope(None, token):
            with pytest.raises(RequestCancelledError):
                guard.call(make_pairs(1))
        assert matcher.calls == 0

    def test_retry_does_not_burn_attempts_on_expired_request(self):
        clock = FakeClock()
        attempts = []

        def flaky(pairs):
            attempts.append(len(attempts))
            clock.advance(1.0)
            raise RuntimeError("transient")

        guard = MatcherGuard(
            flaky,
            GuardConfig(max_retries=5, backoff=0.0, trip_after=100),
        )
        # The first attempt spends the whole 0.5s budget; the poll before
        # the retry aborts with the deadline error, not the matcher error.
        with request_scope(Deadline.after(0.5, clock), None):
            with pytest.raises(DeadlineExceededError):
                guard.call(make_pairs(1))
        assert len(attempts) == 1
