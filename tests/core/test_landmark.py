"""Integration tests for the LandmarkExplainer entry point."""

import numpy as np
import pytest

from repro.core.generation import GENERATION_DOUBLE, GENERATION_SINGLE
from repro.core.landmark import GENERATION_AUTO, LandmarkExplainer
from repro.data.records import RecordPair
from repro.data.schema import PairSchema
from repro.exceptions import ConfigurationError, ExplanationError
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def explainer(beer_matcher):
    return LandmarkExplainer(
        beer_matcher, lime_config=LimeConfig(n_samples=48, seed=0), seed=0
    )


class TestResolveGeneration:
    def test_auto_on_predicted_match_is_single(self, explainer, match_pair):
        assert explainer.resolve_generation(match_pair, GENERATION_AUTO) == (
            GENERATION_SINGLE
        )

    def test_auto_on_predicted_non_match_is_double(self, explainer, non_match_pair):
        assert explainer.resolve_generation(non_match_pair, GENERATION_AUTO) == (
            GENERATION_DOUBLE
        )

    def test_explicit_modes_pass_through(self, explainer, match_pair):
        assert explainer.resolve_generation(match_pair, GENERATION_DOUBLE) == (
            GENERATION_DOUBLE
        )

    def test_unknown_mode_rejected(self, explainer, match_pair):
        with pytest.raises(ConfigurationError):
            explainer.resolve_generation(match_pair, "quad")

    def test_bad_threshold_rejected(self, beer_matcher):
        with pytest.raises(ConfigurationError):
            LandmarkExplainer(beer_matcher, threshold=1.5)


class TestExplain:
    def test_dual_structure(self, explainer, match_pair):
        dual = explainer.explain(match_pair)
        assert dual.left_landmark.landmark_side == "left"
        assert dual.right_landmark.landmark_side == "right"
        assert dual.pair is match_pair

    def test_auto_resolves_once_for_both_sides(self, explainer, non_match_pair):
        dual = explainer.explain(non_match_pair, GENERATION_AUTO)
        assert dual.left_landmark.generation == GENERATION_DOUBLE
        assert dual.right_landmark.generation == GENERATION_DOUBLE

    def test_deterministic(self, explainer, match_pair):
        a = explainer.explain(match_pair, GENERATION_SINGLE)
        b = explainer.explain(match_pair, GENERATION_SINGLE)
        assert np.array_equal(
            a.left_landmark.explanation.weights,
            b.left_landmark.explanation.weights,
        )

    def test_sides_draw_independent_streams(self, explainer, match_pair):
        # The left and right landmark sides must use *independent* spawned
        # seed streams: identical streams would couple the two halves of a
        # dual explanation (same mask draw whenever token counts agree).
        from repro.explainers.perturbation import sample_masks

        left_rng = explainer._rng_for(match_pair, "left")
        right_rng = explainer._rng_for(match_pair, "right")
        left_masks = sample_masks(12, 64, left_rng)
        right_masks = sample_masks(12, 64, right_rng)
        assert not np.array_equal(left_masks, right_masks)

    def test_side_streams_reproducible(self, explainer, match_pair):
        for side in ("left", "right"):
            a = explainer._rng_for(match_pair, side).integers(0, 2**31, size=16)
            b = explainer._rng_for(match_pair, side).integers(0, 2**31, size=16)
            assert np.array_equal(a, b)

    def test_negative_pair_id_supported(self, explainer, toy_pair):
        from dataclasses import replace

        adhoc = replace(toy_pair, pair_id=-1)
        rng = explainer._rng_for(adhoc, "left")
        assert rng.integers(0, 10, size=4).shape == (4,)

    def test_different_pairs_get_different_streams(self, explainer, beer_dataset):
        # Two different records must not share the same perturbation draw.
        pair_a, pair_b = beer_dataset[0], beer_dataset[1]
        ex_a = explainer.explain_landmark(pair_a, "left", GENERATION_SINGLE)
        ex_b = explainer.explain_landmark(pair_b, "left", GENERATION_SINGLE)
        assert ex_a.explanation.weights.shape != ex_b.explanation.weights.shape or (
            not np.allclose(ex_a.explanation.weights, ex_b.explanation.weights)
        )

    def test_shared_match_tokens_get_positive_weight(self, explainer, match_pair):
        # For a true match, the varying entity's tokens that also occur in
        # the landmark should mostly carry positive weight.
        dual = explainer.explain(match_pair, GENERATION_SINGLE)
        landmark_words = set(" ".join(match_pair.left.values()).split())
        shared_weights = [
            weight
            for word, _, weight, _ in dual.left_landmark.top_tokens(100)
            if word in landmark_words
        ]
        assert shared_weights
        assert np.mean([w > 0 for w in shared_weights]) > 0.5

    def test_double_explanation_pushes_non_match_toward_match(
        self, explainer, beer_matcher, non_match_pair
    ):
        # The augmented (injected) representation must score higher than the
        # original non-match record — that is the whole point of injection.
        dual = explainer.explain(non_match_pair, GENERATION_DOUBLE)
        augmented_probability = dual.left_landmark.explanation.model_probability
        original_probability = beer_matcher.predict_one(non_match_pair)
        assert augmented_probability > original_probability

    def test_empty_varying_entity_raises(self, explainer):
        schema = PairSchema(("beer_name", "brew_factory_name", "style", "abv"))
        pair = RecordPair(
            schema,
            {"beer_name": "golden trail", "brew_factory_name": "", "style": "", "abv": ""},
            {"beer_name": "", "brew_factory_name": "", "style": "", "abv": ""},
            label=0,
            pair_id=99,
        )
        with pytest.raises(ExplanationError):
            explainer.explain_landmark(pair, "left", GENERATION_SINGLE)

    def test_example_1_2_shape(self, explainer, toy_pair, beer_matcher):
        # The paper's Example 1.2: explaining a non-match produces, for each
        # landmark, tokens whose injection would flip the record to match.
        # (Here we only assert the structural contract: injected tokens are
        # present and some have positive weight.)
        del beer_matcher
        # Build a matcher on the toy schema so attribute names line up.
        from repro.data.records import EMDataset
        from repro.matchers.logistic import LogisticRegressionMatcher

        schema = toy_pair.schema
        pairs = []
        for i in range(40):
            name = f"item number{i} model{i}"
            pairs.append(
                RecordPair(
                    schema,
                    {"name": name, "price": str(10 + i)},
                    {"name": name, "price": str(10 + i)},
                    label=1,
                    pair_id=i,
                )
            )
        for i in range(60):
            pairs.append(
                RecordPair(
                    schema,
                    {"name": f"alpha gadget a{i}", "price": str(20 + i)},
                    {"name": f"beta widget b{i}", "price": str(500 + i)},
                    label=0,
                    pair_id=40 + i,
                )
            )
        matcher = LogisticRegressionMatcher().fit(EMDataset("toy", schema, pairs))
        toy_explainer = LandmarkExplainer(
            matcher, lime_config=LimeConfig(n_samples=64, seed=0), seed=0
        )
        dual = toy_explainer.explain(toy_pair, GENERATION_DOUBLE)
        injected_rows = [
            row for row in dual.left_landmark.top_tokens(50) if row[3]
        ]
        assert injected_rows
        assert any(weight > 0 for _, _, weight, _ in injected_rows)
