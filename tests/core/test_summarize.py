"""Tests for global explanation summaries."""

import json

import pytest

from repro.core.landmark import LandmarkExplainer
from repro.core.summarize import (
    GlobalSummary,
    merge_summaries,
    summarize_explanations,
)
from repro.exceptions import ExplanationError
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def duals(beer_matcher, beer_dataset):
    explainer = LandmarkExplainer(
        beer_matcher, lime_config=LimeConfig(n_samples=32, seed=0), seed=0
    )
    return [explainer.explain(pair) for pair in beer_dataset.pairs[:6]]


class TestGlobalSummary:
    def test_counts_explanations(self, duals):
        summary = summarize_explanations(duals)
        assert summary.n_explanations == len(duals)

    def test_attribute_report_covers_schema(self, duals, beer_dataset):
        summary = summarize_explanations(duals)
        attributes = {attribute for attribute, _, _ in summary.attribute_report()}
        assert attributes <= set(beer_dataset.schema.attributes)
        assert attributes  # at least one attribute got tokens

    def test_attribute_report_sorted(self, duals):
        summary = summarize_explanations(duals)
        weights = [weight for _, weight, _ in summary.attribute_report()]
        assert weights == sorted(weights, reverse=True)

    def test_top_words_min_count_filter(self, duals):
        summary = summarize_explanations(duals)
        frequent = summary.top_words(k=100, min_count=2)
        assert all(count >= 2 for _, _, count in frequent)

    def test_top_words_sign_filter(self, duals):
        summary = summarize_explanations(duals)
        for _, weight, _ in summary.top_words(k=10, min_count=1, sign="positive"):
            assert weight > 0
        with pytest.raises(ValueError):
            summary.top_words(sign="weird")

    def test_incremental_add_matches_batch(self, duals):
        batch = summarize_explanations(duals)
        incremental = GlobalSummary()
        for dual in duals:
            incremental.add(dual)
        assert incremental.n_explanations == batch.n_explanations
        assert incremental.attribute_report() == batch.attribute_report()

    def test_render(self, duals):
        text = summarize_explanations(duals).render(5)
        assert "global summary" in text
        assert "attributes by mean" in text

    def test_empty_summary(self):
        summary = GlobalSummary()
        assert summary.n_explanations == 0
        assert summary.top_words() == []
        assert summary.attribute_report() == []


def _exact_state(summary):
    """Every accumulator bit, for exact-equality assertions."""
    return summary.to_payload()


class TestStreamingMerge:
    """The mergeable streaming accumulator (bulk-job substrate)."""

    def test_chunked_merge_matches_in_memory_report(self, duals):
        """Chunk partials merged in order reproduce the one-pass report.

        Counts are exact; weight totals agree to float-regrouping noise
        (~1e-16), which vanishes in the rendered report.
        """
        reference = summarize_explanations(duals)
        partials = [
            summarize_explanations(duals[i:i + 2])
            for i in range(0, len(duals), 2)
        ]
        merged = merge_summaries(partials)
        assert merged.n_explanations == reference.n_explanations
        assert set(merged.words) == set(reference.words)
        for word, acc in merged.words.items():
            assert acc.count == reference.words[word].count
            assert acc.total_weight == pytest.approx(
                reference.words[word].total_weight, rel=1e-12, abs=1e-15
            )
        assert merged.render(10) == reference.render(10)

    def test_resume_fold_is_bit_identical_to_uninterrupted(self, duals):
        """The bulk --resume arithmetic: fold a prefix, round-trip the
        cumulative summary through JSON (a journal chunk event), restore,
        fold the remainder — bit-identical to one uninterrupted fold."""
        uninterrupted = summarize_explanations(duals)
        running = summarize_explanations(duals[:3])
        restored = GlobalSummary.from_payload(
            json.loads(json.dumps(running.to_payload()))
        )
        for dual in duals[3:]:
            restored.add(dual)
        assert _exact_state(restored) == _exact_state(uninterrupted)
        assert restored.render(10) == uninterrupted.render(10)

    def test_merge_is_associative_over_grouping(self, duals):
        flat = merge_summaries(summarize_explanations([d]) for d in duals)
        left = summarize_explanations(duals[:3]).merge(
            summarize_explanations(duals[3:])
        )
        assert flat.n_explanations == left.n_explanations
        assert set(flat.words) == set(left.words)
        for word in flat.words:
            assert flat.words[word].count == left.words[word].count
            assert flat.words[word].total_weight == pytest.approx(
                left.words[word].total_weight, rel=1e-12, abs=1e-15
            )

    def test_payload_round_trip_is_exact(self, duals):
        reference = summarize_explanations(duals)
        payload = json.loads(json.dumps(reference.to_payload()))
        restored = GlobalSummary.from_payload(payload)
        assert _exact_state(restored) == _exact_state(reference)
        assert restored.render(8) == reference.render(8)

    def test_journaled_chunk_merge_is_bit_identical(self, duals):
        """The bulk resume arithmetic: JSON-journaled partials merged in
        chunk order equal the uninterrupted merge of the same partials."""
        partials = [summarize_explanations([d]) for d in duals]
        uninterrupted = merge_summaries(partials)
        journaled = merge_summaries(
            GlobalSummary.from_payload(json.loads(json.dumps(p.to_payload())))
            for p in partials
        )
        assert _exact_state(journaled) == _exact_state(uninterrupted)

    def test_add_result_payload_matches_direct_add(self, duals):
        from repro.core.serialize import dual_to_dict

        direct = summarize_explanations(duals[:2])
        streamed = GlobalSummary()
        for dual in duals[:2]:
            streamed.add_result_payload(
                {"duals": {"single": dual_to_dict(dual)}}
            )
        assert _exact_state(streamed) == _exact_state(direct)

    def test_add_result_payload_rejects_malformed(self):
        with pytest.raises(ExplanationError):
            GlobalSummary().add_result_payload({"nope": 1})

    def test_from_payload_rejects_malformed(self):
        with pytest.raises(ExplanationError):
            GlobalSummary.from_payload({"n_explanations": "x"})
        with pytest.raises(ExplanationError):
            GlobalSummary.from_payload({"n_explanations": 1})

    def test_merge_empty_is_identity(self, duals):
        reference = summarize_explanations(duals)
        merged = merge_summaries([GlobalSummary(), reference, GlobalSummary()])
        assert _exact_state(merged) == _exact_state(reference)
