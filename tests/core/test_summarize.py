"""Tests for global explanation summaries."""

import pytest

from repro.core.landmark import LandmarkExplainer
from repro.core.summarize import GlobalSummary, summarize_explanations
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def duals(beer_matcher, beer_dataset):
    explainer = LandmarkExplainer(
        beer_matcher, lime_config=LimeConfig(n_samples=32, seed=0), seed=0
    )
    return [explainer.explain(pair) for pair in beer_dataset.pairs[:6]]


class TestGlobalSummary:
    def test_counts_explanations(self, duals):
        summary = summarize_explanations(duals)
        assert summary.n_explanations == len(duals)

    def test_attribute_report_covers_schema(self, duals, beer_dataset):
        summary = summarize_explanations(duals)
        attributes = {attribute for attribute, _, _ in summary.attribute_report()}
        assert attributes <= set(beer_dataset.schema.attributes)
        assert attributes  # at least one attribute got tokens

    def test_attribute_report_sorted(self, duals):
        summary = summarize_explanations(duals)
        weights = [weight for _, weight, _ in summary.attribute_report()]
        assert weights == sorted(weights, reverse=True)

    def test_top_words_min_count_filter(self, duals):
        summary = summarize_explanations(duals)
        frequent = summary.top_words(k=100, min_count=2)
        assert all(count >= 2 for _, _, count in frequent)

    def test_top_words_sign_filter(self, duals):
        summary = summarize_explanations(duals)
        for _, weight, _ in summary.top_words(k=10, min_count=1, sign="positive"):
            assert weight > 0
        with pytest.raises(ValueError):
            summary.top_words(sign="weird")

    def test_incremental_add_matches_batch(self, duals):
        batch = summarize_explanations(duals)
        incremental = GlobalSummary()
        for dual in duals:
            incremental.add(dual)
        assert incremental.n_explanations == batch.n_explanations
        assert incremental.attribute_report() == batch.attribute_report()

    def test_render(self, duals):
        text = summarize_explanations(duals).render(5)
        assert "global summary" in text
        assert "attributes by mean" in text

    def test_empty_summary(self):
        summary = GlobalSummary()
        assert summary.n_explanations == 0
        assert summary.top_words() == []
        assert summary.attribute_report() == []
