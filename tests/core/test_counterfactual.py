"""Tests for greedy counterfactual generation."""

import pytest

from repro.core.counterfactual import greedy_counterfactual
from repro.core.generation import GENERATION_DOUBLE, GENERATION_SINGLE
from repro.core.landmark import LandmarkExplainer
from repro.exceptions import ConfigurationError
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def explainer(beer_matcher):
    return LandmarkExplainer(
        beer_matcher, lime_config=LimeConfig(n_samples=64, seed=0), seed=0
    )


class TestMatchFlip:
    def test_flips_a_match_by_removing_evidence(
        self, explainer, beer_matcher, match_pair
    ):
        landmark = explainer.explain_landmark(match_pair, "left", GENERATION_SINGLE)
        counterfactual = greedy_counterfactual(landmark, beer_matcher)
        assert counterfactual.flipped
        assert counterfactual.original_probability >= 0.5
        assert counterfactual.final_probability < 0.5
        assert all(edit.action == "remove" for edit in counterfactual.edits)

    def test_original_pair_is_the_unaugmented_record(
        self, explainer, beer_matcher, match_pair
    ):
        landmark = explainer.explain_landmark(match_pair, "left", GENERATION_SINGLE)
        counterfactual = greedy_counterfactual(landmark, beer_matcher)
        assert dict(counterfactual.original.left) == dict(match_pair.left)

    def test_edit_count_bounded(self, explainer, beer_matcher, match_pair):
        landmark = explainer.explain_landmark(match_pair, "left", GENERATION_SINGLE)
        counterfactual = greedy_counterfactual(landmark, beer_matcher, max_edits=2)
        assert counterfactual.n_edits <= 2


class TestNonMatchFlip:
    def test_flips_a_non_match_with_injection(
        self, explainer, beer_matcher, non_match_pair
    ):
        landmark = explainer.explain_landmark(
            non_match_pair, "left", GENERATION_DOUBLE
        )
        counterfactual = greedy_counterfactual(
            landmark, beer_matcher, max_edits=15
        )
        assert counterfactual.flipped
        assert counterfactual.original_probability < 0.5
        assert counterfactual.final_probability >= 0.5
        # Injection is the mechanism: at least one edit adds a landmark token.
        assert any(
            edit.action == "add" and edit.injected for edit in counterfactual.edits
        )

    def test_single_generation_cannot_add_tokens(
        self, explainer, beer_matcher, non_match_pair
    ):
        landmark = explainer.explain_landmark(
            non_match_pair, "left", GENERATION_SINGLE
        )
        counterfactual = greedy_counterfactual(landmark, beer_matcher, max_edits=5)
        # Without injected tokens only removals are available.
        assert all(edit.action == "remove" for edit in counterfactual.edits)


class TestContract:
    def test_max_edits_validated(self, explainer, beer_matcher, match_pair):
        landmark = explainer.explain_landmark(match_pair, "left", GENERATION_SINGLE)
        with pytest.raises(ConfigurationError):
            greedy_counterfactual(landmark, beer_matcher, max_edits=0)

    def test_render_mentions_edits(self, explainer, beer_matcher, match_pair):
        landmark = explainer.explain_landmark(match_pair, "left", GENERATION_SINGLE)
        counterfactual = greedy_counterfactual(landmark, beer_matcher)
        text = counterfactual.render()
        assert "counterfactual:" in text
        assert "1." in text

    def test_probabilities_consistent_with_edits(
        self, explainer, beer_matcher, match_pair
    ):
        landmark = explainer.explain_landmark(match_pair, "left", GENERATION_SINGLE)
        counterfactual = greedy_counterfactual(landmark, beer_matcher)
        if counterfactual.edits:
            assert counterfactual.final_probability == pytest.approx(
                counterfactual.edits[-1].probability_after
            )
        assert counterfactual.final_probability == pytest.approx(
            beer_matcher.predict_one(counterfactual.modified)
        )
