"""Tests for dual-explanation JSON serialization."""

import numpy as np
import pytest

from repro.core.landmark import LandmarkExplainer
from repro.core.serialize import (
    dual_from_dict,
    dual_to_dict,
    load_explanation,
    save_explanation,
)
from repro.exceptions import ExplanationError
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def dual(beer_matcher, non_match_pair):
    explainer = LandmarkExplainer(
        beer_matcher, lime_config=LimeConfig(n_samples=48, seed=0), seed=0
    )
    return explainer.explain(non_match_pair, "double")


class TestRoundTrip:
    def test_weights_survive(self, dual):
        restored = dual_from_dict(dual_to_dict(dual))
        assert np.array_equal(
            restored.left_landmark.explanation.weights,
            dual.left_landmark.explanation.weights,
        )
        assert np.array_equal(
            restored.right_landmark.explanation.weights,
            dual.right_landmark.explanation.weights,
        )

    def test_pair_survives(self, dual):
        restored = dual_from_dict(dual_to_dict(dual))
        assert dict(restored.pair.left) == dict(dual.pair.left)
        assert restored.pair.label == dual.pair.label
        assert restored.pair.pair_id == dual.pair.pair_id

    def test_injection_flags_survive(self, dual):
        restored = dual_from_dict(dual_to_dict(dual))
        assert (
            restored.left_landmark.instance.injected
            == dual.left_landmark.instance.injected
        )
        assert restored.generation == "double"

    def test_combined_view_identical(self, dual):
        restored = dual_from_dict(dual_to_dict(dual))
        original_weights = {e.key: e.weight for e in dual.combined().entries}
        restored_weights = {e.key: e.weight for e in restored.combined().entries}
        assert restored_weights == original_weights

    def test_file_round_trip(self, dual, tmp_path):
        path = tmp_path / "explanation.json"
        save_explanation(dual, path)
        restored = load_explanation(path)
        assert restored.left_landmark.explanation.score == pytest.approx(
            dual.left_landmark.explanation.score
        )

    def test_restored_explanation_still_renders(self, dual):
        restored = dual_from_dict(dual_to_dict(dual))
        assert "landmark=left" in restored.render()

    def test_restored_removal_still_works(self, dual, beer_matcher):
        restored = dual_from_dict(dual_to_dict(dual))
        reduced = restored.left_landmark.apply_removal("negative")
        probability = beer_matcher.predict_one(reduced)
        assert 0.0 <= probability <= 1.0


class TestVersioning:
    def test_unknown_version_rejected(self, dual):
        payload = dual_to_dict(dual)
        payload["format_version"] = 99
        with pytest.raises(ExplanationError, match="format version"):
            dual_from_dict(payload)

    def test_payload_is_json_serializable(self, dual):
        import json

        text = json.dumps(dual_to_dict(dual))
        assert "left_landmark" in text


class TestMatcherArtifacts:
    def test_save_load_round_trip(self, beer_matcher, match_pair, tmp_path):
        from repro.core.serialize import load_matcher, save_matcher

        path = tmp_path / "matcher.pkl"
        save_matcher(beer_matcher, path)
        restored = load_matcher(path)
        assert restored.predict_one(match_pair) == beer_matcher.predict_one(
            match_pair
        )

    def test_fingerprint_stable_across_retrain(self, beer_dataset):
        from repro.core.serialize import matcher_fingerprint
        from repro.matchers.logistic import LogisticRegressionMatcher

        a = LogisticRegressionMatcher().fit(beer_dataset)
        b = LogisticRegressionMatcher().fit(beer_dataset)
        assert matcher_fingerprint(a) == matcher_fingerprint(b)

    def test_fingerprint_changes_with_training_data(self, beer_dataset):
        from repro.core.serialize import matcher_fingerprint
        from repro.data.synthetic.magellan import load_dataset
        from repro.matchers.logistic import LogisticRegressionMatcher

        a = LogisticRegressionMatcher().fit(beer_dataset)
        other = load_dataset("S-BR", seed=1, size_cap=300)
        b = LogisticRegressionMatcher().fit(other)
        assert matcher_fingerprint(a) != matcher_fingerprint(b)

    def test_save_creates_parent_directories(self, beer_matcher, tmp_path):
        from repro.core.serialize import save_matcher

        path = tmp_path / "deep" / "nested" / "matcher.pkl"
        fingerprint = save_matcher(beer_matcher, path)
        assert path.exists()
        assert len(fingerprint) == 64

    def test_missing_artifact(self, tmp_path):
        from repro.core.serialize import load_matcher
        from repro.exceptions import ArtifactError

        with pytest.raises(ArtifactError, match="no matcher artifact"):
            load_matcher(tmp_path / "absent.pkl")

    def test_corrupt_artifact(self, beer_matcher, tmp_path):
        from repro.core.serialize import load_matcher, save_matcher
        from repro.exceptions import ArtifactError

        path = tmp_path / "matcher.pkl"
        save_matcher(beer_matcher, path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(ArtifactError):
            load_matcher(path)

    def test_tampered_state_fails_fingerprint_check(
        self, beer_matcher, tmp_path
    ):
        import pickle

        from repro.core.serialize import load_matcher, save_matcher
        from repro.exceptions import ArtifactError

        path = tmp_path / "matcher.pkl"
        save_matcher(beer_matcher, path)
        envelope = pickle.loads(path.read_bytes())
        envelope["matcher"].coef_ = envelope["matcher"].coef_ + 1.0
        path.write_bytes(pickle.dumps(envelope, protocol=4))
        with pytest.raises(ArtifactError, match="fingerprint"):
            load_matcher(path)

    def test_unsupported_format_version(self, beer_matcher, tmp_path):
        import pickle

        from repro.core.serialize import load_matcher, save_matcher
        from repro.exceptions import ArtifactError

        path = tmp_path / "matcher.pkl"
        save_matcher(beer_matcher, path)
        envelope = pickle.loads(path.read_bytes())
        envelope["format_version"] = 99
        path.write_bytes(pickle.dumps(envelope, protocol=4))
        with pytest.raises(ArtifactError, match="version"):
            load_matcher(path)

    def test_tampered_state_raises_the_mismatch_subclass(
        self, beer_matcher, tmp_path
    ):
        import pickle

        from repro.core.serialize import load_matcher, save_matcher
        from repro.exceptions import ArtifactMismatchError

        path = tmp_path / "matcher.pkl"
        save_matcher(beer_matcher, path)
        envelope = pickle.loads(path.read_bytes())
        envelope["matcher"].coef_ = envelope["matcher"].coef_ + 1.0
        path.write_bytes(pickle.dumps(envelope, protocol=4))
        # The sharper subclass, so serving paths can abort on exactly the
        # stale/foreign-weights case without catching broad ArtifactError.
        with pytest.raises(ArtifactMismatchError):
            load_matcher(path)

    def test_expected_fingerprint_pins_the_model(
        self, beer_matcher, beer_dataset, tmp_path
    ):
        from repro.core.serialize import (
            load_matcher,
            matcher_fingerprint,
            save_matcher,
        )
        from repro.exceptions import ArtifactMismatchError
        from repro.matchers.neural import MLPMatcher

        path = tmp_path / "matcher.pkl"
        fingerprint = save_matcher(beer_matcher, path)
        loaded = load_matcher(path, expected_fingerprint=fingerprint)
        assert matcher_fingerprint(loaded) == fingerprint
        # A healthy artifact of the *wrong* model must be refused too:
        # it is exactly the stale-weights deployment mistake.
        other = matcher_fingerprint(MLPMatcher().fit(beer_dataset))
        with pytest.raises(ArtifactMismatchError, match="stale weights"):
            load_matcher(path, expected_fingerprint=other)
