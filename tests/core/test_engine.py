"""Tests for the batched prediction engine.

The engine's contract has two halves, and both are tested here:

* **equivalence** — dedup, caching, chunking and thread parallelism never
  change a single output bit relative to calling the matcher directly;
* **accounting** — the observability counters obey
  ``calls_issued + calls_saved == requested`` and
  ``calls_saved == dedup_saved + cache_hits``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    ENGINE_OFF,
    EngineConfig,
    EngineStats,
    PredictionEngine,
    pair_fingerprint,
)
from repro.core.generation import GENERATION_DOUBLE, GENERATION_SINGLE
from repro.core.landmark import LandmarkExplainer
from repro.data.records import RecordPair
from repro.exceptions import ConfigurationError
from repro.explainers.lime_text import LimeConfig


class CountingMatcher:
    """Wraps a fitted matcher and counts the rows it is asked to score."""

    def __init__(self, matcher):
        self.matcher = matcher
        self.rows_scored = 0
        self.calls = 0

    def fit(self, dataset):
        return self.matcher.fit(dataset)

    def predict_proba(self, pairs):
        self.rows_scored += len(pairs)
        self.calls += 1
        return self.matcher.predict_proba(pairs)

    def predict_one(self, pair):
        return float(self.predict_proba([pair])[0])


@pytest.fixture()
def counting_matcher(beer_matcher):
    return CountingMatcher(beer_matcher)


def explain_weights(matcher, pair, engine_config, generation=GENERATION_SINGLE):
    """Both sides' surrogate weights under a given engine configuration."""
    engine = PredictionEngine(matcher, engine_config)
    explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=48, seed=0), seed=0,
        engine=engine,
    )
    dual = explainer.explain(pair, generation)
    return (
        dual.left_landmark.explanation.weights,
        dual.right_landmark.explanation.weights,
        engine.stats,
    )


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self, toy_pair):
        from dataclasses import replace

        clone = replace(toy_pair, pair_id=123)
        assert pair_fingerprint(toy_pair) == pair_fingerprint(clone)

    def test_different_content_different_fingerprint(self, toy_pair):
        other = toy_pair.with_side("left", {"name": "different", "price": "1"})
        assert pair_fingerprint(toy_pair) != pair_fingerprint(other)


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(cache_size=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(n_jobs=0)


class TestPredictPairs:
    def test_matches_direct_call(self, beer_matcher, beer_dataset):
        pairs = list(beer_dataset)[:20]
        engine = PredictionEngine(beer_matcher)
        direct = beer_matcher.predict_proba(pairs)
        assert np.array_equal(engine.predict_pairs(pairs), direct)

    def test_duplicates_cost_one_call(self, counting_matcher, match_pair):
        engine = PredictionEngine(counting_matcher)
        probabilities = engine.predict_pairs([match_pair] * 10)
        assert counting_matcher.rows_scored == 1
        assert len(set(probabilities.tolist())) == 1
        assert engine.stats.dedup_saved == 9

    def test_cache_persists_across_requests(self, counting_matcher, match_pair):
        engine = PredictionEngine(counting_matcher)
        first = engine.predict_one(match_pair)
        second = engine.predict_one(match_pair)
        assert first == second
        assert counting_matcher.rows_scored == 1
        assert engine.stats.cache_hits == 1

    def test_off_config_is_transparent(self, counting_matcher, match_pair):
        engine = PredictionEngine(counting_matcher, ENGINE_OFF)
        engine.predict_pairs([match_pair] * 5)
        engine.predict_pairs([match_pair] * 5)
        assert counting_matcher.rows_scored == 10
        assert engine.stats.calls_saved == 0

    def test_empty_request(self, beer_matcher):
        engine = PredictionEngine(beer_matcher)
        assert engine.predict_pairs([]).shape == (0,)

    def test_chunking_matches_single_batch(self, beer_matcher, beer_dataset):
        pairs = list(beer_dataset)[:30]
        whole = PredictionEngine(beer_matcher, ENGINE_OFF).predict_pairs(pairs)
        chunked = PredictionEngine(
            beer_matcher, EngineConfig(dedup=False, cache=False, batch_size=7)
        ).predict_pairs(pairs)
        assert np.array_equal(whole, chunked)

    def test_thread_pool_matches_serial(self, beer_matcher, beer_dataset):
        pairs = list(beer_dataset)[:40]
        serial = PredictionEngine(beer_matcher, ENGINE_OFF).predict_pairs(pairs)
        threaded = PredictionEngine(
            beer_matcher,
            EngineConfig(dedup=False, cache=False, batch_size=8, n_jobs=4),
        ).predict_pairs(pairs)
        assert np.array_equal(serial, threaded)

    def test_lru_eviction_bounds_cache(self, beer_matcher, beer_dataset):
        engine = PredictionEngine(beer_matcher, EngineConfig(cache_size=5))
        engine.predict_pairs(list(beer_dataset)[:20])
        assert engine.cache_len <= 5


class TestAllZerosMask:
    def test_fully_removed_entity_predicts_finite(self, beer_matcher, match_pair):
        # Regression: an all-zeros mask empties every attribute of the
        # varying entity; the rebuilt pair's probability must stay finite.
        from repro.core.generation import LandmarkGenerator

        instance = LandmarkGenerator().generate(
            match_pair, "left", GENERATION_SINGLE
        )
        engine = PredictionEngine(beer_matcher)
        masks = np.zeros((3, len(instance.tokens)), dtype=np.int8)
        probabilities = engine.predict_instance(instance, masks)
        assert np.isfinite(probabilities).all()
        assert np.all((probabilities >= 0.0) & (probabilities <= 1.0))


MATCHER_FACTORIES = ["logistic", "rules", "boosted"]


@pytest.fixture(scope="module")
def matchers(beer_dataset):
    from repro.matchers.boosting import GradientBoostedStumpsMatcher
    from repro.matchers.logistic import LogisticRegressionMatcher
    from repro.matchers.rules import RuleBasedMatcher

    return {
        "logistic": LogisticRegressionMatcher().fit(beer_dataset),
        "rules": RuleBasedMatcher().fit(beer_dataset),
        "boosted": GradientBoostedStumpsMatcher().fit(beer_dataset),
    }


class TestEquivalence:
    @pytest.mark.parametrize("matcher_name", MATCHER_FACTORIES)
    def test_engine_settings_never_change_weights(
        self, matchers, matcher_name, match_pair
    ):
        matcher = matchers[matcher_name]
        baseline = explain_weights(matcher, match_pair, ENGINE_OFF)
        for config in (
            EngineConfig(),  # dedup + cache
            EngineConfig(cache=False),
            EngineConfig(dedup=False),
            EngineConfig(batch_size=13, n_jobs=2),
        ):
            candidate = explain_weights(matcher, match_pair, config)
            assert np.array_equal(baseline[0], candidate[0])
            assert np.array_equal(baseline[1], candidate[1])

    def test_double_generation_equivalence(self, matchers, non_match_pair):
        matcher = matchers["logistic"]
        baseline = explain_weights(
            matcher, non_match_pair, ENGINE_OFF, GENERATION_DOUBLE
        )
        candidate = explain_weights(
            matcher, non_match_pair, EngineConfig(), GENERATION_DOUBLE
        )
        assert np.array_equal(baseline[0], candidate[0])
        assert np.array_equal(baseline[1], candidate[1])


class TestAccounting:
    def test_counter_identities_after_explanation(
        self, counting_matcher, match_pair
    ):
        _, _, stats = explain_weights(counting_matcher, match_pair, EngineConfig())
        assert stats.requested > 0
        assert stats.calls_issued + stats.calls_saved == stats.requested
        assert stats.calls_saved == stats.dedup_saved + stats.cache_hits
        assert stats.calls_issued == counting_matcher.rows_scored

    def test_requested_counts_every_mask_row(self, beer_matcher, match_pair):
        from repro.core.generation import LandmarkGenerator

        instance = LandmarkGenerator().generate(
            match_pair, "left", GENERATION_SINGLE
        )
        engine = PredictionEngine(beer_matcher)
        rng = np.random.default_rng(0)
        masks = rng.integers(0, 2, size=(25, len(instance.tokens)))
        engine.predict_instance(instance, masks)
        assert engine.stats.requested == 25

    def test_cache_shared_across_landmark_sides(self, counting_matcher, match_pair):
        engine = PredictionEngine(counting_matcher)
        explainer = LandmarkExplainer(
            counting_matcher, lime_config=LimeConfig(n_samples=48, seed=0),
            seed=0, engine=engine,
        )
        explainer.explain(match_pair, GENERATION_SINGLE)
        first_run_rows = counting_matcher.rows_scored
        # Re-explaining the same record must be answered (almost) entirely
        # from the cache: only rows never rebuilt before cost a call.
        explainer.explain(match_pair, GENERATION_SINGLE)
        assert counting_matcher.rows_scored == first_run_rows
        assert engine.stats.hit_rate > 0.0

    def test_reset_stats(self, beer_matcher, match_pair):
        engine = PredictionEngine(beer_matcher)
        engine.predict_one(match_pair)
        old = engine.reset_stats()
        assert old.requested == 1
        assert engine.stats.requested == 0

    def test_stats_roundtrip_and_add(self):
        stats = EngineStats(requested=10, calls_issued=4, dedup_saved=3,
                            cache_hits=3, cache_misses=4, batches=2)
        restored = EngineStats.from_counters(stats.as_dict())
        assert restored == stats
        total = EngineStats().add(stats).add(stats)
        assert total.requested == 20
        assert total.calls_saved == 12

    def test_summary_mentions_savings(self):
        stats = EngineStats(requested=10, calls_issued=5)
        assert "2.00x" in stats.summary()


class TestEngineMatcherAdapter:
    def test_adapter_routes_through_cache(self, counting_matcher, match_pair):
        engine = PredictionEngine(counting_matcher)
        adapter = engine.as_matcher()
        a = adapter.predict_proba([match_pair])
        b = adapter.predict_proba([match_pair])
        assert np.array_equal(a, b)
        assert counting_matcher.rows_scored == 1

    def test_adapter_fit_clears_cache(self, beer_dataset, match_pair):
        from repro.matchers.logistic import LogisticRegressionMatcher

        matcher = LogisticRegressionMatcher().fit(beer_dataset)
        engine = PredictionEngine(matcher)
        engine.predict_one(match_pair)
        assert engine.cache_len == 1
        engine.as_matcher().fit(beer_dataset)
        assert engine.cache_len == 0


class TestThreadSafety:
    """Regression: the engine is shared by the service's worker pool, so
    its stats and LRU cache must stay consistent under concurrent use."""

    def test_hammer_preserves_accounting_invariants(
        self, beer_matcher, beer_dataset
    ):
        import threading

        engine = PredictionEngine(beer_matcher)
        pairs = list(beer_dataset[:20])
        n_threads, rounds = 8, 5
        barrier = threading.Barrier(n_threads)
        failures: list[BaseException] = []

        def hammer() -> None:
            barrier.wait()
            try:
                for _ in range(rounds):
                    engine.predict_pairs(pairs)
                    for pair in pairs[:5]:
                        engine.predict_one(pair)
            except BaseException as error:  # noqa: BLE001 - collected
                failures.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        stats = engine.stats
        expected = n_threads * rounds * (len(pairs) + 5)
        assert stats.requested == expected
        assert stats.calls_issued + stats.calls_saved == stats.requested
        assert stats.calls_saved == stats.dedup_saved + stats.cache_hits
        assert stats.cache_misses + stats.cache_hits + stats.dedup_saved == stats.requested
        # One cache slot per distinct pair content, however many threads.
        assert 0 < engine.cache_len <= len(pairs)

    def test_hammer_results_match_serial(self, beer_matcher, beer_dataset):
        import threading

        pairs = list(beer_dataset[:10])
        serial = PredictionEngine(beer_matcher).predict_pairs(pairs)
        engine = PredictionEngine(beer_matcher)
        results: dict[int, np.ndarray] = {}
        barrier = threading.Barrier(4)

        def worker(index: int) -> None:
            barrier.wait()
            results[index] = engine.predict_pairs(pairs)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for probabilities in results.values():
            assert np.array_equal(probabilities, serial)

    def test_hammer_with_threaded_batches(self, beer_matcher, beer_dataset):
        import threading

        engine = PredictionEngine(
            beer_matcher, EngineConfig(batch_size=8, n_jobs=2)
        )
        pairs = list(beer_dataset[:30])
        barrier = threading.Barrier(4)
        failures: list[BaseException] = []

        def hammer() -> None:
            barrier.wait()
            try:
                engine.predict_pairs(pairs)
            except BaseException as error:  # noqa: BLE001 - collected
                failures.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        stats = engine.stats
        assert stats.calls_issued + stats.calls_saved == stats.requested
