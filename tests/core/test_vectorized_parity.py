"""Bit-identity of the columnar hot path against the per-pair path.

The vectorized perturbation → reconstruction → predict pipeline promises
*identical* explanation weights — same float64 bits — no matter how the
work is batched: vectorization on or off, any engine chunk size, one
request at a time or N coalesced through the service's cross-request
batch scheduler.  These tests pin that contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ServiceConfig
from repro.core.engine import EngineConfig, PredictionEngine
from repro.core.landmark import LandmarkExplainer
from repro.baselines.mojito import (
    MojitoAttributeDropExplainer,
    MojitoCopyExplainer,
    MojitoDropExplainer,
)
from repro.data.records import NON_MATCH, RecordPair
from repro.data.schema import PairSchema
from repro.explainers.lime_text import LimeConfig
from repro.service.request import ExplainRequest
from repro.service.service import ExplanationService, duals_from_result


def landmark_weights(matcher, pair, engine_config, samples=48):
    engine = PredictionEngine(matcher, engine_config)
    explainer = LandmarkExplainer(
        matcher,
        engine=engine,
        lime_config=LimeConfig(n_samples=samples, seed=0),
        seed=0,
    )
    dual = explainer.explain(pair)
    return tuple(
        (entry.key, entry.weight) for entry in dual.combined().entries
    )


def dual_cells(payload):
    return tuple(
        (
            generation,
            tuple(
                (entry.key, entry.weight)
                for entry in dual.combined().entries
            ),
        )
        for generation, dual in sorted(duals_from_result(payload).items())
    )


class TestEngineParity:
    def test_vectorized_weights_equal_per_pair_weights(
        self, beer_matcher, non_match_pair
    ):
        off = landmark_weights(
            beer_matcher, non_match_pair, EngineConfig(vectorize=False)
        )
        on = landmark_weights(
            beer_matcher, non_match_pair, EngineConfig(vectorize=True)
        )
        assert off == on

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 4096])
    def test_weights_invariant_to_chunk_size(
        self, beer_matcher, non_match_pair, batch_size
    ):
        reference = landmark_weights(
            beer_matcher, non_match_pair, EngineConfig(vectorize=True)
        )
        chunked = landmark_weights(
            beer_matcher,
            non_match_pair,
            EngineConfig(vectorize=True, batch_size=batch_size),
        )
        assert reference == chunked

    @pytest.mark.parametrize("dedup,cache", [(False, False), (True, False), (False, True)])
    def test_weights_invariant_to_dedup_and_cache(
        self, beer_matcher, non_match_pair, dedup, cache
    ):
        reference = landmark_weights(
            beer_matcher, non_match_pair, EngineConfig(vectorize=True)
        )
        other = landmark_weights(
            beer_matcher,
            non_match_pair,
            EngineConfig(vectorize=True, dedup=dedup, cache=cache),
        )
        assert reference == other

    @pytest.mark.parametrize(
        "factory",
        [MojitoDropExplainer, MojitoAttributeDropExplainer, MojitoCopyExplainer],
    )
    def test_mojito_weights_equal_across_paths(
        self, beer_matcher, beer_dataset, factory, non_match_pair
    ):
        config = LimeConfig(n_samples=32, seed=0)

        def weights(vectorize):
            engine = PredictionEngine(
                beer_matcher, EngineConfig(vectorize=vectorize)
            )
            explainer = factory(beer_matcher, config, seed=0, engine=engine)
            record = explainer.explain(non_match_pair)
            return tuple(
                (entry.key, entry.weight)
                for entry in record.token_weights.entries
            )

        assert weights(False) == weights(True)

    def test_capacity_branch_beyond_62_tokens(self, beer_matcher):
        # n_features > 62 drops sample_masks into the unbounded-capacity
        # branch; the columnar path must still agree bit for bit.
        schema = PairSchema(beer_matcher.extractor.schema.attributes)
        wide = {
            attribute: " ".join(f"tok{i}{attribute}" for i in range(17))
            for attribute in schema.attributes
        }
        narrow = {attribute: "tok0" for attribute in schema.attributes}
        pair = RecordPair(
            schema=schema, left=wide, right=narrow, label=NON_MATCH
        )
        off = landmark_weights(
            beer_matcher, pair, EngineConfig(vectorize=False), samples=24
        )
        on = landmark_weights(
            beer_matcher, pair, EngineConfig(vectorize=True), samples=24
        )
        assert off == on


class TestServiceParity:
    def test_coalesced_batches_equal_sequential(self, beer_matcher, beer_dataset):
        requests = [
            ExplainRequest(pair=beer_dataset[index], samples=32, seed=0)
            for index in range(4)
        ]
        with ExplanationService(
            beer_matcher, config=ServiceConfig(n_workers=1, coalesce=False)
        ) as sequential:
            baseline = [
                dual_cells(sequential.explain(request)) for request in requests
            ]
        with ExplanationService(
            beer_matcher,
            config=ServiceConfig(
                n_workers=4,
                coalesce=False,
                batch_window_ms=5.0,
                batch_max_size=4096,
            ),
        ) as batched:
            futures = [batched.submit(request) for request in requests]
            merged = [dual_cells(future.result(60)) for future in futures]
        assert baseline == merged
