"""Property-based tests over the whole landmark pipeline.

Hypothesis drives random (schema, entities, masks) through landmark
generation and pair reconstruction, asserting the structural invariants
the evaluation logic silently depends on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generation import (
    GENERATION_DOUBLE,
    GENERATION_SINGLE,
    LandmarkGenerator,
)
from repro.core.reconstruction import PairReconstructor
from repro.data.records import RecordPair
from repro.data.schema import PairSchema
from repro.text.normalize import normalize_value
from repro.text.tokenize import Tokenizer

words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=6,
)
values = st.lists(words, min_size=0, max_size=5).map(" ".join)

attributes = st.sampled_from([("name",), ("name", "brand"), ("name", "brand", "price")])


@st.composite
def record_pairs(draw):
    attribute_names = draw(attributes)
    schema = PairSchema(attribute_names)
    left = {attribute: draw(values) for attribute in attribute_names}
    right = {attribute: draw(values) for attribute in attribute_names}
    label = draw(st.integers(min_value=0, max_value=1))
    return RecordPair(schema, left, right, label=label, pair_id=draw(
        st.integers(min_value=0, max_value=10_000)
    ))


class TestGenerationProperties:
    @given(record_pairs(), st.sampled_from(["left", "right"]))
    @settings(max_examples=60, deadline=None)
    def test_single_tokens_equal_varying_entity_tokens(self, pair, side):
        instance = LandmarkGenerator().generate(pair, side, GENERATION_SINGLE)
        tokenizer = Tokenizer()
        expected = tokenizer.tokenize_entity(pair.entity(instance.varying_side))
        assert list(instance.tokens) == expected
        assert not any(instance.injected)

    @given(record_pairs(), st.sampled_from(["left", "right"]))
    @settings(max_examples=60, deadline=None)
    def test_double_token_count_is_sum_of_sides(self, pair, side):
        instance = LandmarkGenerator().generate(pair, side, GENERATION_DOUBLE)
        tokenizer = Tokenizer()
        n_left = len(tokenizer.tokenize_entity(pair.left))
        n_right = len(tokenizer.tokenize_entity(pair.right))
        assert len(instance.tokens) == n_left + n_right
        assert instance.n_injected == len(
            tokenizer.tokenize_entity(pair.entity(side))
        )

    @given(record_pairs(), st.sampled_from(["left", "right"]))
    @settings(max_examples=60, deadline=None)
    def test_feature_names_always_unique(self, pair, side):
        instance = LandmarkGenerator().generate(pair, side, GENERATION_DOUBLE)
        names = instance.feature_names
        assert len(names) == len(set(names))


class TestReconstructionProperties:
    @given(
        record_pairs(),
        st.sampled_from(["left", "right"]),
        st.sampled_from([GENERATION_SINGLE, GENERATION_DOUBLE]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_landmark_is_always_preserved(self, pair, side, generation, seed):
        instance = LandmarkGenerator().generate(pair, side, generation)
        rng = np.random.default_rng(seed)
        mask = rng.integers(0, 2, size=len(instance.tokens))
        rebuilt = PairReconstructor().rebuild(instance, mask)
        landmark = pair.entity(side)
        assert dict(rebuilt.entity(side)) == dict(landmark)
        assert rebuilt.label == pair.label
        assert rebuilt.pair_id == pair.pair_id

    @given(record_pairs(), st.sampled_from(["left", "right"]))
    @settings(max_examples=60, deadline=None)
    def test_full_single_mask_rebuilds_normalized_varying_entity(self, pair, side):
        instance = LandmarkGenerator().generate(pair, side, GENERATION_SINGLE)
        rebuilt = PairReconstructor().rebuild(
            instance, [1] * len(instance.tokens)
        )
        varying = instance.varying_side
        for attribute in pair.schema.attributes:
            assert rebuilt.entity(varying)[attribute] == normalize_value(
                pair.entity(varying)[attribute]
            )

    @given(
        record_pairs(),
        st.sampled_from(["left", "right"]),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_kept_token_multiset_survives(self, pair, side, seed):
        instance = LandmarkGenerator().generate(pair, side, GENERATION_DOUBLE)
        rng = np.random.default_rng(seed)
        mask = rng.integers(0, 2, size=len(instance.tokens))
        rebuilt = PairReconstructor().rebuild(instance, mask)
        kept_words = sorted(
            token.word
            for token, bit in zip(instance.tokens, mask)
            if bit
        )
        rebuilt_words = sorted(
            word
            for value in rebuilt.entity(instance.varying_side).values()
            for word in value.split()
            if word
        )
        assert rebuilt_words == kept_words
