"""Tests for :mod:`repro.bulk.job` — the chunked bulk runner.

The load-bearing guarantees: the streaming fold matches
:func:`repro.core.summarize.summarize_explanations` bit-for-bit, a
kill-at-chunk-K resume reproduces the uninterrupted report byte-for-byte,
and a warm store turns the whole job into dedup hits.
"""

import json

import pytest

from repro.bulk import BULK_JOURNAL, BulkJob, BulkJobSpec, DatasetSource
from repro.core.summarize import summarize_explanations
from repro.evaluation.ledger import KIND_SKIPPED
from repro.evaluation.persistence import read_journal
from repro.exceptions import CheckpointError, ConfigurationError
from repro.service.service import build_landmark_explainer
from repro.service.store import ExplanationStore


SPEC = BulkJobSpec(method="both", samples=8, explainer="lime", seed=0,
                   chunk_size=2)


def make_job(beer_dataset, beer_matcher, tmp_path, name, spec=SPEC, **kwargs):
    source = DatasetSource(beer_dataset, per_label=2, seed=0)
    store = ExplanationStore(tmp_path / f"{name}-store")
    run_dir = tmp_path / f"{name}-run"
    run_dir.mkdir(exist_ok=True)
    return BulkJob(
        beer_matcher, source, spec=spec, store=store, run_dir=run_dir,
        **kwargs,
    )


def reference_summary(job):
    """The in-memory fold the streaming job must reproduce exactly."""
    duals = []
    for pair in job.source.pairs():
        request = job.spec.request_for(pair)
        explainer = build_landmark_explainer(job.matcher, job.engine, request)
        for generation in request.generations():
            duals.append(explainer.explain(pair, generation=generation))
    return summarize_explanations(duals)


class TestBulkJobRun:
    def test_counts_and_streaming_fold_matches_core_summarize(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        job = make_job(beer_dataset, beer_matcher, tmp_path, "base")
        report = job.run()
        assert report.n_pairs == 4
        assert report.n_chunks == 2
        assert report.n_computed == 4
        assert report.n_dedup_hits == 0
        assert report.n_failed == 0
        # Bit-exact, not approximate: same fold order, and JSON float
        # round-trips are lossless.
        expected = reference_summary(job)
        assert report.summary.to_payload() == expected.to_payload()
        assert "bulk job: 4 pairs in 2 chunks" in report.render(5)

    def test_runs_without_a_store(self, beer_dataset, beer_matcher, tmp_path):
        source = DatasetSource(beer_dataset, per_label=2, seed=0)
        report = BulkJob(beer_matcher, source, spec=SPEC).run()
        assert report.n_computed == 4
        assert report.n_dedup_hits == 0

    def test_journal_records_cumulative_summaries(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        job = make_job(beer_dataset, beer_matcher, tmp_path, "journal")
        report = job.run()
        events = read_journal(job.run_dir / BULK_JOURNAL)
        assert events[0]["event"] == "config"
        assert events[0]["spec"] == SPEC.to_payload()
        assert events[0]["source"] == job.source.describe()
        assert events[0]["fingerprint"] == job.fingerprint
        chunks = [e for e in events if e["event"] == "chunk"]
        assert [e["index"] for e in chunks] == [0, 1]
        assert chunks[0]["summary"]["n_explanations"] == 4  # 2 pairs × both
        assert chunks[-1]["summary"] == report.summary.to_payload()

    def test_warm_store_is_all_dedup_hits(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        first = make_job(beer_dataset, beer_matcher, tmp_path, "warm")
        first_report = first.run()
        second = BulkJob(
            beer_matcher, first.source, spec=SPEC, store=first.store,
            run_dir=tmp_path / "warm-run2",
        )
        second_report = second.run()
        assert second_report.n_computed == 0
        assert second_report.n_dedup_hits == 4
        assert second_report.dedup_rate >= 0.9
        assert (
            second_report.summary.to_payload()
            == first_report.summary.to_payload()
        )

    def test_metrics_account_for_the_run(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        job = make_job(beer_dataset, beer_matcher, tmp_path, "metrics")
        job.run()
        instruments = job._instruments
        assert instruments.pairs.value == 4.0
        assert instruments.chunks.value == 2.0
        assert instruments.computed.value == 4.0
        assert instruments.failures.value == 0.0
        assert instruments.progress.value == 4.0
        assert instruments.total.value == 4.0
        assert instruments.chunk_seconds.value["count"] == 2

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BulkJobSpec(chunk_size=0)


class TestFailureIsolation:
    def test_failed_pair_is_ledgered_and_excluded_from_fold(
        self, beer_dataset, beer_matcher, tmp_path, monkeypatch
    ):
        job = make_job(beer_dataset, beer_matcher, tmp_path, "fail")
        doomed = job.source.pairs()[1].pair_id
        import repro.bulk.job as job_module

        real = job_module.compute_explanation_payload

        def flaky(matcher, engine, fingerprint, key, request):
            if request.pair.pair_id == doomed:
                raise RuntimeError("injected explosion")
            return real(matcher, engine, fingerprint, key, request)

        monkeypatch.setattr(job_module, "compute_explanation_payload", flaky)
        report = job.run()
        assert report.n_failed == 1
        assert report.failed_pair_ids == [doomed]
        assert report.n_computed == 3
        assert report.summary.n_explanations == 6  # 3 pairs × both
        [entry] = list(report.ledger)
        assert entry.kind == KIND_SKIPPED
        assert entry.record_id == doomed
        assert entry.error == "RuntimeError"
        payload = report.report_payload(
            job.spec, job.source.describe(), job.fingerprint
        )
        assert payload["failed_pair_ids"] == [doomed]


class TestResume:
    def test_kill_at_chunk_then_resume_is_byte_identical(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        straight = make_job(beer_dataset, beer_matcher, tmp_path, "straight")
        straight_report = straight.run()
        straight_bytes = json.dumps(
            straight_report.report_payload(
                SPEC, straight.source.describe(), straight.fingerprint
            ),
            sort_keys=True,
        )

        class Boom(RuntimeError):
            pass

        def kill_after_first_chunk(index, job):
            if index == 0:
                raise Boom

        killed = make_job(
            beer_dataset, beer_matcher, tmp_path, "killed",
            on_chunk=kill_after_first_chunk,
        )
        with pytest.raises(Boom):
            killed.run()

        resumed = BulkJob(
            beer_matcher, killed.source, spec=SPEC, store=killed.store,
            run_dir=killed.run_dir,
        )
        resumed_report = resumed.run(resume=True)
        assert resumed_report.resumed_chunks == 1
        assert resumed._instruments.resumed_chunks.value == 1.0
        resumed_bytes = json.dumps(
            resumed_report.report_payload(
                SPEC, resumed.source.describe(), resumed.fingerprint
            ),
            sort_keys=True,
        )
        assert resumed_bytes == straight_bytes

    def test_resume_skips_completed_chunks_without_recompute(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        def kill_after_first_chunk(index, job):
            if index == 0:
                raise RuntimeError("kill")

        killed = make_job(
            beer_dataset, beer_matcher, tmp_path, "skip",
            on_chunk=kill_after_first_chunk,
        )
        with pytest.raises(RuntimeError):
            killed.run()
        resumed = BulkJob(
            beer_matcher, killed.source, spec=SPEC, store=killed.store,
            run_dir=killed.run_dir,
        )
        report = resumed.run(resume=True)
        # Chunk 0's two pairs are restored from the journal (2 computed
        # counted there); only chunk 1's two pairs run live.
        assert report.n_pairs == 4
        assert report.n_computed == 4
        assert resumed._instruments.pairs.value == 2.0

    def test_resume_refuses_a_different_job(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        job = make_job(beer_dataset, beer_matcher, tmp_path, "mismatch")
        job.run()
        other_spec = BulkJobSpec(method="both", samples=16, explainer="lime",
                                 seed=0, chunk_size=2)
        retry = BulkJob(
            beer_matcher, job.source, spec=other_spec, store=job.store,
            run_dir=job.run_dir,
        )
        with pytest.raises(CheckpointError, match="different job"):
            retry.run(resume=True)

    def test_resume_refuses_a_headerless_journal(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        job = make_job(beer_dataset, beer_matcher, tmp_path, "headerless")
        (job.run_dir / BULK_JOURNAL).write_text(
            '{"event": "chunk", "index": 0}\n', encoding="utf-8"
        )
        with pytest.raises(CheckpointError, match="config event"):
            job.run(resume=True)

    def test_resume_refuses_out_of_order_chunks(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        job = make_job(beer_dataset, beer_matcher, tmp_path, "disorder")
        job.run()
        path = job.run_dir / BULK_JOURNAL
        events = read_journal(path)
        events.append({"event": "chunk", "index": 5})
        path.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in events),
            encoding="utf-8",
        )
        retry = BulkJob(
            beer_matcher, job.source, spec=SPEC, store=job.store,
            run_dir=job.run_dir,
        )
        with pytest.raises(CheckpointError, match="out of order"):
            retry.run(resume=True)

    def test_fresh_run_overwrites_stale_journal(
        self, beer_dataset, beer_matcher, tmp_path
    ):
        job = make_job(beer_dataset, beer_matcher, tmp_path, "overwrite")
        job.run()
        again = BulkJob(
            beer_matcher, job.source, spec=SPEC, store=job.store,
            run_dir=job.run_dir,
        )
        report = again.run(resume=False)
        assert report.resumed_chunks == 0
        events = read_journal(job.run_dir / BULK_JOURNAL)
        assert [e["event"] for e in events] == ["config", "chunk", "chunk"]
