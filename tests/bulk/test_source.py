"""Tests for :mod:`repro.bulk.source` — deterministic pair streams."""

import pytest

from repro.bulk.source import (
    BlockedSource,
    DatasetSource,
    PairListSource,
    _cross_pair,
    select_pairs,
)
from repro.data.splits import sample_per_label
from repro.exceptions import DatasetError


class TestSelectPairs:
    def test_all_rows_in_dataset_order(self, beer_dataset):
        pairs = select_pairs(beer_dataset)
        assert pairs == list(beer_dataset.pairs)

    def test_per_label_matches_protocol_sample(self, beer_dataset):
        pairs = select_pairs(beer_dataset, per_label=5, seed=3)
        expected = list(sample_per_label(beer_dataset, 5, seed=3).pairs)
        assert pairs == expected

    def test_deterministic(self, beer_dataset):
        first = select_pairs(beer_dataset, per_label=4, seed=1)
        second = select_pairs(beer_dataset, per_label=4, seed=1)
        assert [p.pair_id for p in first] == [p.pair_id for p in second]


class TestCrossPair:
    def test_combines_sides_and_encodes_pair_id(self, beer_dataset):
        pair = _cross_pair(beer_dataset, 3, 42)
        assert pair.left == dict(beer_dataset.pairs[3].left)
        assert pair.right == dict(beer_dataset.pairs[42].right)
        assert pair.label == 0
        assert pair.pair_id == 3 * len(beer_dataset) + 42

    def test_out_of_range_rejected(self, beer_dataset):
        with pytest.raises(DatasetError):
            _cross_pair(beer_dataset, len(beer_dataset), 0)
        with pytest.raises(DatasetError):
            _cross_pair(beer_dataset, 0, -1)


class TestDatasetSource:
    def test_pairs_and_describe(self, beer_dataset):
        source = DatasetSource(beer_dataset, per_label=4, seed=2)
        assert source.pairs() == select_pairs(beer_dataset, 4, seed=2)
        assert source.describe() == {
            "kind": "rows",
            "dataset": beer_dataset.name,
            "n_rows": len(beer_dataset),
            "per_label": 4,
            "seed": 2,
        }


class TestBlockedSource:
    def test_candidates_are_deterministic_cross_pairs(self, beer_dataset):
        source = BlockedSource(beer_dataset, min_shared_tokens=2)
        first = source.pairs()
        second = source.pairs()
        assert [p.pair_id for p in first] == [p.pair_id for p in second]
        assert first, "blocker should surface at least one candidate"
        n = len(beer_dataset)
        for pair in first[:10]:
            left_row, right_row = divmod(pair.pair_id, n)
            assert pair.left == dict(beer_dataset.pairs[left_row].left)
            assert pair.right == dict(beer_dataset.pairs[right_row].right)

    def test_describe_names_blocker_parameters(self, beer_dataset):
        source = BlockedSource(
            beer_dataset, min_shared_tokens=2, max_token_frequency=0.5
        )
        described = source.describe()
        assert described["kind"] == "block"
        assert described["min_shared_tokens"] == 2
        assert described["max_token_frequency"] == 0.5


class TestPairListSource:
    def test_row_and_cross_lines(self, beer_dataset, tmp_path):
        listing = tmp_path / "pairs.txt"
        listing.write_text("# comment\n2\n\n0,5\n", encoding="utf-8")
        source = PairListSource(beer_dataset, listing)
        pairs = source.pairs()
        assert len(pairs) == 2
        assert pairs[0] is beer_dataset.pairs[2]
        assert pairs[1].pair_id == 0 * len(beer_dataset) + 5

    def test_bom_tolerated(self, beer_dataset, tmp_path):
        listing = tmp_path / "pairs.txt"
        listing.write_bytes(b"\xef\xbb\xbf1\n")
        assert PairListSource(beer_dataset, listing).pairs() == [
            beer_dataset.pairs[1]
        ]

    def test_malformed_line_names_line_number(self, beer_dataset, tmp_path):
        listing = tmp_path / "pairs.txt"
        listing.write_text("0\nnot-a-number\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="line 1"):
            PairListSource(beer_dataset, listing).pairs()

    def test_out_of_range_row_rejected(self, beer_dataset, tmp_path):
        listing = tmp_path / "pairs.txt"
        listing.write_text(f"{len(beer_dataset)}\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="out of"):
            PairListSource(beer_dataset, listing).pairs()

    def test_missing_file_rejected(self, beer_dataset, tmp_path):
        source = PairListSource(beer_dataset, tmp_path / "absent.txt")
        with pytest.raises(DatasetError, match="does not exist"):
            source.pairs()

    def test_describe_names_file(self, beer_dataset, tmp_path):
        listing = tmp_path / "pairs.txt"
        listing.write_text("0\n", encoding="utf-8")
        assert PairListSource(beer_dataset, listing).describe()["path"] == (
            "pairs.txt"
        )
