"""Tests for the repro-em command line."""

import pytest

from repro.cli import main


class TestDatasets:
    def test_nominal_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "S-DG" in out

    def test_materialize_and_export(self, tmp_path, capsys):
        code = main(
            [
                "datasets",
                "--materialize",
                "--size-cap",
                "40",
                "--export-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Measured size" in out
        assert (tmp_path / "S-BR.csv").exists()
        assert len(list(tmp_path.glob("*.csv"))) == 12


class TestTrain:
    def test_logistic(self, capsys):
        assert main(["train", "--dataset", "S-BR", "--size-cap", "150"]) == 0
        out = capsys.readouterr().out
        assert "f1:" in out
        assert "attribute ranking:" in out

    def test_rules_matcher_describes_itself(self, capsys):
        code = main(
            ["train", "--dataset", "S-BR", "--size-cap", "150", "--matcher", "rules"]
        )
        assert code == 0
        assert "jaccard(" in capsys.readouterr().out


class TestExplain:
    def test_explains_a_record(self, capsys):
        code = main(
            [
                "explain",
                "--dataset",
                "S-BR",
                "--size-cap",
                "150",
                "--record",
                "0",
                "--samples",
                "32",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "model match probability" in out
        assert "landmark=left" in out

    def test_with_baselines(self, capsys):
        code = main(
            [
                "explain",
                "--dataset",
                "S-BR",
                "--size-cap",
                "150",
                "--samples",
                "32",
                "--baselines",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mojito_drop" in out
        assert "mojito_copy" in out

    def test_record_out_of_range(self, capsys):
        code = main(
            ["explain", "--dataset", "S-BR", "--size-cap", "150", "--record", "9999"]
        )
        assert code == 2


class TestExperiment:
    def test_bench_preset_single_dataset(self, tmp_path, capsys):
        output = tmp_path / "tables.txt"
        code = main(
            [
                "experiment",
                "--preset",
                "bench",
                "--datasets",
                "S-BR",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "Table 2" in text
        assert "Table 4" in text


class TestSummarize:
    def test_global_summary(self, capsys):
        code = main(
            [
                "summarize",
                "--dataset",
                "S-BR",
                "--size-cap",
                "150",
                "--per-label",
                "3",
                "--samples",
                "32",
            ]
        )
        assert code == 0
        assert "global summary" in capsys.readouterr().out


class TestCounterfactual:
    def test_flips_a_record(self, capsys):
        code = main(
            [
                "counterfactual",
                "--dataset",
                "S-BR",
                "--size-cap",
                "150",
                "--record",
                "0",
                "--samples",
                "48",
            ]
        )
        out = capsys.readouterr().out
        assert "counterfactual:" in out
        assert code in (0, 1)  # 1 = did not flip within budget


class TestReport:
    def test_html_report(self, tmp_path, capsys):
        output = tmp_path / "explanation.html"
        code = main(
            [
                "report",
                "--dataset",
                "S-BR",
                "--size-cap",
                "150",
                "--samples",
                "32",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_markdown_report(self, tmp_path):
        output = tmp_path / "explanation.md"
        code = main(
            [
                "report",
                "--dataset",
                "S-BR",
                "--size-cap",
                "150",
                "--samples",
                "32",
                "--format",
                "markdown",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert "Landmark:" in output.read_text(encoding="utf-8")


class TestProfile:
    def test_profile_output(self, capsys):
        assert main(["profile", "--dataset", "S-BR", "--size-cap", "150"]) == 0
        out = capsys.readouterr().out
        assert "record overlap" in out
        assert "attributes by class separation" in out


class TestCompare:
    def test_compare_two_runs(self, tmp_path, capsys):
        from repro.config import ExperimentConfig
        from repro.evaluation.persistence import save_result
        from repro.evaluation.runner import ExperimentRunner

        config = ExperimentConfig(
            name="a", per_label=2, lime_samples=16, size_cap=120,
            methods=("single",),
        )
        result = ExperimentRunner(config).run(["S-BR"])
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_result(result, first)
        save_result(result, second)
        assert main(["compare", str(first), str(second)]) == 0
        out = capsys.readouterr().out
        assert "run comparison" in out
        assert "0.000" in out  # identical runs → zero deltas


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_dataset_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "NOPE"])


class TestExplainerChoice:
    def test_shap_coupling_via_cli(self, capsys):
        code = main(
            [
                "explain",
                "--dataset",
                "S-BR",
                "--size-cap",
                "150",
                "--samples",
                "32",
                "--explainer",
                "shap",
            ]
        )
        assert code == 0
        assert "landmark=left" in capsys.readouterr().out


class TestSelftest:
    def test_selftest_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "selftest passed" in out
        assert "FAIL" not in out


class TestParallelExperiment:
    def test_jobs_flag_produces_same_tables(self, tmp_path):
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        base = [
            "experiment", "--preset", "bench", "--datasets", "S-BR", "S-FZ",
        ]
        assert main([*base, "--output", str(serial)]) == 0
        assert main([*base, "--jobs", "2", "--output", str(parallel)]) == 0
        assert serial.read_text() == parallel.read_text()


class TestModelDir:
    def test_artifact_saved_then_reused(self, tmp_path, capsys):
        base = [
            "train", "--dataset", "S-BR", "--size-cap", "150",
            "--model-dir", str(tmp_path),
        ]
        assert main(base) == 0
        artifacts = list(tmp_path.glob("*.pkl"))
        assert len(artifacts) == 1
        assert "logistic-S-BR-seed0-cap150" in artifacts[0].name
        # Second run loads the artifact instead of writing a new one.
        before = artifacts[0].stat().st_mtime_ns
        assert main(base) == 0
        assert artifacts[0].stat().st_mtime_ns == before

    def test_corrupt_artifact_retrained(self, tmp_path, capsys):
        base = [
            "explain", "--dataset", "S-BR", "--size-cap", "150",
            "--samples", "32", "--model-dir", str(tmp_path),
        ]
        assert main(base) == 0
        artifact = next(tmp_path.glob("*.pkl"))
        artifact.write_bytes(b"not a pickle")
        assert main(base) == 0  # degrades to retraining, not an error
        out = capsys.readouterr().out
        assert "landmark=left" in out


class TestServe:
    def test_stdio_round_trip(self, tmp_path, capsys, monkeypatch):
        import io
        import json

        lines = "\n".join(
            [
                json.dumps({"record": 0, "method": "single", "samples": 32}),
                json.dumps({"record": 0, "method": "single", "samples": 32}),
                json.dumps({"op": "stats"}),
                json.dumps({"op": "shutdown"}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        code = main(
            [
                "serve", "--dataset", "S-BR", "--size-cap", "150",
                "--store-dir", str(tmp_path / "store"),
                "--model-dir", str(tmp_path / "models"),
            ]
        )
        assert code == 0
        responses = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        assert len(responses) == 4
        first, second, stats, shutdown = responses
        assert first["ok"] and second["ok"]
        # Bit-identical duplicate answered from the store.
        assert second["result"] == first["result"]
        assert stats["stats"]["service"]["store_hits"] == 1
        assert shutdown["shutdown"]
        assert (tmp_path / "store" / "service_stats.json").exists()


class TestPrecomputeCommand:
    def test_warm_and_resume(self, tmp_path, capsys):
        base = [
            "precompute", "--dataset", "S-BR", "--size-cap", "150",
            "--per-label", "2", "--samples", "32",
            "--store-dir", str(tmp_path / "store"),
            "--model-dir", str(tmp_path / "models"),
        ]
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "4 submitted" in out
        assert main([*base, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "4 skipped" in out
        assert "0 submitted" in out

    def test_stats_json_written(self, tmp_path):
        import json

        store_dir = tmp_path / "store"
        code = main(
            [
                "precompute", "--dataset", "S-BR", "--size-cap", "150",
                "--per-label", "1", "--samples", "32",
                "--store-dir", str(store_dir),
            ]
        )
        assert code == 0
        payload = json.loads((store_dir / "service_stats.json").read_text())
        assert payload["service"]["computed"] == 2
        assert payload["store"]["puts"] == 2


class TestBulkCommand:
    def test_bulk_run_report_and_warm_dedup(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        base = [
            "bulk", "--dataset", "S-BR", "--size-cap", "150",
            "--per-label", "2", "--samples", "16", "--chunk-size", "2",
            "--store-dir", str(tmp_path / "store"),
            "--model-dir", str(tmp_path / "models"),
            "--report", str(report_path),
        ]
        assert main([*base, "--run-dir", str(tmp_path / "run1")]) == 0
        out = capsys.readouterr().out
        assert "bulk job: 4 pairs in 2 chunks" in out
        assert "4 computed, 0 dedup hits" in out
        assert "global summary over 8 explanations" in out
        first_report = report_path.read_bytes()
        assert (tmp_path / "run1" / "bulk.jsonl").exists()
        assert (tmp_path / "run1" / "stats.json").exists()
        assert (tmp_path / "run1" / "metrics.json").exists()

        # Warm store: everything dedups, same report bytes.
        assert main([*base, "--run-dir", str(tmp_path / "run2")]) == 0
        out = capsys.readouterr().out
        assert "0 computed, 4 dedup hits" in out
        assert report_path.read_bytes() == first_report

    def test_bulk_resume_requires_run_dir(self, capsys):
        assert main(["bulk", "--resume"]) == 2

    def test_bulk_from_csv_ledgers_bad_rows(self, tmp_path, capsys):
        csv_path = tmp_path / "pairs.csv"
        csv_path.write_text(
            "pair_id,label,left_name,right_name\n"
            "0,1,ipa beer,ipa beer\n"
            "1,0,stout,lager\n"
            "2,WAT,pilsner,pilsner\n"
            "3,1,porter ale,porter ale\n"
            "4,0,saison,kolsch\n",
            encoding="utf-8",
        )
        code = main(
            [
                "bulk", "--input", str(csv_path), "--samples", "16",
                "--chunk-size", "2",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "skipped 1 ill-formed row(s)" in captured.err
        assert "bulk job: 4 pairs" in captured.out
        assert "failure ledger: 1 entries" in captured.out

    def test_bulk_pairs_file(self, tmp_path, capsys):
        listing = tmp_path / "pairs.txt"
        listing.write_text("0\n1\n", encoding="utf-8")
        code = main(
            [
                "bulk", "--dataset", "S-BR", "--size-cap", "150",
                "--samples", "16", "--chunk-size", "2",
                "--pairs-file", str(listing),
            ]
        )
        assert code == 0
        assert "bulk job: 2 pairs in 1 chunks" in capsys.readouterr().out
