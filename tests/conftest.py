"""Shared fixtures: a small benchmark dataset and a trained matcher.

Session-scoped so the (comparatively expensive) dataset generation and
IRLS fit run once for the whole suite.
"""

from __future__ import annotations

import pytest

from repro.data.records import EMDataset, MATCH, NON_MATCH, RecordPair
from repro.data.schema import PairSchema
from repro.data.synthetic.magellan import load_dataset
from repro.matchers.logistic import LogisticRegressionMatcher


@pytest.fixture(scope="session")
def beer_dataset() -> EMDataset:
    """A 300-pair slice of the S-BR stand-in."""
    return load_dataset("S-BR", seed=0, size_cap=300)


@pytest.fixture(scope="session")
def music_dataset() -> EMDataset:
    """A 300-pair slice of the S-IA stand-in (wider schema)."""
    return load_dataset("S-IA", seed=0, size_cap=300)


@pytest.fixture(scope="session")
def beer_matcher(beer_dataset: EMDataset) -> LogisticRegressionMatcher:
    """A logistic-regression matcher trained on the beer dataset."""
    return LogisticRegressionMatcher().fit(beer_dataset)


@pytest.fixture(scope="session")
def match_pair(beer_dataset: EMDataset) -> RecordPair:
    """The first matching pair of the beer dataset."""
    return next(pair for pair in beer_dataset if pair.label == MATCH)


@pytest.fixture(scope="session")
def non_match_pair(beer_dataset: EMDataset) -> RecordPair:
    """The first non-matching pair of the beer dataset."""
    return next(pair for pair in beer_dataset if pair.label == NON_MATCH)


@pytest.fixture()
def toy_schema() -> PairSchema:
    """A two-attribute schema for hand-built records."""
    return PairSchema(("name", "price"))


@pytest.fixture()
def toy_pair(toy_schema: PairSchema) -> RecordPair:
    """The paper's Figure 1 flavour: camera vs. leather case."""
    return RecordPair(
        schema=toy_schema,
        left={"name": "sony digital camera dslra200w", "price": "849.99"},
        right={"name": "nikon leather case 5811", "price": "7.99"},
        label=NON_MATCH,
        pair_id=0,
    )
