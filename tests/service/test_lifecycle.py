"""Tests for the request lifecycle: shedding, cancellation, deadlines, drain.

These exercise the scheduling layer only — every path either serves the
bit-identical payload or fails with a typed lifecycle error; no partial
result ever lands in the store.
"""

import threading
import time

import pytest

from repro.config import ServiceConfig
from repro.exceptions import (
    DeadlineExceededError,
    RequestCancelledError,
    ServiceOverloadedError,
    error_code,
)
from repro.service.request import ExplainRequest
from repro.service.service import ExplanationService
from repro.service.store import ExplanationStore

SAMPLES = 32


class GatedMatcher:
    """Delegates to a fitted matcher, but blocks until released."""

    def __init__(self, matcher):
        self.matcher = matcher
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def predict_proba(self, pairs):
        self.calls += 1
        self.entered.set()
        if not self.release.wait(timeout=30):
            raise RuntimeError("gate never released")
        return self.matcher.predict_proba(pairs)

    def predict_one(self, pair):
        return float(self.predict_proba([pair])[0])


def request_for(pair, seed=0, **kwargs):
    return ExplainRequest(
        pair=pair, method="single", samples=SAMPLES, seed=seed, **kwargs
    )


class TestShedding:
    def test_depth_threshold_sheds_with_retry_after(
        self, beer_matcher, non_match_pair
    ):
        gated = GatedMatcher(beer_matcher)
        service = ExplanationService(
            gated,
            config=ServiceConfig(n_workers=1, shed_threshold=1),
        )
        try:
            first = service.submit(request_for(non_match_pair, seed=0))
            assert gated.entered.wait(timeout=10)
            # Worker busy on seed=0; seed=1 queues (depth 0 -> admitted),
            # seed=2 then sees depth 1 >= threshold 1 and is shed.
            second = service.submit(request_for(non_match_pair, seed=1))
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.submit(request_for(non_match_pair, seed=2))
            assert error_code(excinfo.value) == "overloaded"
            assert excinfo.value.retry_after > 0
            assert service.overloaded
            gated.release.set()
            assert first.result(timeout=30) and second.result(timeout=30)
            stats = service.stats
            assert stats.shed == 1
            assert stats.requests == 3
            assert stats.computed == 2
        finally:
            gated.release.set()
            service.close()

    def test_wait_estimate_sheds_when_ema_is_warm(
        self, beer_matcher, non_match_pair
    ):
        gated = GatedMatcher(beer_matcher)
        service = ExplanationService(
            gated,
            config=ServiceConfig(n_workers=1, max_queue_wait=1e-6),
        )
        try:
            # A cold EMA estimates zero wait: the first request is
            # always admitted, and completing it warms the estimate.
            gated.release.set()
            service.explain(request_for(non_match_pair, seed=0), timeout=30)
            assert not service.overloaded  # idle: nothing pending
            gated.release.clear()
            gated.entered.clear()
            blocked = service.submit(request_for(non_match_pair, seed=1))
            assert gated.entered.wait(timeout=10)
            # One pending ticket x a warm EMA exceeds the 1us budget.
            depth, estimated = service.queue_estimate()
            assert estimated > 1e-6
            with pytest.raises(ServiceOverloadedError):
                service.submit(request_for(non_match_pair, seed=2))
            gated.release.set()
            blocked.result(timeout=30)
            assert service.stats.shed == 1
        finally:
            gated.release.set()
            service.close()

    def test_store_hits_and_coalesces_never_shed(
        self, beer_matcher, non_match_pair, tmp_path
    ):
        gated = GatedMatcher(beer_matcher)
        store = ExplanationStore(tmp_path / "store")
        service = ExplanationService(
            gated,
            store=store,
            config=ServiceConfig(n_workers=1, shed_threshold=1),
        )
        try:
            gated.release.set()
            warm = request_for(non_match_pair, seed=0)
            payload = service.explain(warm, timeout=30)
            gated.release.clear()
            gated.entered.clear()
            inflight = request_for(non_match_pair, seed=1)
            first = service.submit(inflight)
            assert gated.entered.wait(timeout=10)
            service.submit(request_for(non_match_pair, seed=2))  # fills queue
            # Saturated: a fresh computation would shed...
            with pytest.raises(ServiceOverloadedError):
                service.submit(request_for(non_match_pair, seed=3))
            # ...but a store hit answers immediately and a duplicate of
            # the in-flight request coalesces onto the same future.
            assert service.submit(warm).result(timeout=1) == payload
            assert service.submit(inflight) is first
            gated.release.set()
            stats = service.stats
            assert stats.store_hits == 1
            assert stats.coalesced == 1
            assert stats.shed == 1
        finally:
            gated.release.set()
            service.close()
            store.close()


class TestCancellation:
    def test_explain_timeout_cancels_sole_waiter(
        self, beer_matcher, non_match_pair
    ):
        gated = GatedMatcher(beer_matcher)
        service = ExplanationService(gated, config=ServiceConfig(n_workers=1))
        try:
            blocker = service.submit(request_for(non_match_pair, seed=0))
            assert gated.entered.wait(timeout=10)
            abandoned = request_for(non_match_pair, seed=1)
            with pytest.raises(TimeoutError):
                service.explain(abandoned, timeout=0.05)
            gated.release.set()
            blocker.result(timeout=30)
            # The queued ticket is skipped, never computed: only the
            # blocker's explanation touched the matcher, and the drop is
            # accounted as a cancellation.
            deadline = time.monotonic() + 10
            while (
                service.stats.cancelled == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            calls_for_blocker = gated.calls
            stats = service.stats
            assert stats.computed == 1
            assert stats.cancelled == 1
            assert gated.calls == calls_for_blocker  # nothing more ran
        finally:
            gated.release.set()
            service.close()

    def test_coalesced_waiter_survives_another_waiters_cancel(
        self, beer_matcher, non_match_pair
    ):
        gated = GatedMatcher(beer_matcher)
        service = ExplanationService(gated, config=ServiceConfig(n_workers=1))
        try:
            request = request_for(non_match_pair, seed=0)
            first = service.submit(request)
            assert gated.entered.wait(timeout=10)
            second = service.submit(request)  # coalesced: waiters == 2
            assert second is first
            assert service.cancel(request) is False  # one waiter remains
            gated.release.set()
            assert first.result(timeout=30)["duals"]
            assert service.stats.cancelled == 0
        finally:
            gated.release.set()
            service.close()

    def test_last_waiter_leaving_cancels(self, beer_matcher, non_match_pair):
        gated = GatedMatcher(beer_matcher)
        service = ExplanationService(gated, config=ServiceConfig(n_workers=1))
        try:
            service.submit(request_for(non_match_pair, seed=0))
            assert gated.entered.wait(timeout=10)
            queued = request_for(non_match_pair, seed=1)
            service.submit(queued)
            service.submit(queued)  # waiters == 2
            assert service.cancel(queued) is False
            assert service.cancel(queued) is True  # last one out
            assert service.cancel(queued) is False  # already detached
        finally:
            gated.release.set()
            service.close()


class TestDeadlines:
    def test_queued_past_deadline_fails_without_store_entry(
        self, beer_matcher, non_match_pair, tmp_path
    ):
        gated = GatedMatcher(beer_matcher)
        store = ExplanationStore(tmp_path / "store")
        service = ExplanationService(
            gated, store=store, config=ServiceConfig(n_workers=1)
        )
        try:
            blocker = service.submit(request_for(non_match_pair, seed=0))
            assert gated.entered.wait(timeout=10)
            doomed = request_for(
                non_match_pair, seed=1, deadline_seconds=0.01
            )
            future = service.submit(doomed)
            time.sleep(0.05)  # let the 10ms budget lapse while queued
            gated.release.set()
            blocker.result(timeout=30)
            with pytest.raises(DeadlineExceededError) as excinfo:
                future.result(timeout=30)
            assert error_code(excinfo.value) == "deadline_exceeded"
            assert service.stats.deadline_exceeded == 1
            # Nothing was stored: re-submitting computes from scratch.
            retried = request_for(non_match_pair, seed=1)
            assert service.explain(retried, timeout=30)["duals"]
            assert service.stats.store_hits == 0
        finally:
            gated.release.set()
            service.close()
            store.close()

    def test_default_deadline_applies_to_bare_requests(
        self, beer_matcher, non_match_pair
    ):
        gated = GatedMatcher(beer_matcher)
        service = ExplanationService(
            gated,
            config=ServiceConfig(n_workers=1, default_deadline=0.01),
        )
        try:
            blocker = service.submit(
                request_for(non_match_pair, seed=0, deadline_seconds=60.0)
            )
            assert gated.entered.wait(timeout=10)
            future = service.submit(request_for(non_match_pair, seed=1))
            time.sleep(0.05)
            gated.release.set()
            blocker.result(timeout=30)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
        finally:
            gated.release.set()
            service.close()


class TestDrain:
    def test_drain_close_finishes_queued_work(
        self, beer_matcher, non_match_pair
    ):
        gated = GatedMatcher(beer_matcher)
        service = ExplanationService(gated, config=ServiceConfig(n_workers=1))
        first = service.submit(request_for(non_match_pair, seed=0))
        assert gated.entered.wait(timeout=10)
        second = service.submit(request_for(non_match_pair, seed=1))
        threading.Timer(0.1, gated.release.set).start()
        summary = service.close(drain=True, drain_timeout=30)
        assert summary["pending_at_close"] == 2
        assert summary["cancelled"] == 0
        assert summary["drained"] is True
        assert first.result(timeout=1) and second.result(timeout=1)
        with pytest.raises(Exception, match="closed"):
            service.submit(request_for(non_match_pair, seed=2))

    def test_drain_budget_expiry_cancels_stragglers(
        self, beer_matcher, non_match_pair
    ):
        gated = GatedMatcher(beer_matcher)
        service = ExplanationService(gated, config=ServiceConfig(n_workers=1))
        computing = service.submit(request_for(non_match_pair, seed=0))
        assert gated.entered.wait(timeout=10)
        # A tiny budget expires while the gate still blocks: close()
        # cancels the in-flight ticket and the worker aborts at its next
        # cooperative poll once released.
        threading.Timer(0.3, gated.release.set).start()
        summary = service.close(drain=True, drain_timeout=0.05)
        assert summary["pending_at_close"] == 1
        assert summary["cancelled"] == 1
        assert summary["drained"] is False
        with pytest.raises(RequestCancelledError):
            computing.result(timeout=1)

    def test_immediate_close_cancels_queued_work(
        self, beer_matcher, non_match_pair
    ):
        gated = GatedMatcher(beer_matcher)
        service = ExplanationService(gated, config=ServiceConfig(n_workers=1))
        service.submit(request_for(non_match_pair, seed=0))
        assert gated.entered.wait(timeout=10)
        queued = service.submit(request_for(non_match_pair, seed=1))
        gated.release.set()
        summary = service.close(drain=False)
        assert summary["pending_at_close"] == 2
        assert summary["cancelled"] == 2
        with pytest.raises(RequestCancelledError):
            queued.result(timeout=1)

    def test_close_is_idempotent(self, beer_matcher, non_match_pair):
        service = ExplanationService(
            beer_matcher, config=ServiceConfig(n_workers=1)
        )
        service.explain(request_for(non_match_pair), timeout=30)
        first = service.close()
        again = service.close(drain=False, drain_timeout=0.0)
        assert again == first


class TestAccounting:
    def test_lifecycle_counters_close_the_identity(
        self, beer_matcher, non_match_pair, tmp_path
    ):
        """store_hits + coalesced + computed + failures == requests."""
        gated = GatedMatcher(beer_matcher)
        store = ExplanationStore(tmp_path / "store")
        service = ExplanationService(
            gated,
            store=store,
            config=ServiceConfig(n_workers=1, shed_threshold=2),
        )
        try:
            gated.release.set()
            warm = request_for(non_match_pair, seed=0)
            service.explain(warm, timeout=30)  # computed
            service.explain(warm, timeout=30)  # store hit
            gated.release.clear()
            gated.entered.clear()
            inflight = request_for(non_match_pair, seed=1)
            blocked = service.submit(inflight)  # computed (later)
            assert gated.entered.wait(timeout=10)
            service.submit(inflight)  # coalesced
            doomed = request_for(
                non_match_pair, seed=2, deadline_seconds=0.01
            )
            expired = service.submit(doomed)  # deadline_exceeded
            abandoned = request_for(non_match_pair, seed=3)
            dropped = service.submit(abandoned)  # cancelled
            service.cancel(abandoned)
            with pytest.raises(ServiceOverloadedError):
                service.submit(request_for(non_match_pair, seed=4))  # shed
            time.sleep(0.05)
            gated.release.set()
            blocked.result(timeout=30)
            with pytest.raises(DeadlineExceededError):
                expired.result(timeout=30)
            with pytest.raises(RequestCancelledError):
                dropped.result(timeout=30)
            stats = service.stats
            assert stats.requests == 7
            assert stats.store_hits == 1
            assert stats.coalesced == 1
            assert stats.computed == 2
            assert stats.shed == 1
            assert stats.cancelled == 1
            assert stats.deadline_exceeded == 1
            accounted = (
                stats.store_hits
                + stats.coalesced
                + stats.computed
                + stats.shed
                + stats.cancelled
                + stats.deadline_exceeded
                + stats.errors
            )
            assert accounted == stats.requests
            assert "lifecycle:" in stats.summary()
        finally:
            gated.release.set()
            service.close()
            store.close()
