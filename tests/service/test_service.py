"""Tests for the explanation service.

The service's contract mirrors the prediction engine's: **scheduling
never changes results** (a served explanation is bit-identical to the
direct core API) and the observability counters account for every
request (hit, coalesce or compute — never two of them).
"""

import threading

import pytest

from repro.config import ServiceConfig
from repro.core.landmark import LandmarkExplainer
from repro.core.serialize import dual_digest, dual_to_dict
from repro.exceptions import ReproError, ServiceError
from repro.explainers.lime_text import LimeConfig
from repro.service.request import ExplainRequest
from repro.service.service import (
    RESULT_FORMAT_VERSION,
    ExplanationService,
    duals_from_result,
)
from repro.service.store import ExplanationStore

SAMPLES = 32


class GatedMatcher:
    """Delegates to a fitted matcher, but blocks until released.

    ``entered`` fires when the first prediction reaches the matcher, so a
    test can hold a computation in-flight while it submits duplicates.
    """

    def __init__(self, matcher):
        self.matcher = matcher
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def predict_proba(self, pairs):
        self.calls += 1
        self.entered.set()
        if not self.release.wait(timeout=30):
            raise RuntimeError("gate never released")
        return self.matcher.predict_proba(pairs)

    def predict_one(self, pair):
        return float(self.predict_proba([pair])[0])


class TestBitIdentity:
    def test_service_path_equals_direct_core_api(
        self, beer_matcher, non_match_pair, tmp_path
    ):
        request = ExplainRequest(
            pair=non_match_pair, method="both", samples=SAMPLES, seed=0
        )
        store = ExplanationStore(tmp_path / "store")
        with ExplanationService(beer_matcher, store=store) as service:
            payload = service.explain(request)

        direct = LandmarkExplainer(
            beer_matcher,
            lime_config=LimeConfig(n_samples=SAMPLES, seed=0),
            seed=0,
        )
        for generation in ("single", "double"):
            dual = direct.explain(non_match_pair, generation=generation)
            assert payload["duals"][generation] == dual_to_dict(dual)
            assert payload["digests"][generation] == dual_digest(dual)
        store.close()

    def test_store_round_trip_is_bit_identical(
        self, beer_matcher, match_pair, tmp_path
    ):
        request = ExplainRequest(
            pair=match_pair, method="single", samples=SAMPLES
        )
        store = ExplanationStore(tmp_path / "store")
        with ExplanationService(beer_matcher, store=store) as service:
            cold = service.explain(request)
        store.close()
        # A second service over the same store answers from disk.
        reopened = ExplanationStore(tmp_path / "store")
        with ExplanationService(beer_matcher, store=reopened) as service:
            warm = service.explain(request)
            assert warm == cold
            assert service.stats.store_hits == 1
            assert service.stats.computed == 0
        reopened.close()

    def test_duals_from_result(self, beer_matcher, match_pair):
        request = ExplainRequest(
            pair=match_pair, method="single", samples=SAMPLES
        )
        with ExplanationService(beer_matcher) as service:
            payload = service.explain(request)
        duals = duals_from_result(payload)
        assert set(duals) == {"single"}
        assert duals["single"].generation == "single"

    def test_duals_from_result_rejects_unknown_version(self):
        with pytest.raises(ServiceError):
            duals_from_result(
                {"format_version": RESULT_FORMAT_VERSION + 1, "duals": {}}
            )


class TestCoalescing:
    def test_concurrent_duplicates_compute_once(self, beer_matcher, match_pair):
        gated = GatedMatcher(beer_matcher)
        request = ExplainRequest(
            pair=match_pair, method="single", samples=SAMPLES
        )
        with ExplanationService(
            gated, config=ServiceConfig(n_workers=2)
        ) as service:
            first = service.submit(request)
            assert gated.entered.wait(timeout=30)
            # The computation is now held inside the matcher; every
            # duplicate submitted here must coalesce onto `first`.
            duplicates = [service.submit(request) for _ in range(5)]
            assert all(future is first for future in duplicates)
            assert service.stats.coalesced == 5
            gated.release.set()
            results = [f.result(timeout=30) for f in (first, *duplicates)]
        assert service.stats.computed == 1
        assert all(result == results[0] for result in results)

    def test_coalescing_can_be_disabled(self, beer_matcher, match_pair):
        gated = GatedMatcher(beer_matcher)
        request = ExplainRequest(
            pair=match_pair, method="single", samples=SAMPLES
        )
        with ExplanationService(
            gated, config=ServiceConfig(n_workers=2, coalesce=False)
        ) as service:
            first = service.submit(request)
            assert gated.entered.wait(timeout=30)
            second = service.submit(request)
            assert second is not first
            gated.release.set()
            assert first.result(timeout=30) == second.result(timeout=30)
        assert service.stats.computed == 2

    def test_distinct_requests_do_not_coalesce(
        self, beer_matcher, match_pair, non_match_pair
    ):
        with ExplanationService(beer_matcher) as service:
            a = service.explain(
                ExplainRequest(pair=match_pair, method="single", samples=SAMPLES)
            )
            b = service.explain(
                ExplainRequest(
                    pair=non_match_pair, method="single", samples=SAMPLES
                )
            )
        assert a["key"] != b["key"]
        assert service.stats.computed == 2
        assert service.stats.coalesced == 0


class TestBackpressure:
    def test_full_queue_rejects_nonblocking_submit(
        self, beer_matcher, beer_dataset
    ):
        gated = GatedMatcher(beer_matcher)
        with ExplanationService(
            gated, config=ServiceConfig(n_workers=1, queue_size=1)
        ) as service:
            held = service.submit(
                ExplainRequest(
                    pair=beer_dataset[0], method="single", samples=SAMPLES
                )
            )
            assert gated.entered.wait(timeout=30)
            queued = service.submit(
                ExplainRequest(
                    pair=beer_dataset[1], method="single", samples=SAMPLES
                )
            )
            with pytest.raises(ServiceError):
                service.submit(
                    ExplainRequest(
                        pair=beer_dataset[2], method="single", samples=SAMPLES
                    ),
                    block=False,
                )
            assert service.stats.rejected == 1
            gated.release.set()
            held.result(timeout=30)
            queued.result(timeout=30)

    def test_submit_after_close(self, beer_matcher, match_pair):
        service = ExplanationService(beer_matcher)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(
                ExplainRequest(pair=match_pair, samples=SAMPLES)
            )


class TestErrors:
    class ExplodingMatcher:
        def predict_proba(self, pairs):
            raise RuntimeError("matcher crashed")

        def predict_one(self, pair):
            raise RuntimeError("matcher crashed")

    def test_compute_error_reaches_every_waiter(self, match_pair):
        with ExplanationService(self.ExplodingMatcher()) as service:
            future = service.submit(
                ExplainRequest(pair=match_pair, method="single", samples=SAMPLES)
            )
            with pytest.raises(Exception):
                future.result(timeout=30)
        assert service.stats.errors == 1
        assert service.stats.computed == 0

    def test_error_is_not_stored(self, match_pair, tmp_path):
        store = ExplanationStore(tmp_path / "store")
        with ExplanationService(self.ExplodingMatcher(), store=store) as service:
            with pytest.raises(Exception):
                service.explain(
                    ExplainRequest(
                        pair=match_pair, method="single", samples=SAMPLES
                    )
                )
        assert len(store) == 0
        store.close()

    def test_failed_key_can_be_resubmitted(self, beer_matcher, match_pair):
        class FlakyOnce:
            def __init__(self, matcher):
                self.matcher = matcher
                self.calls = 0

            def predict_proba(self, pairs):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("transient")
                return self.matcher.predict_proba(pairs)

            def predict_one(self, pair):
                return float(self.predict_proba([pair])[0])

        flaky = FlakyOnce(beer_matcher)
        request = ExplainRequest(
            pair=match_pair, method="single", samples=SAMPLES
        )
        with ExplanationService(
            flaky, config=ServiceConfig(n_workers=1)
        ) as service:
            with pytest.raises(Exception):
                service.explain(request)
            # The failed key left no in-flight residue: retry succeeds.
            payload = service.explain(request)
            assert payload["pair_id"] == match_pair.pair_id


class TestStoreIntegration:
    def test_corrupt_store_entry_recomputed(
        self, beer_matcher, match_pair, tmp_path
    ):
        import sqlite3

        request = ExplainRequest(
            pair=match_pair, method="single", samples=SAMPLES
        )
        store = ExplanationStore(tmp_path / "store")
        with ExplanationService(beer_matcher, store=store) as service:
            cold = service.explain(request)
            with sqlite3.connect(str(store.path)) as conn:
                conn.execute("UPDATE explanations SET payload = 'garbage'")
                conn.commit()
            recomputed = service.explain(request)
            assert recomputed == cold
            assert store.stats.corruptions == 1
            assert service.stats.computed == 2
        store.close()

    def test_stats_payload_shape(self, beer_matcher, match_pair, tmp_path):
        store = ExplanationStore(tmp_path / "store")
        with ExplanationService(beer_matcher, store=store) as service:
            service.explain(
                ExplainRequest(pair=match_pair, method="single", samples=SAMPLES)
            )
            payload = service.stats_payload()
        assert payload["matcher_fingerprint"] == service.fingerprint
        assert payload["service"]["computed"] == 1
        assert payload["store"]["puts"] == 1
        assert payload["engine"]["requested"] > 0
        assert "latency_mean" in payload["service"]
        store.close()

    def test_storeless_service_works(self, beer_matcher, match_pair):
        request = ExplainRequest(
            pair=match_pair, method="single", samples=SAMPLES
        )
        with ExplanationService(beer_matcher) as service:
            first = service.explain(request)
            second = service.explain(request)
        assert first == second
        assert service.stats_payload()["store"] is None
        # Without a store, a completed request is recomputed...
        assert service.stats.computed == 2
        # ...but the shared engine's cache still spares the matcher calls.
        assert service.engine.stats.cache_hits > 0


class TestAccounting:
    def test_every_request_is_accounted_once(
        self, beer_matcher, beer_dataset, tmp_path
    ):
        store = ExplanationStore(tmp_path / "store")
        with ExplanationService(beer_matcher, store=store) as service:
            requests = [
                ExplainRequest(
                    pair=beer_dataset[index % 3],
                    method="single",
                    samples=SAMPLES,
                )
                for index in range(9)
            ]
            for request in requests:
                service.explain(request)
            stats = service.stats
            assert stats.requests == 9
            assert (
                stats.store_hits + stats.coalesced + stats.computed
                == stats.requests
            )
            assert stats.computed == 3  # one per distinct pair
            assert stats.latency_seconds > 0
            assert stats.latency_max <= stats.latency_seconds
        store.close()
