"""Tests for store crash-safety: quarantine, rebuild, and failure streaks.

The store's recovery contract: damage never crashes the serving layer
and never serves garbage.  Isolated bad rows are row-level events
(deleted + miss); a file SQLite cannot read — or ``recover_after``
consecutive validation failures — quarantines the whole database to
``*.corrupt-<ts>`` and rebuilds it empty.
"""

import sqlite3

import pytest

from repro.config import StoreConfig
from repro.service.store import STORE_DB_NAME, ExplanationStore
from repro.testing.chaos import (
    flip_bytes,
    overwrite_with_garbage,
    truncate_file,
)


def payload_for(index: int) -> dict:
    return {"format_version": 1, "key": f"k{index}", "value": index}


def fill(store_dir, n=5):
    with ExplanationStore(store_dir) as store:
        for index in range(n):
            store.put(f"k{index}", payload_for(index))
        store.flush()
    return store_dir / STORE_DB_NAME


def quarantined(store_dir):
    return sorted(store_dir.glob(f"{STORE_DB_NAME}.corrupt-*"))


class TestOpenTimeRecovery:
    def test_truncated_file_is_quarantined_at_open(self, tmp_path):
        db = fill(tmp_path)
        truncate_file(db, keep_fraction=0.2)
        with ExplanationStore(tmp_path) as store:
            assert store.stats.recoveries == 1
            assert len(store) == 0
            # The rebuilt store is fully usable.
            store.put("fresh", payload_for(9))
            assert store.get("fresh") == payload_for(9)
        assert len(quarantined(tmp_path)) == 1

    def test_garbage_file_is_quarantined_at_open(self, tmp_path):
        db = tmp_path / STORE_DB_NAME
        tmp_path.mkdir(exist_ok=True)
        overwrite_with_garbage(db, size=4096, seed=3)
        with ExplanationStore(tmp_path) as store:
            assert store.stats.recoveries == 1
            store.put("k", payload_for(0))
            assert store.get("k") == payload_for(0)
        assert quarantined(tmp_path)

    def test_quarantine_preserves_the_damaged_bytes(self, tmp_path):
        db = tmp_path / STORE_DB_NAME
        overwrite_with_garbage(db, size=1024, seed=5)
        damaged = db.read_bytes()
        with ExplanationStore(tmp_path):
            pass
        (kept,) = quarantined(tmp_path)
        assert kept.read_bytes() == damaged

    def test_repeated_recoveries_get_distinct_quarantine_names(
        self, tmp_path
    ):
        clock_now = [1_000.0]
        for _ in range(2):
            overwrite_with_garbage(tmp_path / STORE_DB_NAME, seed=1)
            store = ExplanationStore(tmp_path, clock=lambda: clock_now[0])
            store.close()
        names = [p.name for p in quarantined(tmp_path)]
        assert len(names) == 2
        assert len(set(names)) == 2  # same timestamp, still distinct


class TestMidOperationRecovery:
    def test_reads_degrade_to_misses_then_recover(self, tmp_path):
        db = fill(tmp_path)
        store = ExplanationStore(
            tmp_path, config=StoreConfig(recover_after=3)
        )
        try:
            # Corrupt the file behind the open connection so the next
            # queries fail inside SQLite, not at open time.
            store._conn.close()
            truncate_file(db, keep_fraction=0.1)
            store._conn = sqlite3.connect(str(db), check_same_thread=False)
            assert store.get("k0") is None  # miss, never an exception
            assert store.get("k1") is None
            assert store.get("k2") is None  # streak hits recover_after
            stats = store.stats
            assert stats.recoveries == 1
            assert stats.corruptions == 3
            assert stats.misses == 3
            # Rebuilt and writable again.
            store.put("k0", payload_for(0))
            assert store.get("k0") == payload_for(0)
        finally:
            store.close()
        assert quarantined(tmp_path)

    def test_torn_put_recovers_and_retries(self, tmp_path):
        db = fill(tmp_path)
        store = ExplanationStore(tmp_path)
        try:
            store._conn.close()
            truncate_file(db, keep_fraction=0.1)
            store._conn = sqlite3.connect(str(db), check_same_thread=False)
            # The write fails mid-flight, the store rebuilds, and the
            # SAME payload lands in the fresh database — a completed
            # computation is never lost to a corrupt file.
            store.put("survivor", payload_for(7))
            assert store.get("survivor") == payload_for(7)
            assert store.stats.recoveries == 1
        finally:
            store.close()

    def test_consecutive_checksum_failures_trigger_file_recovery(
        self, tmp_path
    ):
        db = fill(tmp_path, n=4)
        store = ExplanationStore(
            tmp_path, config=StoreConfig(recover_after=2)
        )
        try:
            store._conn.execute("UPDATE explanations SET payload = '{}'")
            store._conn.commit()
            assert store.get("k0") is None  # streak 1 (row deleted)
            assert store.get("k1") is None  # streak 2 -> quarantine
            assert store.stats.recoveries == 1
            assert len(store) == 0
        finally:
            store.close()

    def test_healthy_read_resets_the_failure_streak(self, tmp_path):
        store = ExplanationStore(
            tmp_path, config=StoreConfig(recover_after=2)
        )
        try:
            store.put("good1", payload_for(1))
            store.put("good2", payload_for(2))
            store.put("bad", payload_for(3))
            store._conn.execute(
                "UPDATE explanations SET payload = '{]' WHERE key = 'bad'"
            )
            store._conn.commit()
            assert store.get("bad") is None      # streak 1
            assert store.get("good1") == payload_for(1)  # streak resets
            store._conn.execute(
                "UPDATE explanations SET payload = 'x' WHERE key = 'good2'"
            )
            store._conn.commit()
            assert store.get("good2") is None    # streak 1 again, not 2
            assert store.stats.recoveries == 0   # never went file-level
            assert store.stats.corruptions == 2
        finally:
            store.close()

    def test_stale_format_row_stays_row_level(self, tmp_path):
        store = ExplanationStore(
            tmp_path, config=StoreConfig(recover_after=3)
        )
        try:
            for index in range(3):
                store.put(f"k{index}", payload_for(index))
            store._conn.execute(
                "UPDATE explanations SET format_version = 999 "
                "WHERE key = 'k1'"
            )
            store._conn.commit()
            assert store.get("k1") is None
            assert store.get("k0") == payload_for(0)
            assert store.get("k2") == payload_for(2)
            stats = store.stats
            assert stats.corruptions == 1
            assert stats.recoveries == 0
        finally:
            store.close()
        assert not quarantined(tmp_path)

    def test_flipped_row_bytes_never_serve_garbage(self, tmp_path):
        db = fill(tmp_path, n=8)
        flip_bytes(db, n=128, seed=11)
        # Whatever the damage hit — header, b-tree pages or payload
        # bytes — every get() returns either a byte-perfect payload or a
        # miss; nothing in between, and no exception escapes.
        store = ExplanationStore(tmp_path, config=StoreConfig(recover_after=2))
        try:
            for index in range(8):
                result = store.get(f"k{index}")
                assert result is None or result == payload_for(index)
            store.put("after", payload_for(99))
            assert store.get("after") == payload_for(99)
        finally:
            store.close()


class TestFlush:
    def test_flush_checkpoints_the_wal(self, tmp_path):
        store = ExplanationStore(tmp_path)
        store.put("k", payload_for(1))
        wal = tmp_path / (STORE_DB_NAME + "-wal")
        assert wal.exists() and wal.stat().st_size > 0
        store.flush()
        assert wal.stat().st_size == 0
        store.close()
        # The bare .sqlite file alone now carries the entry.
        with ExplanationStore(tmp_path) as reopened:
            assert reopened.get("k") == payload_for(1)

    def test_flush_on_a_broken_connection_is_best_effort(self, tmp_path):
        store = ExplanationStore(tmp_path)
        store._conn.close()
        store.flush()  # no exception

    def test_unreadable_directory_raises_service_error(self, tmp_path):
        from repro.exceptions import ServiceError

        target = tmp_path / "not-a-dir"
        target.write_text("a file where the store dir should be")
        with pytest.raises((ServiceError, OSError, NotADirectoryError)):
            ExplanationStore(target / "store")
