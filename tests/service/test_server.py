"""Tests for the service front-ends: stdio JSONL, HTTP and precompute."""

import io
import json
import threading
import urllib.request

import pytest

from repro.exceptions import CheckpointError
from repro.service.request import ExplainRequest
from repro.service.server import (
    PRECOMPUTE_JOURNAL,
    handle_payload,
    precompute,
    serve_http,
    serve_stdio,
)
from repro.service.service import ExplanationService
from repro.service.store import ExplanationStore

SAMPLES = 32
DEFAULTS = {"method": "single", "samples": SAMPLES, "explainer": "lime", "seed": 0}


@pytest.fixture()
def service(beer_matcher):
    with ExplanationService(beer_matcher) as svc:
        yield svc


class TestHandlePayload:
    def test_explain(self, service, beer_dataset):
        response = handle_payload(
            service, {"record": 0, "id": "r1"}, beer_dataset, DEFAULTS
        )
        assert response["ok"]
        assert response["id"] == "r1"
        assert response["result"]["pair_id"] == beer_dataset[0].pair_id

    def test_stats(self, service, beer_dataset):
        response = handle_payload(service, {"op": "stats"}, beer_dataset)
        assert response["ok"]
        assert "service" in response["stats"]

    def test_shutdown(self, service):
        response = handle_payload(service, {"op": "shutdown"})
        assert response["ok"]
        assert response["shutdown"]

    def test_unknown_op(self, service):
        response = handle_payload(service, {"op": "dance"})
        assert not response["ok"]
        assert "unknown op" in response["error"]

    def test_bad_request_is_a_response_not_an_exception(
        self, service, beer_dataset
    ):
        response = handle_payload(service, {"record": 10_000}, beer_dataset)
        assert not response["ok"]
        assert "out of range" in response["error"]


class TestServeStdio:
    def run_lines(self, service, dataset, *lines: str):
        output = io.StringIO()
        answered = serve_stdio(
            service,
            dataset,
            DEFAULTS,
            input_stream=io.StringIO("\n".join(lines) + "\n"),
            output_stream=output,
        )
        responses = [
            json.loads(line) for line in output.getvalue().splitlines()
        ]
        return answered, responses

    def test_request_response_loop(self, service, beer_dataset):
        answered, responses = self.run_lines(
            service,
            beer_dataset,
            json.dumps({"record": 0}),
            json.dumps({"op": "stats"}),
            json.dumps({"op": "shutdown"}),
        )
        assert answered == 3
        assert responses[0]["ok"] and "result" in responses[0]
        assert responses[1]["ok"] and "stats" in responses[1]
        assert responses[2]["shutdown"]

    def test_malformed_line_does_not_kill_the_loop(
        self, service, beer_dataset
    ):
        answered, responses = self.run_lines(
            service,
            beer_dataset,
            "this is not json",
            json.dumps({"record": 0}),
        )
        assert answered == 2
        assert not responses[0]["ok"]
        assert "bad JSON" in responses[0]["error"]
        assert responses[1]["ok"]

    def test_blank_lines_skipped_and_eof_terminates(
        self, service, beer_dataset
    ):
        answered, responses = self.run_lines(
            service, beer_dataset, "", json.dumps({"record": 1}), ""
        )
        assert answered == 1
        assert responses[0]["ok"]


class TestServeHTTP:
    @pytest.fixture()
    def http_server(self, service, beer_dataset):
        server = serve_http(service, beer_dataset, DEFAULTS, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()

    def _get(self, url: str) -> dict:
        with urllib.request.urlopen(url, timeout=30) as response:
            return json.loads(response.read())

    def test_healthz(self, http_server):
        payload = self._get(f"{http_server}/healthz")
        assert payload["ok"] is True
        assert payload["queue_depth"] == 0
        assert "degraded" not in payload

    def test_explain_and_stats(self, http_server, beer_dataset):
        body = json.dumps({"record": 0}).encode("utf-8")
        request = urllib.request.Request(
            f"{http_server}/explain", data=body, method="POST"
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            payload = json.loads(response.read())
        assert payload["ok"]
        assert payload["result"]["pair_id"] == beer_dataset[0].pair_id
        stats = self._get(f"{http_server}/stats")
        assert stats["stats"]["service"]["computed"] == 1

    def test_unknown_path_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as info:
            self._get(f"{http_server}/nope")
        assert info.value.code == 404

    def test_bad_request_400(self, http_server):
        body = json.dumps({"record": 10_000}).encode("utf-8")
        request = urllib.request.Request(
            f"{http_server}/explain", data=body, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400


class TestPrecompute:
    def warm(self, matcher, dataset, store_dir, resume=False, **overrides):
        options = dict(
            per_label=2, method="single", samples=SAMPLES, seed=0
        )
        options.update(overrides)
        store = ExplanationStore(store_dir)
        with ExplanationService(matcher, store=store) as service:
            report = precompute(
                service,
                dataset,
                resume=resume,
                journal_dir=store_dir,
                **options,
            )
        stats = service.stats
        store.close()
        return report, stats

    def test_cold_run_warms_every_sampled_pair(
        self, beer_matcher, beer_dataset, tmp_path
    ):
        report, stats = self.warm(beer_matcher, beer_dataset, tmp_path / "s")
        assert report.n_pairs == 4  # per_label=2, two labels
        assert report.n_submitted == 4
        assert report.n_skipped == 0
        assert report.n_failed == 0
        assert stats.computed == 4
        journal = (tmp_path / "s" / PRECOMPUTE_JOURNAL).read_text()
        events = [json.loads(line) for line in journal.splitlines()]
        assert events[0]["event"] == "config"
        assert sum(e["event"] == "request" for e in events) == 4

    def test_resume_skips_warm_keys(self, beer_matcher, beer_dataset, tmp_path):
        self.warm(beer_matcher, beer_dataset, tmp_path / "s")
        report, stats = self.warm(
            beer_matcher, beer_dataset, tmp_path / "s", resume=True
        )
        assert report.n_skipped == 4
        assert report.n_submitted == 0
        assert stats.requests == 0  # skipped keys never enter the service

    def test_resume_recomputes_a_lost_store_entry(
        self, beer_matcher, beer_dataset, tmp_path
    ):
        self.warm(beer_matcher, beer_dataset, tmp_path / "s")
        # Journal says done, but the store lost an entry (e.g. eviction).
        store = ExplanationStore(tmp_path / "s")
        victim = store.keys()[0]
        with __import__("sqlite3").connect(str(store.path)) as conn:
            conn.execute("DELETE FROM explanations WHERE key = ?", (victim,))
            conn.commit()
        store.close()
        report, _ = self.warm(
            beer_matcher, beer_dataset, tmp_path / "s", resume=True
        )
        assert report.n_submitted == 1
        assert report.n_skipped == 3

    def test_resume_refuses_a_different_workload(
        self, beer_matcher, beer_dataset, tmp_path
    ):
        self.warm(beer_matcher, beer_dataset, tmp_path / "s")
        with pytest.raises(CheckpointError):
            self.warm(
                beer_matcher,
                beer_dataset,
                tmp_path / "s",
                resume=True,
                samples=SAMPLES * 2,
            )

    def test_without_resume_journal_is_rewritten(
        self, beer_matcher, beer_dataset, tmp_path
    ):
        self.warm(beer_matcher, beer_dataset, tmp_path / "s")
        report, stats = self.warm(beer_matcher, beer_dataset, tmp_path / "s")
        # Fresh journal: nothing is "done", but the store still answers.
        assert report.n_submitted == 4
        assert stats.store_hits == 4
        assert stats.computed == 0

    def test_warming_uses_background_priority(self, beer_dataset):
        request = ExplainRequest(pair=beer_dataset[0], priority=100)
        interactive = ExplainRequest(pair=beer_dataset[0])
        assert request.priority > interactive.priority

    def test_failed_pairs_are_isolated(self, beer_dataset, tmp_path):
        class FlakyMatcher:
            def __init__(self):
                self.calls = 0

            def predict_proba(self, pairs):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("transient outage")
                import numpy as np

                return np.full(len(pairs), 0.5)

            def predict_one(self, pair):
                return 0.5

        report, stats = self.warm(FlakyMatcher(), beer_dataset, tmp_path / "s")
        assert report.n_failed >= 1
        assert report.n_failed + (stats.computed) == report.n_submitted
        assert len(report.failed_pair_ids) == report.n_failed
