"""SIGTERM-style drain while a coalesced cross-request batch is in
flight: every waiter must get a terminal response, never a hang."""

from __future__ import annotations

import threading

import pytest

from repro.config import ServiceConfig
from repro.exceptions import ReproError
from repro.service import ExplainRequest, ExplanationService

SAMPLES = 24


class GatedMatcher:
    """Delegates to a fitted matcher but blocks until released."""

    def __init__(self, matcher):
        self.matcher = matcher
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def predict_proba(self, pairs):
        self.calls += 1
        self.entered.set()
        if not self.release.wait(timeout=60):
            raise RuntimeError("gate never released")
        return self.matcher.predict_proba(pairs)

    def predict_one(self, pair):
        return float(self.predict_proba([pair])[0])


@pytest.fixture()
def batching_service(beer_matcher):
    gated = GatedMatcher(beer_matcher)
    service = ExplanationService(
        gated,
        config=ServiceConfig(
            n_workers=2,
            batch_window_ms=25.0,
            batch_max_size=4096,
            drain_timeout=60.0,
        ),
    )
    yield service, gated
    gated.release.set()
    service.close(drain=False)


def _requests(dataset, n):
    return [
        ExplainRequest(pair=dataset[i], method="single", samples=SAMPLES)
        for i in range(n)
    ]


def test_drain_finishes_inflight_batch_and_resolves_all_waiters(
    batching_service, beer_dataset
):
    service, gated = batching_service
    first, second = _requests(beer_dataset, 2)

    f1 = service.submit(first)
    f2 = service.submit(second)
    # Both workers are computing; at least one matcher batch (possibly a
    # coalesced cross-request one) is blocked inside the gate.
    assert gated.entered.wait(timeout=30)

    done = threading.Event()
    summary = {}

    def close_service():
        summary.update(service.close(drain=True, drain_timeout=60.0))
        done.set()

    closer = threading.Thread(target=close_service, daemon=True)
    closer.start()
    # The drain is now waiting on the blocked batch.  Releasing the gate
    # must let both waiters finish with real payloads.
    gated.release.set()
    assert done.wait(timeout=60), "close(drain=True) hung on the batch"

    assert f1.result(timeout=1)["duals"]["single"]
    assert f2.result(timeout=1)["duals"]["single"]
    assert summary["drained"] is True


def test_drain_timeout_still_terminates_every_waiter(
    batching_service, beer_dataset
):
    service, gated = batching_service
    futures = [service.submit(r) for r in _requests(beer_dataset, 4)]
    assert gated.entered.wait(timeout=30)

    # The gate never opens within the budget: the drain gives up, but no
    # future may be left pending — each gets a terminal error.
    summary = service.close(drain=True, drain_timeout=0.3)
    gated.release.set()
    for future in futures:
        try:
            result = future.result(timeout=60)
        except ReproError:
            continue  # terminal taxonomy error: acceptable
        except Exception:
            continue  # cancelled: also terminal
        assert result["duals"]["single"]  # finished before the cutoff
    assert all(f.done() for f in futures)
    # The summary is honest about giving up on the blocked batch.
    assert summary["drained"] is False
