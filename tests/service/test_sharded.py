"""Multi-process sharded serving: routing, failover, supervision, drain.

These tests spawn real shard processes (``multiprocessing`` spawn
context), so each ``ShardedService`` boot costs a couple of seconds of
child imports.  They stay cheap by sharing one trained matcher (the
session ``beer_matcher`` fixture pickles cleanly) and tiny perturbation
budgets.
"""

from __future__ import annotations

import time

import pytest

from repro.config import ServiceConfig, ShardConfig
from repro.exceptions import ShardFailedError
from repro.service import (
    ExplainRequest,
    ExplanationService,
    ShardedService,
)
from repro.service.store import shard_store_dir
from repro.testing.chaos import heartbeat_stall, worker_crash

SAMPLES = 24

#: Fast supervision for tests: heartbeats every 50ms, death declared
#: after 1.5s of silence, restarts after 0.2s.
FAST = dict(
    heartbeat_interval=0.05,
    heartbeat_timeout=1.5,
    check_interval=0.05,
    restart_backoff_base=0.2,
    restart_backoff_max=1.0,
)


def _request(pair, **overrides) -> ExplainRequest:
    defaults = dict(pair=pair, method="single", samples=SAMPLES, seed=0)
    defaults.update(overrides)
    return ExplainRequest(**defaults)


def _request_for_shard(service, dataset, shard_id, **overrides):
    """A request whose key routes to *shard_id* with every shard live."""
    for pair in dataset:
        request = _request(pair, **overrides)
        if service.shard_for(request) == shard_id:
            return request
    raise AssertionError(f"no record routes to shard {shard_id}")


def _wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestBitIdentity:
    def test_sharded_result_equals_single_process(
        self, beer_matcher, non_match_pair
    ):
        request = _request(non_match_pair, method="both")
        with ExplanationService(beer_matcher) as single:
            expected = single.explain(request)
        with ShardedService(
            beer_matcher, shard_config=ShardConfig(n_shards=2, **FAST)
        ) as sharded:
            got = sharded.explain(request, timeout=120)
        assert got == expected

    def test_single_shard_mode_serves(self, beer_matcher, match_pair):
        with ShardedService(
            beer_matcher, shard_config=ShardConfig(n_shards=1, **FAST)
        ) as service:
            payload = service.explain(_request(match_pair), timeout=120)
        assert payload["duals"]["single"]


class TestRoutingAndStores:
    def test_equal_keys_route_to_one_shard(self, beer_matcher, beer_dataset):
        with ShardedService(
            beer_matcher, shard_config=ShardConfig(n_shards=2, **FAST)
        ) as service:
            request = _request(beer_dataset[0])
            owner = service.shard_for(request)
            futures = [service.submit(request) for _ in range(3)]
            results = [f.result(timeout=120) for f in futures]
            assert all(r == results[0] for r in results)
            stats = service.stats_payload()
        other = str(1 - owner)
        assert stats["shards"][str(owner)]["service"]["requests"] == 3
        assert stats["shards"][other]["service"]["requests"] == 0

    def test_each_shard_owns_its_store_partition(
        self, beer_matcher, beer_dataset, tmp_path
    ):
        store_root = tmp_path / "store"
        with ShardedService(
            beer_matcher,
            store_dir=store_root,
            shard_config=ShardConfig(n_shards=2, **FAST),
        ) as service:
            for shard_id in (0, 1):
                request = _request_for_shard(service, beer_dataset, shard_id)
                service.explain(request, timeout=120)
        for shard_id in (0, 1):
            partition = shard_store_dir(store_root, shard_id)
            assert partition.is_dir(), f"shard {shard_id} partition missing"

    def test_metrics_roll_up_with_shard_labels(self, beer_matcher, match_pair):
        with ShardedService(
            beer_matcher, shard_config=ShardConfig(n_shards=2, **FAST)
        ) as service:
            service.explain(_request(match_pair), timeout=120)
            text = service.metrics_text()
            document = service.metrics_json()
        assert 'shard="router"' in text
        assert 'shard="0"' in text and 'shard="1"' in text
        labels = {
            sample["labels"].get("shard")
            for family in document["metrics"]
            for sample in family["samples"]
        }
        assert {"router", "0", "1"} <= labels


class TestCrashFailover:
    def test_worker_crash_fails_over_and_restarts(
        self, beer_matcher, beer_dataset
    ):
        with ShardedService(
            beer_matcher,
            shard_config=ShardConfig(n_shards=2, **FAST),
            chaos={0: worker_crash(after_requests=1)},
        ) as service:
            request = _request_for_shard(service, beer_dataset, 0)
            # The crash strands this request on shard 0; the supervisor
            # must fail it over to shard 1, which serves it.
            payload = service.submit(request).result(timeout=120)
            assert payload["duals"]["single"]

            # The supervisor restarts shard 0 (chaos disarmed) and the
            # fleet reports healthy again.
            assert _wait_for(
                lambda: service.health()[1]["shards"]["0"]["state"] == "live"
            )
            status, health = service.health()
            assert status == 200
            assert health["shards"]["0"]["restarts"] == 1

            # The restarted shard serves its own keys again.
            again = service.submit(request).result(timeout=120)
            assert again == payload

    def test_failover_budget_exhausted_is_retryable_503(
        self, beer_matcher, beer_dataset
    ):
        # Both shards crash on their first admitted request and restarts
        # are slow, so the single failover attempt also dies: the waiter
        # must get the retryable taxonomy error, never a hang.
        with ShardedService(
            beer_matcher,
            shard_config=ShardConfig(
                n_shards=2,
                heartbeat_interval=0.05,
                heartbeat_timeout=1.5,
                check_interval=0.05,
                restart_backoff_base=30.0,
                max_failovers=1,
            ),
            chaos={
                0: worker_crash(after_requests=1),
                1: worker_crash(after_requests=1),
            },
        ) as service:
            request = _request(beer_dataset[0])
            with pytest.raises(ShardFailedError) as excinfo:
                service.submit(request).result(timeout=120)
            assert excinfo.value.code == "shard_failed"

    def test_no_live_shards_rejects_submissions_retryably(
        self, beer_matcher, beer_dataset
    ):
        with ShardedService(
            beer_matcher,
            shard_config=ShardConfig(
                n_shards=1,
                heartbeat_interval=0.05,
                heartbeat_timeout=1.5,
                check_interval=0.05,
                restart_backoff_base=30.0,
            ),
            chaos={0: worker_crash(after_requests=1)},
        ) as service:
            request = _request(beer_dataset[0])
            with pytest.raises(ShardFailedError):
                service.submit(request).result(timeout=120)
            # The only shard is dead and backing off: health is a 503
            # (down, not degraded) and new submissions fail fast.
            assert _wait_for(lambda: service.health()[0] == 503)
            status, health = service.health()
            assert health["reason"] == "no_live_shards"
            with pytest.raises(ShardFailedError):
                service.submit(_request(beer_dataset[1]))


class TestSupervision:
    def test_heartbeat_stall_is_detected_and_restarted(
        self, beer_matcher, match_pair
    ):
        with ShardedService(
            beer_matcher,
            shard_config=ShardConfig(n_shards=1, **FAST),
            chaos={0: heartbeat_stall(after_seconds=0.0)},
        ) as service:
            # The shard never heartbeats, so the supervisor declares it
            # hung, kills it and restarts it without chaos.
            assert _wait_for(
                lambda: service.health()[1]["shards"]["0"]["restarts"] >= 1
            )
            assert _wait_for(
                lambda: service.health()[1]["shards"]["0"]["state"] == "live"
            )
            payload = service.explain(_request(match_pair), timeout=120)
            assert payload["duals"]["single"]

    def test_one_sick_shard_reads_degraded_not_down(
        self, beer_matcher, beer_dataset
    ):
        with ShardedService(
            beer_matcher,
            shard_config=ShardConfig(
                n_shards=2,
                heartbeat_interval=0.05,
                heartbeat_timeout=1.5,
                check_interval=0.05,
                restart_backoff_base=30.0,
            ),
            chaos={0: worker_crash(after_requests=1)},
        ) as service:
            request = _request_for_shard(service, beer_dataset, 0)
            service.submit(request).result(timeout=120)
            assert _wait_for(
                lambda: service.health()[1]["shards"]["0"]["state"] != "live"
            )
            status, health = service.health()
            # One dead shard (in restart backoff): degraded, still 200.
            assert status == 200
            assert health["ok"] is True
            assert "0" in health.get("degraded", [])
            # The live shard keeps serving its keys.
            other = _request_for_shard(service, beer_dataset, 1)
            assert service.explain(other, timeout=120)


class TestDrain:
    def test_close_resolves_every_waiter(self, beer_matcher, beer_dataset):
        config = ServiceConfig(n_workers=1)
        with ShardedService(
            beer_matcher,
            config=config,
            shard_config=ShardConfig(n_shards=2, **FAST),
        ) as service:
            futures = [
                service.submit(_request(beer_dataset[i])) for i in range(6)
            ]
            summary = service.close()
        assert summary["drained"] is True
        for future in futures:
            # Terminal, never hanging: a real payload or a retryable error.
            assert future.done()
            error = future.exception(timeout=0)
            assert error is None or isinstance(error, ShardFailedError)
        served = [f for f in futures if f.exception(timeout=0) is None]
        assert served, "drain should finish at least the admitted work"

    def test_closed_service_rejects_new_requests(
        self, beer_matcher, match_pair
    ):
        service = ShardedService(
            beer_matcher, shard_config=ShardConfig(n_shards=1, **FAST)
        )
        service.close()
        with pytest.raises(Exception):
            service.submit(_request(match_pair))
