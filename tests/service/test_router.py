"""Consistent-hash router properties the sharded service relies on."""

from __future__ import annotations

import hashlib

import pytest

from repro.exceptions import ConfigurationError
from repro.service.router import HashRing, key_position


def _keys(n: int) -> list[str]:
    # Shaped like real request keys: SHA-256 hex digests.
    return [hashlib.sha256(f"key-{i}".encode()).hexdigest() for i in range(n)]


def test_ring_is_deterministic():
    a = HashRing(range(4))
    b = HashRing(range(4))
    for key in _keys(200):
        assert a.owner(key) == b.owner(key)


def test_key_position_uses_hex_prefix():
    key = "ab" * 32
    assert key_position(key) == int(key[:16], 16)
    # Non-hex keys still land somewhere stable on the ring.
    assert key_position("not hex!") == key_position("not hex!")


def test_distribution_is_roughly_uniform():
    ring = HashRing(range(4), virtual_nodes=64)
    counts = {shard: 0 for shard in range(4)}
    keys = _keys(4000)
    for key in keys:
        counts[ring.owner(key)] += 1
    for count in counts.values():
        # Perfect would be 1000 per shard; virtual nodes keep the skew
        # within a factor of ~2 either way.
        assert 400 <= count <= 2200, counts


def test_equal_keys_always_colocate():
    ring = HashRing(range(8))
    key = _keys(1)[0]
    assert len({ring.owner(key) for _ in range(10)}) == 1


def test_minimal_movement_on_resize():
    before = HashRing(range(4))
    after = HashRing(range(5))
    keys = _keys(2000)
    moved = sum(1 for key in keys if before.owner(key) != after.owner(key))
    # Consistent hashing moves ~1/5 of the keys when a fifth shard
    # joins; modulo hashing would move ~4/5.
    assert moved < len(keys) * 0.45, moved


def test_dead_shard_keys_move_to_successor_and_back():
    ring = HashRing(range(3))
    keys = _keys(500)
    owners = {key: ring.owner(key) for key in keys}
    victim = 1
    live = {0, 2}
    for key in keys:
        reassigned = ring.assign(key, live=live)
        assert reassigned in live
        if owners[key] != victim:
            # Keys of living shards never move on someone else's death.
            assert reassigned == owners[key]
    # The shard returns: every key snaps back to its original owner.
    for key in keys:
        assert ring.assign(key, live={0, 1, 2}) == owners[key]


def test_preference_order_matches_sequential_deaths():
    ring = HashRing(range(4))
    for key in _keys(50):
        preference = ring.preference(key)
        assert sorted(preference) == [0, 1, 2, 3]
        assert preference[0] == ring.owner(key)
        # Killing the shards in preference order realises the same
        # sequence through assign().
        live = set(range(4))
        for expected in preference:
            assert ring.assign(key, live=live) == expected
            live.discard(expected)


def test_no_live_shard_returns_none():
    ring = HashRing(range(3))
    assert ring.assign(_keys(1)[0], live=set()) is None


def test_invalid_construction():
    with pytest.raises(ConfigurationError):
        HashRing([])
    with pytest.raises(ConfigurationError):
        HashRing([1, 1])
    with pytest.raises(ConfigurationError):
        HashRing([0], virtual_nodes=0)
