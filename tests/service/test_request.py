"""Tests for explain requests and their content-addressed keys."""

import dataclasses

import pytest

from repro.exceptions import ConfigurationError, ServiceError
from repro.service.request import (
    ExplainRequest,
    request_from_payload,
    request_key,
)

FP = "a" * 64  # a stand-in matcher fingerprint


class TestValidation:
    def test_bad_method(self, toy_pair):
        with pytest.raises(ConfigurationError):
            ExplainRequest(pair=toy_pair, method="triple")

    def test_bad_explainer(self, toy_pair):
        with pytest.raises(ConfigurationError):
            ExplainRequest(pair=toy_pair, explainer="anchors")

    def test_tiny_sample_budget(self, toy_pair):
        with pytest.raises(ConfigurationError):
            ExplainRequest(pair=toy_pair, samples=2)

    def test_generations(self, toy_pair):
        assert ExplainRequest(pair=toy_pair, method="both").generations() == (
            "single",
            "double",
        )
        assert ExplainRequest(pair=toy_pair, method="auto").generations() == (
            "auto",
        )


class TestRequestKey:
    def test_stable_across_equal_requests(self, toy_pair):
        a = ExplainRequest(pair=toy_pair, method="single", samples=64)
        b = ExplainRequest(pair=toy_pair, method="single", samples=64)
        assert request_key(FP, a) == request_key(FP, b)

    def test_priority_excluded(self, toy_pair):
        a = ExplainRequest(pair=toy_pair, priority=1)
        b = ExplainRequest(pair=toy_pair, priority=99)
        assert request_key(FP, a) == request_key(FP, b)

    @pytest.mark.parametrize(
        "change",
        [
            {"method": "single"},
            {"samples": 256},
            {"explainer": "shap"},
            {"seed": 7},
        ],
    )
    def test_every_result_affecting_field_changes_the_key(
        self, toy_pair, change
    ):
        base = ExplainRequest(pair=toy_pair)
        varied = dataclasses.replace(base, **change)
        assert request_key(FP, base) != request_key(FP, varied)

    def test_matcher_fingerprint_changes_the_key(self, toy_pair):
        request = ExplainRequest(pair=toy_pair)
        assert request_key(FP, request) != request_key("b" * 64, request)

    def test_pair_content_changes_the_key(self, toy_pair):
        other = toy_pair.with_side("left", {"name": "other", "price": "1"})
        assert request_key(FP, ExplainRequest(pair=toy_pair)) != request_key(
            FP, ExplainRequest(pair=other)
        )


class TestRequestFromPayload:
    def test_record_index(self, beer_dataset):
        request = request_from_payload({"record": 3}, beer_dataset)
        assert request.pair.pair_id == beer_dataset[3].pair_id

    def test_record_index_out_of_range(self, beer_dataset):
        with pytest.raises(ServiceError):
            request_from_payload({"record": 10_000}, beer_dataset)

    def test_record_without_dataset(self):
        with pytest.raises(ServiceError):
            request_from_payload({"record": 0}, None)

    def test_inline_pair(self):
        payload = {
            "pair": {
                "attributes": ["name", "price"],
                "left": {"name": "sony camera", "price": "849"},
                "right": {"name": "nikon case", "price": "7"},
            },
            "method": "single",
            "samples": 32,
        }
        request = request_from_payload(payload)
        assert request.pair.left["name"] == "sony camera"
        assert request.method == "single"
        assert request.samples == 32

    def test_inline_pair_borrows_dataset_schema(self, beer_dataset):
        attrs = beer_dataset.schema.attributes
        payload = {
            "pair": {
                "left": {a: "x" for a in attrs},
                "right": {a: "y" for a in attrs},
            }
        }
        request = request_from_payload(payload, beer_dataset)
        assert request.pair.schema == beer_dataset.schema

    def test_defaults_applied(self, beer_dataset):
        defaults = {"samples": 48, "explainer": "shap", "seed": 5}
        request = request_from_payload({"record": 0}, beer_dataset, defaults)
        assert request.samples == 48
        assert request.explainer == "shap"
        assert request.seed == 5

    def test_missing_record_and_pair(self, beer_dataset):
        with pytest.raises(ServiceError):
            request_from_payload({"op": "explain"}, beer_dataset)

    def test_invalid_field_becomes_service_error(self, beer_dataset):
        with pytest.raises(ServiceError):
            request_from_payload(
                {"record": 0, "method": "bogus"}, beer_dataset
            )
