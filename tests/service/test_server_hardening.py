"""Tests for the hardened HTTP front-end: limits, codes, degradation.

Every refusal the server issues is structured — a JSON body with a
stable ``code`` and the matching HTTP status — and no client behaviour
(oversized bodies, stalled sockets, malformed framing) can pin a worker
or crash the listener.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.config import ServiceConfig
from repro.service.request import ExplainRequest
from repro.service.server import http_status_for, serve_http
from repro.service.service import ExplanationService
from repro.testing.chaos import SlowClient

SAMPLES = 32
DEFAULTS = {"method": "single", "samples": SAMPLES, "explainer": "lime", "seed": 0}


def start(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return host, port


def post(url, payload, timeout=60):
    """(status, body, headers) of a POST; HTTP errors become values."""
    data = (
        payload if isinstance(payload, bytes)
        else json.dumps(payload).encode("utf-8")
    )
    request = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


class TestStatusMapping:
    def test_error_codes_map_to_their_status(self):
        assert http_status_for("bad_request") == 400
        assert http_status_for("overloaded") == 429
        assert http_status_for("matcher_unavailable") == 503
        assert http_status_for("deadline_exceeded") == 504
        assert http_status_for("matcher_timeout") == 504
        assert http_status_for(None) == 500
        assert http_status_for("something_novel") == 500


class TestBodyLimits:
    @pytest.fixture()
    def small_server(self, beer_matcher, beer_dataset):
        with ExplanationService(beer_matcher) as service:
            server = serve_http(
                service, beer_dataset, DEFAULTS, port=0, max_body_bytes=512
            )
            host, port = start(server)
            yield f"http://{host}:{port}"
            server.shutdown()
            server.server_close()

    def test_oversized_body_is_413_with_code(self, small_server):
        padding = {"record": 0, "note": "x" * 2048}
        status, body, _ = post(f"{small_server}/explain", padding)
        assert status == 413
        assert body["ok"] is False
        assert body["code"] == "body_too_large"

    def test_bad_json_is_structured_400(self, small_server):
        status, body, _ = post(f"{small_server}/explain", b"{not json")
        assert status == 400
        assert body["ok"] is False
        assert body["code"] == "bad_request"

    def test_under_limit_still_serves(self, small_server):
        status, body, _ = post(f"{small_server}/explain", {"record": 0})
        assert status == 200
        assert body["ok"] is True


class TestMalformedFraming:
    @pytest.fixture()
    def server_address(self, beer_matcher, beer_dataset):
        with ExplanationService(beer_matcher) as service:
            server = serve_http(
                service, beer_dataset, DEFAULTS, port=0, read_timeout=1.0
            )
            host, port = start(server)
            yield host, port
            server.shutdown()
            server.server_close()

    def test_invalid_content_length_is_400(self, server_address):
        host, port = server_address
        client = SlowClient(host, port)
        client.socket.sendall(
            b"POST /explain HTTP/1.1\r\n"
            b"Host: test\r\n"
            b"Content-Length: banana\r\n"
            b"\r\n"
        )
        client.socket.settimeout(10)
        chunks = []
        while True:  # read to EOF: status line + JSON body
            chunk = client.socket.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
        response = b"".join(chunks).decode("utf-8", "replace")
        client.close()
        assert " 400 " in response.splitlines()[0]
        assert "bad_request" in response

    def test_stalled_body_is_dropped_at_read_timeout(self, server_address):
        host, port = server_address
        client = SlowClient(host, port)
        # Claim a large body, send one byte, stall.  The 1s read timeout
        # must close the connection instead of pinning the worker.
        client.send_partial_post("/explain", total_length=4096)
        assert client.server_closed(within=10)
        client.close()

    def test_server_survives_a_dropped_client(self, server_address):
        host, port = server_address
        client = SlowClient(host, port)
        client.send_partial_post("/explain", total_length=4096)
        client.close()  # disconnect mid-body
        status, body, _ = post(
            f"http://{host}:{port}/explain", {"record": 0}
        )
        assert status == 200 and body["ok"] is True


class TestDegradation:
    def test_overloaded_service_sheds_with_429_and_healthz_503(
        self, beer_matcher, beer_dataset
    ):
        import tests.service.test_lifecycle as lifecycle

        gated = lifecycle.GatedMatcher(beer_matcher)
        service = ExplanationService(
            gated, config=ServiceConfig(n_workers=1, shed_threshold=1)
        )
        server = serve_http(service, beer_dataset, DEFAULTS, port=0)
        host, port = start(server)
        url = f"http://{host}:{port}"
        try:
            # Saturate: one computing, one queued.
            service.submit(
                ExplainRequest(pair=beer_dataset[0], **DEFAULTS)
            )
            assert gated.entered.wait(timeout=10)
            service.submit(
                ExplainRequest(pair=beer_dataset[1], **DEFAULTS)
            )
            status, body, headers = post(f"{url}/explain", {"record": 2})
            assert status == 429
            assert body["code"] == "overloaded"
            assert float(body["retry_after"]) > 0
            assert int(headers["Retry-After"]) >= 1
            health_status, health, _ = get_healthz(url)
            assert health_status == 503
            assert health["ok"] is False
            assert health["degraded"] == "overloaded"
        finally:
            gated.release.set()
            server.shutdown()
            server.server_close()
            service.close()

    def test_draining_service_reports_503(self, beer_matcher, beer_dataset):
        service = ExplanationService(
            beer_matcher, config=ServiceConfig(n_workers=1)
        )
        server = serve_http(service, beer_dataset, DEFAULTS, port=0)
        host, port = start(server)
        url = f"http://{host}:{port}"
        try:
            status, health, _ = get_healthz(url)
            assert status == 200 and health["ok"] is True
            service.close()
            status, health, _ = get_healthz(url)
            assert status == 503
            assert health["degraded"] == "draining"
        finally:
            server.shutdown()
            server.server_close()
            service.close()


def get_healthz(url):
    try:
        with urllib.request.urlopen(f"{url}/healthz", timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers
