"""Tests for the persistent explanation store.

The store's contract: a valid entry is served byte-for-byte; anything
else — absent, expired, corrupt, truncated, stale-format — is deleted and
reported as a miss so the service recomputes it.
"""

import json
import sqlite3

import pytest

from repro.config import StoreConfig
from repro.service.store import (
    STORE_DB_NAME,
    STORE_FORMAT_VERSION,
    ExplanationStore,
)


def payload_for(index: int) -> dict:
    return {"format_version": 1, "key": f"k{index}", "value": index}


class FakeClock:
    """A manually advanced epoch clock for deterministic TTL tests."""

    def __init__(self, start: float = 1_000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def store(tmp_path):
    with ExplanationStore(tmp_path / "store") as s:
        yield s


class TestRoundTrip:
    def test_put_get(self, store):
        store.put("k1", payload_for(1))
        assert store.get("k1") == payload_for(1)
        assert store.stats.hits == 1
        assert store.stats.puts == 1

    def test_miss(self, store):
        assert store.get("absent") is None
        assert store.stats.misses == 1

    def test_overwrite(self, store):
        store.put("k1", payload_for(1))
        store.put("k1", payload_for(2))
        assert store.get("k1") == payload_for(2)
        assert len(store) == 1

    def test_persists_across_reopen(self, tmp_path):
        with ExplanationStore(tmp_path / "store") as first:
            first.put("k1", payload_for(1))
        with ExplanationStore(tmp_path / "store") as second:
            assert second.get("k1") == payload_for(1)

    def test_contains_does_not_touch_counters(self, store):
        store.put("k1", payload_for(1))
        assert store.contains("k1")
        assert not store.contains("absent")
        assert store.stats.hits == 0
        assert store.stats.misses == 0


class TestLRUEviction:
    def test_capacity_bound(self, tmp_path):
        clock = FakeClock()
        store = ExplanationStore(
            tmp_path / "store", StoreConfig(max_entries=3), clock=clock
        )
        for index in range(5):
            clock.advance(1)
            store.put(f"k{index}", payload_for(index))
        assert len(store) == 3
        assert store.stats.evictions == 2
        # The two oldest-accessed entries are the ones evicted.
        assert store.get("k0") is None
        assert store.get("k1") is None
        assert store.get("k4") == payload_for(4)

    def test_get_refreshes_recency(self, tmp_path):
        clock = FakeClock()
        store = ExplanationStore(
            tmp_path / "store", StoreConfig(max_entries=2), clock=clock
        )
        clock.advance(1)
        store.put("old", payload_for(0))
        clock.advance(1)
        store.put("new", payload_for(1))
        clock.advance(1)
        assert store.get("old") is not None  # touch: old is now most recent
        clock.advance(1)
        store.put("newest", payload_for(2))
        assert store.get("old") is not None
        assert store.get("new") is None


class TestTTL:
    def test_expired_entry_is_a_miss(self, tmp_path):
        clock = FakeClock()
        store = ExplanationStore(
            tmp_path / "store",
            StoreConfig(ttl_seconds=60.0),
            clock=clock,
        )
        store.put("k1", payload_for(1))
        clock.advance(30)
        assert store.get("k1") == payload_for(1)
        clock.advance(61)
        assert store.get("k1") is None
        assert store.stats.expirations == 1
        assert len(store) == 0  # expired rows are deleted, not kept

    def test_no_ttl_never_expires(self, tmp_path):
        clock = FakeClock()
        store = ExplanationStore(tmp_path / "store", clock=clock)
        store.put("k1", payload_for(1))
        clock.advance(10_000_000)
        assert store.get("k1") == payload_for(1)


class TestCorruption:
    def _tamper(self, store, key: str, **columns) -> None:
        sets = ", ".join(f"{name} = ?" for name in columns)
        with sqlite3.connect(str(store.path)) as conn:
            conn.execute(
                f"UPDATE explanations SET {sets} WHERE key = ?",
                (*columns.values(), key),
            )
            conn.commit()

    def test_bit_flip_detected(self, store):
        store.put("k1", payload_for(1))
        text = json.dumps(payload_for(999))
        self._tamper(store, "k1", payload=text)
        assert store.get("k1") is None  # checksum mismatch, not wrong data
        assert store.stats.corruptions == 1
        assert len(store) == 0

    def test_truncated_payload_detected(self, store):
        store.put("k1", payload_for(1))
        self._tamper(store, "k1", payload='{"format_version": 1, "ke')
        assert store.get("k1") is None
        assert store.stats.corruptions == 1

    def test_stale_format_version_recomputed(self, store):
        store.put("k1", payload_for(1))
        self._tamper(store, "k1", format_version=STORE_FORMAT_VERSION + 1)
        assert store.get("k1") is None
        assert store.stats.corruptions == 1

    def test_corrupt_entry_can_be_rewritten(self, store):
        store.put("k1", payload_for(1))
        self._tamper(store, "k1", payload="garbage")
        assert store.get("k1") is None
        store.put("k1", payload_for(1))
        assert store.get("k1") == payload_for(1)


class TestBatchWrites:
    """put_many/get_many: one transaction per chunk, unchanged semantics."""

    def test_put_many_round_trip(self, store):
        n = store.put_many([(f"k{i}", payload_for(i)) for i in range(4)])
        assert n == 4
        assert store.stats.puts == 4
        for i in range(4):
            assert store.get(f"k{i}") == payload_for(i)

    def test_put_many_empty_is_noop(self, store):
        assert store.put_many([]) == 0
        assert store.stats.puts == 0

    def test_batch_eviction_matches_sequential(self, tmp_path):
        """Same clock, same keys: batch and sequential puts leave the
        identical surviving set and identical eviction count."""
        config = StoreConfig(max_entries=3)
        clock_a, clock_b = FakeClock(), FakeClock()
        sequential = ExplanationStore(
            tmp_path / "seq", config, clock=clock_a
        )
        batch = ExplanationStore(tmp_path / "batch", config, clock=clock_b)
        items = [(f"k{i}", payload_for(i)) for i in range(7)]
        for key, payload in items:
            sequential.put(key, payload)
        batch.put_many(items)
        assert sorted(batch.keys()) == sorted(sequential.keys())
        assert len(batch) == len(sequential) == 3
        assert batch.stats.evictions == sequential.stats.evictions == 4
        assert batch.stats.puts == sequential.stats.puts == 7
        sequential.close()
        batch.close()

    def test_batch_ttl_matches_sequential(self, tmp_path):
        """Rows written by put_many expire on the same schedule as put."""
        clock = FakeClock()
        store = ExplanationStore(
            tmp_path / "store", StoreConfig(ttl_seconds=60.0), clock=clock
        )
        store.put("seq", payload_for(0))
        store.put_many([("bat", payload_for(1))])
        clock.advance(30)
        assert store.get("seq") is not None
        assert store.get("bat") is not None
        clock.advance(61)
        assert store.get("seq") is None
        assert store.get("bat") is None
        assert store.stats.expirations == 2
        store.close()

    def test_get_many_hits_and_misses(self, store):
        store.put_many([("a", payload_for(1)), ("b", payload_for(2))])
        found = store.get_many(["a", "b", "absent", "gone"])
        assert found == {"a": payload_for(1), "b": payload_for(2)}
        assert store.stats.hits == 2
        assert store.stats.misses == 2

    def test_get_many_refreshes_recency(self, tmp_path):
        clock = FakeClock()
        store = ExplanationStore(
            tmp_path / "store", StoreConfig(max_entries=2), clock=clock
        )
        clock.advance(1)
        store.put("old", payload_for(0))
        clock.advance(1)
        store.put("new", payload_for(1))
        clock.advance(1)
        assert "old" in store.get_many(["old"])  # touch refreshes LRU
        clock.advance(1)
        store.put("newest", payload_for(2))
        assert store.get("old") is not None
        assert store.get("new") is None
        store.close()

    def test_get_many_skips_expired(self, tmp_path):
        clock = FakeClock()
        store = ExplanationStore(
            tmp_path / "store", StoreConfig(ttl_seconds=10.0), clock=clock
        )
        store.put("k", payload_for(1))
        clock.advance(11)
        assert store.get_many(["k"]) == {}
        assert store.stats.expirations == 1
        store.close()

    def test_put_many_persists_across_reopen(self, tmp_path):
        with ExplanationStore(tmp_path / "store") as first:
            first.put_many([("k1", payload_for(1)), ("k2", payload_for(2))])
        with ExplanationStore(tmp_path / "store") as second:
            assert second.get("k2") == payload_for(2)

    def test_put_many_recovers_from_corrupt_file(self, tmp_path):
        store = ExplanationStore(tmp_path / "store")
        store.put("k0", payload_for(0))
        # Simulate mid-run file damage: swap the connection for one whose
        # backing file has been replaced by garbage.
        store._conn.close()
        store.path.write_bytes(b"this is not a database")
        store._conn = sqlite3.connect(str(store.path))
        store.put_many([("k1", payload_for(1))])
        assert store.stats.recoveries == 1
        assert store.get("k1") == payload_for(1)
        assert list(tmp_path.glob("store/*.corrupt-*"))
        store.close()


class TestIntrospection:
    def test_keys_most_recent_first(self, tmp_path):
        clock = FakeClock()
        store = ExplanationStore(tmp_path / "store", clock=clock)
        for index in range(3):
            clock.advance(1)
            store.put(f"k{index}", payload_for(index))
        assert store.keys() == ["k2", "k1", "k0"]

    def test_clear(self, store):
        store.put("k1", payload_for(1))
        store.clear()
        assert len(store) == 0

    def test_hit_rate(self, store):
        store.put("k1", payload_for(1))
        store.get("k1")
        store.get("absent")
        assert store.stats.hit_rate == 0.5

    def test_db_file_location(self, tmp_path):
        store = ExplanationStore(tmp_path / "store")
        assert store.path == tmp_path / "store" / STORE_DB_NAME
        assert store.path.exists()
        store.close()
