"""Queue-wait estimation and Retry-After hints, including the
zero-live-workers window a drain or shard restart opens."""

from __future__ import annotations

import math

from repro.service.service import (
    MAX_WAIT_ESTIMATE,
    estimate_queue_wait,
    retry_after_hint,
)


class TestEstimateQueueWait:
    def test_steady_state(self):
        assert estimate_queue_wait(10, 0.5, 2) == 2.5

    def test_empty_queue_is_zero(self):
        assert estimate_queue_wait(0, 0.5, 2) == 0.0

    def test_no_latency_history_is_zero(self):
        assert estimate_queue_wait(10, 0.0, 2) == 0.0

    def test_zero_workers_saturates_instead_of_dividing(self):
        # The drain / shard-restart window: work is pending but no
        # worker thread is alive.  The estimate must stay finite and
        # bounded, not raise ZeroDivisionError or return infinity.
        assert estimate_queue_wait(10, 0.5, 0) == MAX_WAIT_ESTIMATE
        assert estimate_queue_wait(1, 0.001, -1) == MAX_WAIT_ESTIMATE

    def test_zero_workers_with_empty_queue_is_still_zero(self):
        assert estimate_queue_wait(0, 0.5, 0) == 0.0

    def test_estimate_is_clamped(self):
        assert estimate_queue_wait(10_000, 100.0, 1) == MAX_WAIT_ESTIMATE

    def test_hostile_inputs_are_normalised(self):
        assert estimate_queue_wait(-5, 0.5, 2) == 0.0
        assert estimate_queue_wait(5, float("nan"), 2) == 0.0
        assert estimate_queue_wait(5, float("inf"), 2) == 0.0
        assert estimate_queue_wait(5, -1.0, 2) == 0.0

    def test_always_finite(self):
        for pending in (0, 1, 10**9):
            for ema in (0.0, 1e-9, 1e9, float("inf"), float("nan")):
                for workers in (-1, 0, 1, 64):
                    value = estimate_queue_wait(pending, ema, workers)
                    assert math.isfinite(value)
                    assert 0.0 <= value <= MAX_WAIT_ESTIMATE


class TestRetryAfterHint:
    def test_half_the_estimated_wait(self):
        assert retry_after_hint(10.0) == 5.0

    def test_floor_of_100ms(self):
        assert retry_after_hint(0.01) == 0.1

    def test_zero_or_unknown_defaults_to_one_second(self):
        assert retry_after_hint(0.0) == 1.0
        assert retry_after_hint(-3.0) == 1.0
        assert retry_after_hint(float("nan")) == 1.0
        assert retry_after_hint(float("inf")) == 1.0

    def test_clamped_to_max(self):
        assert retry_after_hint(1e9) == MAX_WAIT_ESTIMATE
