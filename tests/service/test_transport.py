"""The shard fleet's wire layer: framing, dialing, fleet configs, liveness.

Everything here is cheap — raw sockets and fakes, no shard processes and
no trained matchers — so the failure modes of the transport (corrupt
frames, slow accepts, skewed clocks) get exact, fast regression tests.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.service.router import HashRing
from repro.service.shard import ShardSpec
from repro.service.supervisor import _ShardHandle
from repro.service.transport import (
    SHARD_MAGIC,
    FleetConfig,
    FleetShard,
    FrameConnection,
    PipeShardTransport,
    TcpShardTransport,
    connect_with_retry,
    load_fleet_config,
    parse_fleet_config,
)


def _pair() -> tuple[FrameConnection, FrameConnection]:
    left, right = socket.socketpair()
    return FrameConnection(left), FrameConnection(right)


class TestFrameConnection:
    def test_round_trip_preserves_payload(self):
        a, b = _pair()
        try:
            message = {"kind": "request", "key": "k" * 64, "n": [1, 2, 3]}
            a.send(message)
            assert b.recv() == message
            b.send({"kind": "response", "ok": True})
            assert a.recv() == {"kind": "response", "ok": True}
        finally:
            a.close()
            b.close()

    def test_clean_eof_raises_eoferror_like_a_pipe(self):
        a, b = _pair()
        a.close()
        with pytest.raises(EOFError):
            b.recv()
        b.close()

    def test_bad_magic_is_connection_error_not_hang(self):
        left, right = socket.socketpair()
        conn = FrameConnection(right)
        # A frame stamped with a magic no sub-protocol uses: the reader
        # must classify the stream as corrupt and mark itself dead.
        left.sendall(b"XXXX" + struct.pack("!I", 4) + b"junk")
        with pytest.raises(ConnectionError, match="corrupt shard frame"):
            conn.recv()
        assert conn.closed
        left.close()
        conn.close()

    def test_oversized_claimed_length_is_rejected(self):
        left, right = socket.socketpair()
        conn = FrameConnection(right)
        # Correct magic, absurd length: must fail fast, never allocate.
        left.sendall(SHARD_MAGIC + struct.pack("!I", 2**32 - 1))
        with pytest.raises(ConnectionError, match="corrupt shard frame"):
            conn.recv()
        left.close()
        conn.close()

    def test_send_after_close_raises(self):
        a, b = _pair()
        a.close()
        with pytest.raises(OSError):
            a.send({"kind": "heartbeat"})
        b.close()


class TestConnectWithRetry:
    def test_retries_until_a_late_listener_accepts(self):
        """Satellite: a slow-starting host must not eat the whole budget.

        The listener only starts ~0.6s after the first dial, so the
        first attempt(s) fail with connection-refused; per-attempt
        timeouts plus jittered retries must land the connection well
        inside the overall budget.
        """
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        accepted = []

        def _late_listener() -> None:
            time.sleep(0.6)
            listener = socket.socket()
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)
            sock, _ = listener.accept()
            accepted.append(sock)
            listener.close()

        thread = threading.Thread(target=_late_listener, daemon=True)
        thread.start()
        started = time.monotonic()
        sock = connect_with_retry(
            "127.0.0.1", port, attempt_timeout=0.5, budget=15.0, seed=3
        )
        elapsed = time.monotonic() - started
        sock.close()
        thread.join(5.0)
        assert accepted, "the late listener never accepted"
        assert 0.5 <= elapsed < 10.0
        accepted[0].close()

    def test_budget_exhaustion_is_connection_error(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started = time.monotonic()
        with pytest.raises(ConnectionError, match="within"):
            connect_with_retry(
                "127.0.0.1", port, attempt_timeout=0.2, budget=0.7, seed=0
            )
        assert time.monotonic() - started < 5.0

    def test_stop_event_aborts_the_dial(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        stop = threading.Event()
        stop.set()
        with pytest.raises(ConnectionError):
            connect_with_retry(
                "127.0.0.1", port, attempt_timeout=0.2, budget=30.0, stop=stop
            )


class TestAdoptAck:
    def test_swallowed_handshake_fails_the_launch_fast(self):
        """A partition that accepts the connect but eats the adopt frame
        must fail ``launch`` within ``connect_timeout`` — not wedge the
        shard in "starting" until the supervisor's ready timeout.
        """
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        taken: list[socket.socket] = []

        def silent_accept() -> None:
            sock, _ = listener.accept()
            taken.append(sock)  # read nothing, reply with nothing

        thread = threading.Thread(target=silent_accept, daemon=True)
        thread.start()
        spec = ShardSpec.__new__(ShardSpec)
        object.__setattr__(spec, "shard_id", 0)
        transport = TcpShardTransport(
            "127.0.0.1", port, connect_timeout=0.4, connect_budget=2.0
        )
        started = time.monotonic()
        with pytest.raises(ConnectionError, match="acknowledge"):
            transport.launch(spec)
        assert time.monotonic() - started < 5.0
        assert not transport.alive()
        listener.close()
        for sock in taken:
            sock.close()

    def test_fatal_first_reply_is_a_refused_launch(self):
        """A host refusing the handshake answers ``fatal`` — the launch
        must surface the refusal, not wait for an ack that never comes.
        """
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def refuse() -> None:
            sock, _ = listener.accept()
            conn = FrameConnection(sock)
            try:
                conn.recv()
                conn.send(
                    {"kind": "fatal", "code": "bad_request", "error": "nope"}
                )
            finally:
                conn.close()

        thread = threading.Thread(target=refuse, daemon=True)
        thread.start()
        spec = ShardSpec.__new__(ShardSpec)
        object.__setattr__(spec, "shard_id", 0)
        transport = TcpShardTransport(
            "127.0.0.1", port, connect_timeout=2.0, connect_budget=2.0
        )
        with pytest.raises(ConnectionError, match="refused adoption"):
            transport.launch(spec)
        thread.join(5.0)
        listener.close()


class TestFleetConfig:
    def test_parse_round_trip(self, tmp_path):
        data = {
            "shards": [
                {"id": 0, "host": "10.0.0.1", "port": 9301},
                {"id": 1, "host": "10.0.0.2", "port": 9301},
            ],
            "standbys": [{"host": "10.0.0.9", "port": 9301}],
            "quorum": 2,
        }
        fleet = parse_fleet_config(data)
        assert fleet.n_shards == 2
        assert fleet.shards[1].address == "10.0.0.2:9301"
        assert fleet.standbys[0].shard_id == -1
        assert fleet.quorum == 2
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(data))
        assert load_fleet_config(path) == fleet

    def test_ids_must_be_contiguous_from_zero(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(
                shards=(
                    FleetShard(shard_id=0, host="a", port=1),
                    FleetShard(shard_id=2, host="b", port=1),
                )
            )

    def test_quorum_must_be_achievable(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(
                shards=(FleetShard(shard_id=0, host="a", port=1),),
                quorum=2,
            )

    def test_empty_fleet_is_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_fleet_config({"shards": []})

    def test_malformed_entries_are_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            parse_fleet_config({"shards": [{"id": 0, "host": "a"}]})
        path = tmp_path / "fleet.json"
        path.write_text("not json")
        with pytest.raises(ConfigurationError):
            load_fleet_config(path)


def _handle() -> _ShardHandle:
    spec = ShardSpec.__new__(ShardSpec)  # liveness needs no real spec
    import multiprocessing

    return _ShardHandle(
        spec, PipeShardTransport(multiprocessing.get_context("spawn"))
    )


class TestReceiverClockLiveness:
    """Satellite: heartbeat staleness is judged on *arrival* time only.

    A shard host with a wildly wrong wall clock (hours of skew, or a
    clock that jumps during the run) must be exactly as live as one with
    a perfect clock — the sender timestamp is a diagnostic, never an
    input to the staleness decision.
    """

    def test_liveness_ignores_sender_clock_entirely(self):
        handle = _handle()
        arrival = 1000.0
        wall = 2_000_000.0
        for skew in (0.0, -7200.0, 7200.0):  # perfect, behind, ahead
            handle.last_heartbeat = 0.0
            handle.record_heartbeat(
                arrival, sent_at=wall - skew, wall_now=wall
            )
            assert handle.last_heartbeat == arrival

    def test_skew_is_surfaced_as_a_diagnostic(self):
        handle = _handle()
        wall = 2_000_000.0
        handle.record_heartbeat(5.0, sent_at=wall - 3600.0, wall_now=wall)
        assert handle.clock_skew == pytest.approx(3600.0)
        handle.record_heartbeat(6.0, sent_at=wall + 120.0, wall_now=wall)
        assert handle.clock_skew == pytest.approx(-120.0)

    def test_heartbeat_without_timestamp_still_refreshes(self):
        # Pipe shards predate sent_at; their heartbeats must keep working.
        handle = _handle()
        handle.record_heartbeat(42.0)
        assert handle.last_heartbeat == 42.0
        assert handle.clock_skew is None


class TestPreferenceOrder:
    """Satellite: the ring's failover order is deterministic and total."""

    def test_preference_is_deterministic_and_complete(self):
        ring = HashRing(range(4), virtual_nodes=64)
        again = HashRing(range(4), virtual_nodes=64)
        for key in ("alpha", "beta", "gamma", "delta" * 16):
            order = ring.preference(key)
            assert order == again.preference(key)
            assert sorted(order) == [0, 1, 2, 3]
            assert order[0] == ring.owner(key)

    def test_first_fallback_is_stable_across_calls(self):
        ring = HashRing(range(3), virtual_nodes=64)
        key = "some-request-key"
        fallback = ring.preference(key)[1]
        for _ in range(10):
            assert ring.preference(key)[1] == fallback
