"""Cross-host fleet serving: TCP adoption, partitions, host loss, quorum.

The shard hosts here are real :class:`ShardServer` instances serving the
real ``RSF1`` TCP protocol — but they run as threads *inside* the test
process, so a whole fleet boots in milliseconds with no child imports.
The supervisor still dials them over real sockets (through a
:class:`ChaosProxy` where the drill needs a partition), so everything
from the adopt handshake to heartbeat silence detection is exercised on
the wire.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.config import ShardConfig
from repro.exceptions import HostLostError, ShardFailedError
from repro.service import (
    ExplainRequest,
    ExplanationService,
    ShardedService,
    ShardServer,
)
from repro.service.transport import (
    SHARD_PROTOCOL_VERSION,
    FleetConfig,
    FleetShard,
    FrameConnection,
    connect_with_retry,
)
from repro.testing.chaos import ChaosProxy

SAMPLES = 24

#: Fast supervision for fleet tests: quick heartbeats, short connect
#: budgets so a dead host is declared lost within a couple of seconds.
FAST_FLEET = dict(
    heartbeat_interval=0.05,
    heartbeat_timeout=1.5,
    check_interval=0.05,
    restart_backoff_base=0.2,
    restart_backoff_max=0.5,
    connect_timeout=0.5,
    connect_budget=0.5,
    host_loss_after=2,
)


def _request(pair, **overrides) -> ExplainRequest:
    defaults = dict(pair=pair, method="single", samples=SAMPLES, seed=0)
    defaults.update(overrides)
    return ExplainRequest(**defaults)


def _request_for_shard(service, dataset, shard_id, **overrides):
    for pair in dataset:
        request = _request(pair, **overrides)
        if service.shard_for(request) == shard_id:
            return request
    raise AssertionError(f"no record routes to shard {shard_id}")


def _wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _start_servers(n: int, store_root=None) -> list[ShardServer]:
    servers = []
    for index in range(n):
        server = ShardServer(
            store_dir=(
                None if store_root is None else store_root / f"host{index}"
            )
        )
        threading.Thread(
            target=server.serve_forever,
            daemon=True,
            name=f"test-shard-host-{index}",
        ).start()
        servers.append(server)
    return servers


def _fleet(shards: list[ShardServer], standbys=(), quorum=None) -> FleetConfig:
    return FleetConfig(
        shards=tuple(
            FleetShard(shard_id=i, host=s.host, port=s.port)
            for i, s in enumerate(shards)
        ),
        standbys=tuple(
            FleetShard(shard_id=-1, host=s.host, port=s.port)
            for s in standbys
        ),
        quorum=quorum,
    )


class TestTcpAdoption:
    def test_tcp_fleet_matches_pipe_bit_for_bit(
        self, beer_matcher, non_match_pair
    ):
        request = _request(non_match_pair, method="both")
        with ExplanationService(beer_matcher) as single:
            expected = single.explain(request)
        servers = _start_servers(2)
        try:
            with ShardedService(
                beer_matcher,
                shard_config=ShardConfig(n_shards=2, **FAST_FLEET),
                fleet=_fleet(servers),
            ) as fleet_service:
                got = fleet_service.explain(request, timeout=120)
                # Fleet-mode health carries the per-host view; the
                # clock-skew diagnostic appears with the first heartbeat.
                assert _wait_for(
                    lambda: all(
                        "clock_skew" in s
                        for s in fleet_service.health()[1]["shards"].values()
                    )
                )
                status, health = fleet_service.health()
            assert got == expected
            assert status == 200
            assert set(health["hosts"]) == {s.address for s in servers}
            for shard in health["shards"].values():
                assert "host" in shard and "clock_skew" in shard
            assert health["quorum"] == 2  # majority of 2
        finally:
            for server in servers:
                server.close()

    def test_drain_on_close_shuts_down_the_hosts(
        self, beer_matcher, match_pair
    ):
        servers = _start_servers(1)
        try:
            with ShardedService(
                beer_matcher,
                shard_config=ShardConfig(n_shards=1, **FAST_FLEET),
                fleet=_fleet(servers, quorum=1),
            ) as service:
                assert service.explain(_request(match_pair), timeout=120)
            # The supervisor's drain decommissions the host: its process
            # (here: thread) exits instead of lingering warm.
            assert _wait_for(lambda: servers[0]._stop.is_set(), timeout=10.0)
        finally:
            for server in servers:
                server.close()

    def test_non_adopt_first_frame_is_refused_with_fatal(self):
        servers = _start_servers(1)
        try:
            sock = connect_with_retry(
                servers[0].host, servers[0].port, attempt_timeout=2.0,
                budget=10.0,
            )
            conn = FrameConnection(sock)
            conn.send({"kind": "request", "protocol": SHARD_PROTOCOL_VERSION})
            reply = conn.recv()
            assert reply["kind"] == "fatal"
            assert reply["code"] == "bad_request"
            with pytest.raises(EOFError):
                conn.recv()
            conn.close()
        finally:
            for server in servers:
                server.close()


class TestPartitionTolerance:
    def test_partition_is_detected_and_heal_reconnects_warm(
        self, beer_matcher, beer_dataset
    ):
        servers = _start_servers(2)
        proxy = ChaosProxy(servers[0].host, servers[0].port)
        proxy.start()
        proxied = FleetConfig(
            shards=(
                FleetShard(shard_id=0, host=proxy.host, port=proxy.port),
                FleetShard(
                    shard_id=1, host=servers[1].host, port=servers[1].port
                ),
            ),
            quorum=1,
        )
        try:
            with ShardedService(
                beer_matcher,
                shard_config=ShardConfig(n_shards=2, **FAST_FLEET),
                fleet=proxied,
            ) as service:
                request = _request_for_shard(service, beer_dataset, 0)
                before = service.explain(request, timeout=120)

                proxy.partition()
                # Silence, not resets: only missed heartbeats can catch
                # it.  One partitioned host reads degraded, not down.
                assert _wait_for(
                    lambda: service.health()[1]["shards"]["0"]["state"]
                    != "live"
                )
                status, health = service.health()
                assert status == 200 and health["ok"] is True
                assert proxy.dropped_chunks > 0

                proxy.heal()
                assert _wait_for(
                    lambda: service.health()[1]["shards"]["0"]["state"]
                    == "live"
                )
                after = service.explain(request, timeout=120)
                assert after == before
            # The host was re-adopted (preempting the half-open zombie
            # connection) and reused its warm service: same spec, no
            # rebuild.
            assert servers[0].adoptions >= 2
            assert servers[0].warm_reuses >= 1
        finally:
            proxy.close()
            for server in servers:
                server.close()

    def test_inflight_requests_survive_reroute_and_stay_coalesced(
        self, beer_matcher, beer_dataset
    ):
        """Satellite: preference-order re-route without duplicate work.

        Three identical requests are stranded on a partitioned shard;
        the supervisor must fail them over to the ring's *predicted*
        next-preference shard, where they coalesce onto one computation.
        """
        servers = _start_servers(2)
        proxy = ChaosProxy(servers[0].host, servers[0].port)
        proxy.start()
        proxied = FleetConfig(
            shards=(
                FleetShard(shard_id=0, host=proxy.host, port=proxy.port),
                FleetShard(
                    shard_id=1, host=servers[1].host, port=servers[1].port
                ),
            ),
        )
        try:
            with ShardedService(
                beer_matcher,
                shard_config=ShardConfig(n_shards=2, **FAST_FLEET),
                fleet=proxied,
            ) as service:
                request = _request_for_shard(service, beer_dataset, 0)
                key = service.key_for(request)
                assert service._ring.preference(key)[1] == 1

                proxy.partition()
                futures = [service.submit(request) for _ in range(3)]
                results = [f.result(timeout=120) for f in futures]
                assert all(r == results[0] for r in results)

                stats = service.stats_payload()
                shard1 = stats["shards"]["1"]["service"]
                # All three re-routed to the predicted fallback (shard 0
                # is partitioned and absent from live stats)...
                assert shard1["requests"] == 3
                assert "0" not in stats["shards"]
                # ...and coalesced there instead of recomputing.
                assert shard1["coalesced"] >= 1
        finally:
            proxy.close()
            for server in servers:
                server.close()


class TestHostLoss:
    def test_lost_host_is_replaced_by_a_standby(
        self, beer_matcher, beer_dataset
    ):
        servers = _start_servers(3)  # 2 shards + 1 standby
        shard_servers, standby = servers[:2], servers[2]
        lost_address = shard_servers[1].address
        try:
            with ShardedService(
                beer_matcher,
                shard_config=ShardConfig(n_shards=2, **FAST_FLEET),
                fleet=_fleet(shard_servers, standbys=[standby]),
            ) as service:
                request = _request_for_shard(service, beer_dataset, 1)
                before = service.explain(request, timeout=120)

                # The whole host dies: connection drops AND reconnects
                # are refused, which is what distinguishes host loss
                # from a shard crash.
                shard_servers[1].close()
                assert _wait_for(lambda: standby.adoptions >= 1)
                assert _wait_for(
                    lambda: service.health()[1]["shards"]["1"]["state"]
                    == "live"
                )
                status, health = service.health()
                assert status == 200
                assert lost_address in health["lost_hosts"]
                assert health["standbys_available"] == 0
                assert health["shards"]["1"]["host"] == standby.address

                # The replacement built cold and serves shard 1's keys
                # with byte-identical results.
                assert standby.rebuilds >= 1
                after = service.explain(request, timeout=120)
                assert after == before
        finally:
            for server in servers:
                server.close()

    def test_quorum_loss_is_503_and_one_host_down_is_degraded(
        self, beer_matcher
    ):
        servers = _start_servers(2)
        try:
            with ShardedService(
                beer_matcher,
                shard_config=ShardConfig(n_shards=2, **FAST_FLEET),
                fleet=_fleet(servers, quorum=2),
            ) as service:
                status, _ = service.health()
                assert status == 200
                servers[1].close()
                # Below quorum: the fleet reports down, not degraded.
                assert _wait_for(lambda: service.health()[0] == 503)
                status, health = service.health()
                assert health["reason"] == "quorum_lost"
                assert health["shards"]["1"]["state"] != "live"
        finally:
            for server in servers:
                server.close()

    def test_unreplaceable_lost_host_fails_requests_as_host_lost(
        self, beer_matcher, beer_dataset
    ):
        servers = _start_servers(1)
        try:
            with ShardedService(
                beer_matcher,
                shard_config=ShardConfig(n_shards=1, **FAST_FLEET),
                fleet=_fleet(servers, quorum=1),
            ) as service:
                servers[0].close()
                # No standby: the host is declared lost but the shard
                # keeps retrying.  Waiters get the host-loss taxonomy
                # (retryable 503), never a generic crash or a hang.
                assert _wait_for(
                    lambda: service.health()[1].get("lost_hosts")
                )
                with pytest.raises(HostLostError) as excinfo:
                    service.submit(_request(beer_dataset[0]))
                assert excinfo.value.code == "host_lost"
                assert isinstance(excinfo.value, ShardFailedError)
        finally:
            for server in servers:
                server.close()
