"""Tests for the token-removal reliability evaluation (Table 2)."""

import numpy as np
import pytest

from repro.evaluation.methods import MethodExplainers
from repro.evaluation.token_eval import (
    TokenEvalResult,
    token_removal_eval,
    token_removal_trial,
)
from repro.exceptions import ConfigurationError
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def explained_single(beer_matcher, beer_dataset):
    explainers = MethodExplainers(beer_matcher, LimeConfig(n_samples=64, seed=0))
    pairs = beer_dataset.by_label(1).pairs[:6]
    return [explainers.explain("single", pair) for pair in pairs]


class TestTrial:
    def test_returns_probability_pair(self, explained_single, beer_matcher):
        rng = np.random.default_rng(0)
        p_new, p_est = token_removal_trial(explained_single[0], beer_matcher, rng)
        assert 0.0 <= p_new <= 1.0
        assert np.isfinite(p_est)

    def test_removes_at_least_one_token(self, explained_single, beer_matcher):
        # Even with a tiny fraction, one token must go.
        rng = np.random.default_rng(0)
        p_new, _ = token_removal_trial(
            explained_single[0], beer_matcher, rng, fraction=0.01
        )
        original = beer_matcher.predict_one(explained_single[0].pair)
        # With a token removed the probability may change; at minimum the
        # call must have produced a valid probability.
        assert 0.0 <= p_new <= 1.0
        del original

    def test_cached_original_probability_respected(
        self, explained_single, beer_matcher
    ):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        _, est_a = token_removal_trial(
            explained_single[0], beer_matcher, rng_a, original_probability=0.9
        )
        _, est_b = token_removal_trial(
            explained_single[0], beer_matcher, rng_b, original_probability=0.5
        )
        assert est_a - est_b == pytest.approx(0.4)


class TestAggregate:
    def test_result_shape(self, explained_single, beer_matcher):
        result = token_removal_eval(explained_single, beer_matcher, seed=0)
        assert isinstance(result, TokenEvalResult)
        assert result.n_trials == len(explained_single)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.mae >= 0.0

    def test_trials_per_record(self, explained_single, beer_matcher):
        result = token_removal_eval(
            explained_single, beer_matcher, trials_per_record=3, seed=0
        )
        assert result.n_trials == 3 * len(explained_single)

    def test_deterministic(self, explained_single, beer_matcher):
        a = token_removal_eval(explained_single, beer_matcher, seed=5)
        b = token_removal_eval(explained_single, beer_matcher, seed=5)
        assert a == b

    def test_empty_input(self, beer_matcher):
        result = token_removal_eval([], beer_matcher)
        assert result.n_trials == 0
        assert result.accuracy == 0.0

    def test_invalid_trials(self, explained_single, beer_matcher):
        with pytest.raises(ConfigurationError):
            token_removal_eval(explained_single, beer_matcher, trials_per_record=0)

    def test_faithful_surrogate_scores_well(self, explained_single, beer_matcher):
        # Landmark single on match records is the paper's most reliable
        # configuration; it must beat coin-flip accuracy comfortably here.
        result = token_removal_eval(explained_single, beer_matcher, seed=0)
        assert result.accuracy >= 0.5

    def test_as_row(self, explained_single, beer_matcher):
        row = token_removal_eval(explained_single, beer_matcher, seed=0).as_row()
        assert set(row) == {"accuracy", "mae", "n"}
