"""Tests for result persistence (JSON round trip, diffing) and statistics."""

import dataclasses
import math

import numpy as np
import pytest

from repro.config import ExperimentConfig
from repro.evaluation.persistence import (
    compare_results,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.evaluation.runner import BenchmarkResult, DatasetResult, MethodMetrics
from repro.evaluation.stats import (
    bootstrap_ci,
    paired_bootstrap_pvalue,
)
from repro.exceptions import ConfigurationError, DatasetError
from repro.matchers.evaluate import MatchQuality


def make_result(name="runA", accuracy=0.8) -> BenchmarkResult:
    config = ExperimentConfig(name=name, per_label=4, lime_samples=16, size_cap=100)
    result = BenchmarkResult(config=config)
    dataset_result = DatasetResult(
        code="S-BR",
        n_pairs=100,
        matcher_quality=MatchQuality(10, 1, 80, 9),
    )
    for label in (0, 1):
        for method in ("single", "lime"):
            dataset_result.metrics[(label, method)] = MethodMetrics(
                method=method,
                label=label,
                token_accuracy=accuracy,
                token_mae=0.1,
                kendall=0.5,
                interest=0.4,
                n_records=4,
                faithfulness=0.25,  # non-NaN so == comparisons are exact
            )
    result.datasets["S-BR"] = dataset_result
    return result


class TestPersistence:
    def test_round_trip_through_dict(self):
        original = make_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.config == original.config
        assert restored.codes == original.codes
        assert (
            restored.datasets["S-BR"].metrics[(1, "single")]
            == original.datasets["S-BR"].metrics[(1, "single")]
        )
        assert restored.datasets["S-BR"].matcher_quality == MatchQuality(10, 1, 80, 9)

    def test_round_trip_through_file(self, tmp_path):
        original = make_result()
        path = tmp_path / "run.json"
        save_result(original, path)
        restored = load_result(path)
        assert restored.datasets["S-BR"].n_pairs == 100

    def test_version_check(self):
        payload = result_to_dict(make_result())
        payload["format_version"] = 99
        with pytest.raises(DatasetError, match="format version"):
            result_from_dict(payload)

    def test_real_runner_output_round_trips(self, tmp_path):
        from repro.evaluation.runner import ExperimentRunner

        config = ExperimentConfig(
            name="tiny", per_label=2, lime_samples=16, size_cap=120,
            methods=("single", "lime"),
        )
        result = ExperimentRunner(config).run(["S-BR"])
        path = tmp_path / "real.json"
        save_result(result, path)
        restored = load_result(path)
        for key, metrics in result.datasets["S-BR"].metrics.items():
            restored_metrics = restored.datasets["S-BR"].metrics[key]
            for field in dataclasses.fields(metrics):
                original_value = getattr(metrics, field.name)
                restored_value = getattr(restored_metrics, field.name)
                if isinstance(original_value, float) and math.isnan(original_value):
                    assert math.isnan(restored_value), field.name
                else:
                    assert restored_value == original_value, field.name


class TestCompare:
    def test_deltas_reported(self):
        baseline = make_result("base", accuracy=0.8)
        candidate = make_result("cand", accuracy=0.9)
        text = compare_results(baseline, candidate)
        assert "'cand' minus 'base'" in text
        assert "0.100" in text

    def test_disjoint_datasets_skipped(self):
        baseline = make_result()
        candidate = BenchmarkResult(config=baseline.config)
        text = compare_results(baseline, candidate)
        assert "S-BR" not in text


class TestBootstrapCI:
    def test_contains_true_mean_of_tight_sample(self):
        values = [0.5] * 50
        interval = bootstrap_ci(values)
        assert interval.mean == 0.5
        assert interval.low == 0.5
        assert interval.high == 0.5
        assert 0.5 in interval

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(0)
        small = bootstrap_ci(rng.normal(size=10), seed=1)
        large = bootstrap_ci(rng.normal(size=1000), seed=1)
        assert (large.high - large.low) < (small.high - small.low)

    def test_single_value(self):
        interval = bootstrap_ci([0.7])
        assert interval.low == interval.high == 0.7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([], confidence=0.95)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_render(self):
        text = bootstrap_ci([0.1, 0.2, 0.3], seed=0).render()
        assert "95% CI" in text


class TestPairedBootstrap:
    def test_clear_winner_gets_small_pvalue(self):
        rng = np.random.default_rng(0)
        scores_b = rng.random(100) * 0.2
        scores_a = scores_b + 0.5
        assert paired_bootstrap_pvalue(scores_a, scores_b, seed=0) < 0.01

    def test_balanced_differences_near_half(self):
        # Differences alternate +1/−1 with mean exactly 0, so the resampled
        # mean difference is symmetric around 0 and the p-value sits at ~0.5.
        scores_b = np.zeros(200)
        scores_a = np.tile([1.0, -1.0], 100)
        p = paired_bootstrap_pvalue(scores_a, scores_b, seed=0)
        assert 0.3 < p < 0.7

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            paired_bootstrap_pvalue([1.0, 2.0], [1.0])
