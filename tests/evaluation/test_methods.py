"""Tests for the uniform method adapter."""

import pytest

from repro.config import ALL_METHODS
from repro.evaluation.methods import MethodExplainers
from repro.exceptions import ConfigurationError
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def explainers(beer_matcher):
    return MethodExplainers(beer_matcher, LimeConfig(n_samples=48, seed=0), seed=0)


class TestMethodExplainers:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_method_produces_token_weights(
        self, explainers, non_match_pair, method
    ):
        explained = explainers.explain(method, non_match_pair)
        assert explained.method == method
        assert len(explained.token_weights) > 0
        assert explained.pair is non_match_pair

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_attribute_importance_covers_schema(
        self, explainers, non_match_pair, method
    ):
        explained = explainers.explain(method, non_match_pair)
        assert set(explained.attribute_importance) == set(
            non_match_pair.schema.attributes
        )

    def test_unknown_method_rejected(self, explainers, match_pair):
        with pytest.raises(ConfigurationError):
            explainers.explain("anchors", match_pair)

    def test_dual_methods_return_two_removal_variants(
        self, explainers, non_match_pair
    ):
        explained = explainers.explain("double", non_match_pair)
        variants = explained.removal_pairs("negative")
        assert len(variants) == 2

    def test_baseline_methods_return_one_removal_variant(
        self, explainers, non_match_pair
    ):
        explained = explainers.explain("lime", non_match_pair)
        assert len(explained.removal_pairs("negative")) == 1

    def test_token_weights_cover_all_original_tokens(
        self, explainers, match_pair
    ):
        from repro.text.tokenize import Tokenizer

        tokenizer = Tokenizer()
        expected = sum(
            len(tokenizer.tokenize_entity(match_pair.entity(side)))
            for side in ("left", "right")
        )
        for method in ("single", "double", "lime"):
            explained = explainers.explain(method, match_pair)
            assert len(explained.token_weights) == expected, method

    def test_double_removal_keeps_injected_positives(
        self, explainers, beer_matcher, non_match_pair
    ):
        # After removing negative tokens from the double representation, the
        # pair should score markedly higher than the original non-match.
        explained = explainers.explain("double", non_match_pair)
        variants = explained.removal_pairs("negative")
        probabilities = beer_matcher.predict_proba(variants)
        original = beer_matcher.predict_one(non_match_pair)
        assert probabilities.max() > original


class TestAttributeDropMethod:
    def test_attr_drop_available_in_harness(self, explainers, non_match_pair):
        explained = explainers.explain("mojito_attr_drop", non_match_pair)
        assert explained.method == "mojito_attr_drop"
        assert len(explained.token_weights) > 0
        assert set(explained.attribute_importance) == set(
            non_match_pair.schema.attributes
        )

    def test_attr_drop_in_all_methods_but_not_paper_grid(self):
        from repro.config import ALL_METHODS, PAPER_METHODS

        assert "mojito_attr_drop" in ALL_METHODS
        assert "mojito_attr_drop" not in PAPER_METHODS

    def test_runner_accepts_attr_drop(self):
        from repro.config import ExperimentConfig
        from repro.data.records import NON_MATCH
        from repro.evaluation.runner import ExperimentRunner

        config = ExperimentConfig(
            name="attr", per_label=2, lime_samples=16, size_cap=120,
            methods=("mojito_attr_drop",),
        )
        result = ExperimentRunner(config).run(["S-BR"])
        assert result.datasets["S-BR"].get(NON_MATCH, "mojito_attr_drop") is not None
