"""Tests for the explanation-stability evaluation."""

import pytest

from repro.core.explanation import PairTokenWeights, TokenEntry
from repro.evaluation.stability import (
    record_stability,
    stability_eval,
)
from repro.exceptions import ConfigurationError


def weights_for(pair, values):
    entries = []
    tokens = [
        ("left", "name", 0, "sony"),
        ("left", "name", 1, "camera"),
        ("right", "name", 0, "nikon"),
        ("right", "price", 0, "7.99"),
    ]
    for (side, attribute, position, word), value in zip(tokens, values):
        entries.append(TokenEntry(side, attribute, position, word, value))
    return PairTokenWeights(pair, entries)


class TestRecordStability:
    def test_identical_runs_are_perfectly_stable(self, toy_pair):
        runs = [weights_for(toy_pair, [0.5, 0.2, -0.3, 0.1])] * 3
        assert record_stability(runs) == pytest.approx(1.0)

    def test_reversed_rankings_are_anticorrelated(self, toy_pair):
        a = weights_for(toy_pair, [0.4, 0.3, 0.2, 0.1])
        b = weights_for(toy_pair, [0.1, 0.2, 0.3, 0.4])
        assert record_stability([a, b]) == pytest.approx(-1.0)

    def test_constant_weights_score_zero(self, toy_pair):
        a = weights_for(toy_pair, [0.2, 0.2, 0.2, 0.2])
        b = weights_for(toy_pair, [0.4, 0.3, 0.2, 0.1])
        assert record_stability([a, b]) == 0.0

    def test_needs_two_runs(self, toy_pair):
        with pytest.raises(ConfigurationError):
            record_stability([weights_for(toy_pair, [0.1, 0.2, 0.3, 0.4])])


class TestStabilityEval:
    def test_landmark_explanations_are_reasonably_stable(
        self, beer_matcher, beer_dataset
    ):
        from repro.core.landmark import LandmarkExplainer
        from repro.explainers.lime_text import LimeConfig

        def explain(pair, seed):
            explainer = LandmarkExplainer(
                beer_matcher,
                lime_config=LimeConfig(n_samples=96, seed=seed),
                seed=seed,
            )
            return explainer.explain(pair, "single").combined()

        pairs = beer_dataset.by_label(1).pairs[:3]
        result = stability_eval(pairs, explain, n_runs=3, base_seed=0)
        assert result.n_runs == 3
        assert len(result.per_record) == 3
        assert result.mean_correlation > 0.3

    def test_empty_input(self):
        result = stability_eval([], lambda pair, seed: None, n_runs=2)
        assert result.per_record == ()
        assert result.mean_correlation == 0.0

    def test_n_runs_validated(self, beer_dataset):
        with pytest.raises(ConfigurationError):
            stability_eval(beer_dataset.pairs[:1], lambda p, s: None, n_runs=1)

    def test_render(self, toy_pair):
        def explain(pair, seed):
            return weights_for(pair, [0.4, 0.3, 0.2, 0.1])

        result = stability_eval([toy_pair], explain, n_runs=2)
        assert "mean Spearman 1.000" in result.render()
