"""Tests for the interest evaluation (Table 4)."""

import pytest

from repro.evaluation.interest_eval import interest_eval, interest_of_record
from repro.evaluation.methods import MethodExplainers
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def explainers(beer_matcher):
    return MethodExplainers(beer_matcher, LimeConfig(n_samples=64, seed=0))


class TestInterestOfRecord:
    def test_match_record_flips_when_evidence_removed(
        self, explainers, beer_matcher, match_pair
    ):
        explained = explainers.explain("single", match_pair)
        score = interest_of_record(explained, beer_matcher)
        assert 0.0 <= score <= 1.0

    def test_double_flips_non_match(self, explainers, beer_matcher, non_match_pair):
        explained = explainers.explain("double", non_match_pair)
        score = interest_of_record(explained, beer_matcher)
        # The signature result of the paper: injection makes non-match
        # records flippable.
        assert score > 0.0

    def test_single_rarely_flips_non_match(
        self, explainers, beer_matcher, beer_dataset
    ):
        pairs = beer_dataset.by_label(0).pairs[:6]
        double_scores = []
        single_scores = []
        for pair in pairs:
            single_scores.append(
                interest_of_record(explainers.explain("single", pair), beer_matcher)
            )
            double_scores.append(
                interest_of_record(explainers.explain("double", pair), beer_matcher)
            )
        assert sum(double_scores) > sum(single_scores)

    def test_threshold_shifts_interest(self, explainers, beer_matcher, non_match_pair):
        explained = explainers.explain("double", non_match_pair)
        lax = interest_of_record(explained, beer_matcher, threshold=0.1)
        strict = interest_of_record(explained, beer_matcher, threshold=0.9)
        # Lower thresholds make flipping a non-match to match easier.
        assert lax >= strict


class TestInterestEval:
    def test_aggregates(self, explainers, beer_matcher, beer_dataset):
        pairs = beer_dataset.by_label(0).pairs[:4]
        explained = [explainers.explain("double", pair) for pair in pairs]
        result = interest_eval(explained, beer_matcher)
        assert result.n_records == 4
        assert 0.0 <= result.interest <= 1.0

    def test_empty(self, beer_matcher):
        result = interest_eval([], beer_matcher)
        assert result.n_records == 0
        assert result.interest == 0.0

    def test_as_row(self, explainers, beer_matcher, non_match_pair):
        explained = [explainers.explain("lime", non_match_pair)]
        row = interest_eval(explained, beer_matcher).as_row()
        assert set(row) == {"interest", "n"}
