"""End-to-end tests for the experiment runner and table formatting."""

import math

import pytest

from repro.config import ExperimentConfig
from repro.data.records import MATCH, NON_MATCH
from repro.evaluation.runner import BenchmarkResult, ExperimentRunner
from repro.evaluation.tables import (
    format_all_tables,
    format_table1,
    format_table2,
    format_table3,
    format_table4,
    render_table,
)
from repro.data.synthetic.magellan import table1_rows


@pytest.fixture(scope="module")
def tiny_result() -> BenchmarkResult:
    config = ExperimentConfig(
        name="test", per_label=4, lime_samples=32, size_cap=200, seed=0
    )
    return ExperimentRunner(config).run(["S-BR"])


class TestRunner:
    def test_all_method_label_cells_present(self, tiny_result):
        dataset_result = tiny_result.datasets["S-BR"]
        # match label: single, double, lime (copy skipped by default)
        assert dataset_result.get(MATCH, "single") is not None
        assert dataset_result.get(MATCH, "double") is not None
        assert dataset_result.get(MATCH, "lime") is not None
        assert dataset_result.get(MATCH, "mojito_copy") is None
        # non-match label: all four
        assert dataset_result.get(NON_MATCH, "mojito_copy") is not None

    def test_metrics_are_finite_and_bounded(self, tiny_result):
        for metrics in tiny_result.datasets["S-BR"].metrics.values():
            assert 0.0 <= metrics.token_accuracy <= 1.0
            assert metrics.token_mae >= 0.0
            assert 0.0 <= metrics.interest <= 1.0
            assert -1.0 <= metrics.kendall <= 1.0
            assert metrics.n_records > 0

    def test_matcher_quality_recorded(self, tiny_result):
        assert tiny_result.datasets["S-BR"].matcher_quality.f1 > 0.5

    def test_per_label_cap_respected(self, tiny_result):
        for metrics in tiny_result.datasets["S-BR"].metrics.values():
            assert metrics.n_records <= 4

    def test_codes_ordered(self, tiny_result):
        assert tiny_result.codes == ["S-BR"]

    def test_copy_on_match_option(self):
        config = ExperimentConfig(
            name="copy", per_label=2, lime_samples=16, size_cap=120,
            copy_on_match=True,
        )
        result = ExperimentRunner(config).run(["S-BR"])
        assert result.datasets["S-BR"].get(MATCH, "mojito_copy") is not None

    def test_custom_matcher_factory(self):
        from repro.matchers.logistic import LogisticRegressionMatcher

        config = ExperimentConfig(
            name="f", per_label=2, lime_samples=16, size_cap=120,
            methods=("single",),
        )
        runner = ExperimentRunner(
            config, matcher_factory=lambda: LogisticRegressionMatcher(l2=50.0)
        )
        result = runner.run_dataset("S-BR")
        assert result.get(MATCH, "single") is not None


class TestConfigValidation:
    def test_bad_per_label(self):
        with pytest.raises(Exception):
            ExperimentConfig(per_label=0)

    def test_bad_threshold(self):
        with pytest.raises(Exception):
            ExperimentConfig(threshold=0.0)

    def test_bad_method(self):
        with pytest.raises(Exception):
            ExperimentConfig(methods=("anchors",))

    def test_presets(self):
        from repro.config import get_preset
        from repro.exceptions import ConfigurationError

        assert get_preset("fast").name == "fast"
        assert get_preset("paper").per_label == 100
        with pytest.raises(ConfigurationError):
            get_preset("warp")


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", float("nan")]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "2.500" in text
        assert "-" in lines[-1]  # NaN renders as '-'

    def test_table1_nominal(self):
        text = format_table1(table1_rows())
        assert "S-WA" in text
        assert "10242" in text
        assert "Measured" not in text

    def test_table2_layout(self, tiny_result):
        match_table = format_table2(tiny_result, MATCH)
        assert "Single Acc" in match_table
        assert "Mojito Copy" not in match_table
        non_match_table = format_table2(tiny_result, NON_MATCH)
        assert "Mojito Copy Acc" in non_match_table

    def test_table3_layout(self, tiny_result):
        text = format_table3(tiny_result, NON_MATCH)
        assert "Kendall" in text
        assert "S-BR" in text

    def test_table4_layout(self, tiny_result):
        text = format_table4(tiny_result, MATCH)
        assert "interest" in text

    def test_format_all_tables_has_six_sections(self, tiny_result):
        text = format_all_tables(tiny_result)
        assert text.count("Table 2") == 2
        assert text.count("Table 3") == 2
        assert text.count("Table 4") == 2

    def test_missing_method_cells_render_as_dash(self, tiny_result):
        # mojito_copy is absent for the match label → '-' in Table 4a? No:
        # table 4a does not include the copy column at all, so instead check
        # a hand-built result with a missing cell.
        result = BenchmarkResult(config=tiny_result.config)
        result.datasets["S-BR"] = tiny_result.datasets["S-BR"]
        partial = format_table3(result, MATCH)
        assert not math.isnan(0.0) and "S-BR" in partial


class TestFaithfulnessOption:
    def test_runner_computes_gain_when_enabled(self):
        config = ExperimentConfig(
            name="faith", per_label=3, lime_samples=24, size_cap=150,
            methods=("single",), faithfulness=True,
        )
        result = ExperimentRunner(config).run(["S-BR"])
        metrics = result.datasets["S-BR"].get(MATCH, "single")
        assert metrics is not None
        assert not math.isnan(metrics.faithfulness)

    def test_gain_is_nan_by_default(self, tiny_result):
        metrics = tiny_result.datasets["S-BR"].get(MATCH, "single")
        assert math.isnan(metrics.faithfulness)

    def test_extension_table_rendered_when_enabled(self):
        from repro.evaluation.tables import format_all_tables

        config = ExperimentConfig(
            name="faith", per_label=2, lime_samples=16, size_cap=120,
            methods=("single", "lime"), faithfulness=True,
        )
        result = ExperimentRunner(config).run(["S-BR"])
        text = format_all_tables(result)
        assert "deletion-curve faithfulness gain" in text
