"""Tests for deletion-curve faithfulness evaluation."""

import numpy as np
import pytest

from repro.evaluation.faithfulness import (
    deletion_curve,
    faithfulness_eval,
)
from repro.evaluation.methods import MethodExplainers
from repro.exceptions import ConfigurationError
from repro.explainers.lime_text import LimeConfig


@pytest.fixture(scope="module")
def explained_match(beer_matcher, beer_dataset):
    explainers = MethodExplainers(beer_matcher, LimeConfig(n_samples=64, seed=0))
    pairs = beer_dataset.by_label(1).pairs[:4]
    return [explainers.explain("single", pair) for pair in pairs]


class TestDeletionCurve:
    def test_starts_at_original_probability(self, explained_match, beer_matcher):
        explained = explained_match[0]
        order = list(range(len(explained.token_weights)))
        curve = deletion_curve(explained, beer_matcher, order)
        assert curve[0] == pytest.approx(beer_matcher.predict_one(explained.pair))

    def test_curve_length_bounded_by_steps(self, explained_match, beer_matcher):
        explained = explained_match[0]
        order = list(range(len(explained.token_weights)))
        curve = deletion_curve(explained, beer_matcher, order, max_steps=5)
        assert len(curve) <= 6

    def test_full_deletion_reached(self, explained_match, beer_matcher):
        explained = explained_match[0]
        order = list(range(len(explained.token_weights)))
        curve = deletion_curve(explained, beer_matcher, order)
        # The last point is the fully emptied record: with our feature
        # convention (both-empty ⇒ no evidence) the probability is low.
        assert curve[-1] < 0.6

    def test_order_length_checked(self, explained_match, beer_matcher):
        with pytest.raises(ConfigurationError):
            deletion_curve(explained_match[0], beer_matcher, [0, 1])


class TestFaithfulnessEval:
    def test_landmark_single_beats_random_on_matches(
        self, explained_match, beer_matcher
    ):
        result = faithfulness_eval(explained_match, beer_matcher, seed=0)
        assert result.n_records == len(explained_match)
        assert result.gain > 0.0  # ordered deletion drops probability faster

    def test_random_weights_have_no_gain(self, explained_match, beer_matcher):
        import dataclasses

        from repro.core.explanation import PairTokenWeights, TokenEntry

        rng = np.random.default_rng(0)
        shuffled = []
        for explained in explained_match:
            entries = [
                TokenEntry(
                    entry.side,
                    entry.attribute,
                    entry.position,
                    entry.word,
                    float(rng.normal()),
                )
                for entry in explained.token_weights.entries
            ]
            shuffled.append(
                dataclasses.replace(
                    explained,
                    token_weights=PairTokenWeights(explained.pair, entries),
                )
            )
        result = faithfulness_eval(shuffled, beer_matcher, n_random=5, seed=0)
        informative = faithfulness_eval(
            explained_match, beer_matcher, n_random=5, seed=0
        )
        assert informative.gain > result.gain

    def test_empty_input(self, beer_matcher):
        result = faithfulness_eval([], beer_matcher)
        assert result.n_records == 0
        assert result.gain == 0.0

    def test_n_random_validated(self, explained_match, beer_matcher):
        with pytest.raises(ConfigurationError):
            faithfulness_eval(explained_match, beer_matcher, n_random=0)

    def test_render(self, explained_match, beer_matcher):
        text = faithfulness_eval(explained_match, beer_matcher, seed=0).render()
        assert "gain" in text
