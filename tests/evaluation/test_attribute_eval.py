"""Tests for the attribute-ranking evaluation (Table 3)."""

import pytest

from repro.evaluation.attribute_eval import attribute_correlation, attribute_eval
from repro.evaluation.methods import ExplainedRecord, MethodExplainers
from repro.exceptions import ConfigurationError
from repro.explainers.lime_text import LimeConfig


def fake_explained(pair, importance):
    return ExplainedRecord(
        method="fake",
        pair=pair,
        token_weights=None,  # not used by the attribute evaluation
        attribute_importance=importance,
        removal_pairs=lambda sign: [],
    )


class TestAttributeCorrelation:
    def test_perfect_agreement(self, match_pair):
        attributes = match_pair.schema.attributes
        importance = {a: float(i + 1) for i, a in enumerate(attributes)}
        explained = fake_explained(match_pair, dict(importance))
        assert attribute_correlation(explained, importance) == pytest.approx(1.0)

    def test_reversed_ranking_is_negative(self, match_pair):
        attributes = match_pair.schema.attributes
        model = {a: float(i + 1) for i, a in enumerate(attributes)}
        surrogate = {a: float(len(attributes) - i) for i, a in enumerate(attributes)}
        explained = fake_explained(match_pair, surrogate)
        assert attribute_correlation(explained, model) < 0

    def test_constant_surrogate_is_zero(self, match_pair):
        attributes = match_pair.schema.attributes
        model = {a: float(i + 1) for i, a in enumerate(attributes)}
        explained = fake_explained(match_pair, {a: 1.0 for a in attributes})
        assert attribute_correlation(explained, model) == 0.0

    def test_constant_model_is_zero(self, match_pair):
        attributes = match_pair.schema.attributes
        model = {a: 2.0 for a in attributes}
        explained = fake_explained(
            match_pair, {a: float(i) for i, a in enumerate(attributes)}
        )
        assert attribute_correlation(explained, model) == 0.0

    def test_missing_model_attribute_rejected(self, match_pair):
        explained = fake_explained(match_pair, {})
        with pytest.raises(ConfigurationError):
            attribute_correlation(explained, {"only_this": 1.0})

    def test_missing_surrogate_attribute_defaults_to_zero(self, match_pair):
        attributes = match_pair.schema.attributes
        model = {a: float(i + 1) for i, a in enumerate(attributes)}
        # Surrogate importance covering only one attribute still works.
        explained = fake_explained(match_pair, {attributes[0]: 1.0})
        value = attribute_correlation(explained, model)
        assert -1.0 <= value <= 1.0


class TestAttributeEval:
    def test_averages_over_records(self, match_pair):
        attributes = match_pair.schema.attributes
        model = {a: float(i + 1) for i, a in enumerate(attributes)}
        agree = fake_explained(match_pair, dict(model))
        disagree = fake_explained(
            match_pair, {a: float(len(attributes) - i) for i, a in enumerate(attributes)}
        )
        result = attribute_eval([agree, disagree], model)
        assert result.n_records == 2
        assert -1.0 < result.kendall < 1.0

    def test_empty_input(self, match_pair):
        attributes = match_pair.schema.attributes
        model = {a: 1.0 for a in attributes}
        result = attribute_eval([], model)
        assert result.n_records == 0
        assert result.kendall == 0.0

    def test_real_explanation_correlates_with_model(
        self, beer_matcher, beer_dataset
    ):
        explainers = MethodExplainers(beer_matcher, LimeConfig(n_samples=64, seed=0))
        pairs = beer_dataset.by_label(1).pairs[:5]
        explained = [explainers.explain("single", pair) for pair in pairs]
        result = attribute_eval(explained, beer_matcher.attribute_weights())
        # Landmark single on matches tracks the LR attribute ranking well.
        assert result.kendall > 0.2
