"""Cross-module integration tests: whole workflows at tiny scale."""

import numpy as np
import pytest

from repro import (
    EMDataset,
    LandmarkExplainer,
    LimeConfig,
    LogisticRegressionMatcher,
    PairSchema,
    RecordPair,
    greedy_counterfactual,
    train_test_split,
)
from repro.blocking import InvertedIndexBlocker
from repro.core.report import to_html, to_markdown
from repro.core.serialize import dual_from_dict, dual_to_dict
from repro.data.synthetic.generator import SyntheticEMGenerator
from repro.data.synthetic.vocabularies import RESTAURANT_FACTORY


class TestBlockMatchExplain:
    """The end_to_end_em example, compressed into one assertion-rich test."""

    def test_full_pipeline(self):
        generator = SyntheticEMGenerator(RESTAURANT_FACTORY, seed=13)
        left, right, gold = generator.generate_tables(n_entities=80, overlap=0.5)
        blocker = InvertedIndexBlocker(
            attributes=("name", "phone"), min_shared_tokens=1
        )
        candidates, report = blocker.report(left, right, gold)
        assert report.pair_completeness > 0.8
        assert report.reduction_ratio > 0.5

        schema = PairSchema(RESTAURANT_FACTORY.attributes)
        pairs = [
            RecordPair(
                schema,
                left[i],
                right[j],
                label=int((i, j) in gold),
                pair_id=index,
            )
            for index, (i, j) in enumerate(candidates)
        ]
        dataset = EMDataset("candidates", schema, pairs)
        if dataset.match_count < 4 or dataset.match_count > len(dataset) - 4:
            pytest.skip("degenerate candidate set for this seed")
        train, test = train_test_split(dataset, test_fraction=0.3, seed=13)
        matcher = LogisticRegressionMatcher().fit(train)

        explainer = LandmarkExplainer(
            matcher, lime_config=LimeConfig(n_samples=32, seed=0), seed=0
        )
        dual = explainer.explain(test[0])
        assert len(dual.combined()) > 0


class TestUnicodeRobustness:
    """Accents, CJK and emoji must flow through the whole stack."""

    @pytest.fixture()
    def unicode_dataset(self):
        schema = PairSchema(("name", "city"))
        pairs = []
        names = [
            "café crème brûlée",
            "smörgåsbord haus",
            "北京 烤鸭 restaurant",
            "taquería el niño",
            "pizza 🍕 palace",
            "søren's smørrebrød",
        ]
        for index, name in enumerate(names):
            pairs.append(
                RecordPair(
                    schema,
                    {"name": name, "city": "metropolis"},
                    {"name": name + " grill", "city": "metropolis"},
                    label=1,
                    pair_id=index,
                )
            )
        for index, name in enumerate(names):
            other = names[(index + 1) % len(names)]
            pairs.append(
                RecordPair(
                    schema,
                    {"name": name, "city": "metropolis"},
                    {"name": other, "city": "gotham"},
                    label=0,
                    pair_id=len(names) + index,
                )
            )
        return EMDataset("unicode", schema, pairs)

    def test_train_explain_report_serialize(self, unicode_dataset):
        matcher = LogisticRegressionMatcher(l2=1.0).fit(unicode_dataset)
        explainer = LandmarkExplainer(
            matcher, lime_config=LimeConfig(n_samples=24, seed=0), seed=0
        )
        dual = explainer.explain(unicode_dataset[0])
        # render paths must not crash on non-ASCII tokens
        assert dual.render()
        assert to_markdown(dual)
        html = to_html(dual)
        assert html.startswith("<!DOCTYPE html>")
        restored = dual_from_dict(dual_to_dict(dual))
        assert np.array_equal(
            restored.left_landmark.explanation.weights,
            dual.left_landmark.explanation.weights,
        )

    def test_counterfactual_on_unicode(self, unicode_dataset):
        matcher = LogisticRegressionMatcher(l2=1.0).fit(unicode_dataset)
        explainer = LandmarkExplainer(
            matcher, lime_config=LimeConfig(n_samples=24, seed=0), seed=0
        )
        landmark = explainer.explain_landmark(unicode_dataset[0], "left", "single")
        counterfactual = greedy_counterfactual(landmark, matcher, max_edits=6)
        assert counterfactual.render()


class TestDeterminismAcrossTheStack:
    def test_same_seed_same_everything(self):
        from repro.config import ExperimentConfig
        from repro.evaluation.runner import ExperimentRunner

        config = ExperimentConfig(
            name="det", per_label=3, lime_samples=24, size_cap=150,
            methods=("single", "lime"),
        )
        first = ExperimentRunner(config).run(["S-BR"])
        second = ExperimentRunner(config).run(["S-BR"])
        for key, metrics in first.datasets["S-BR"].metrics.items():
            other = second.datasets["S-BR"].metrics[key]
            assert metrics.token_accuracy == other.token_accuracy
            assert metrics.token_mae == other.token_mae
            assert metrics.interest == other.interest
