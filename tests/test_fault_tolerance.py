"""Fault tolerance end to end: guard, ledger, degradation, checkpoint/resume.

The scenarios mirror the failure modes the machinery exists for: transient
matcher faults (retry), hung calls (timeout), dead matchers (circuit
breaker), per-record explanation failures (ledger + ``n_skipped``),
double-entity generation falling back to single (``degraded``), and a run
killed mid-grid that resumes to the same result.
"""

from __future__ import annotations

import dataclasses
import json
import time

import numpy as np
import pytest

from repro.config import (
    ExperimentConfig,
    FAST,
    METHOD_DOUBLE,
    METHOD_LIME,
    METHOD_SINGLE,
)
from repro.core.guard import GuardConfig, GuardStats, MatcherGuard
from repro.evaluation.ledger import (
    CELL_RECORD_ID,
    FailureEntry,
    FailureLedger,
    KIND_CELL,
    KIND_DEGRADED,
    KIND_SKIPPED,
)
from repro.evaluation.methods import MethodExplainers
from repro.evaluation.persistence import (
    CHECKPOINT_NAME,
    load_checkpoint,
    result_from_dict,
    result_to_dict,
)
from repro.evaluation.runner import ExperimentRunner
from repro.evaluation.tables import format_all_tables
from repro.exceptions import (
    CheckpointError,
    ExplanationError,
    MatcherTimeoutError,
    MatcherUnavailableError,
)
from repro.explainers.lime_text import LimeConfig
from repro.matchers.logistic import LogisticRegressionMatcher
from repro.testing.faults import FaultSchedule, FlakyMatcher, SlowMatcher

#: Smallest config that still exercises the full grid machinery.
TINY = ExperimentConfig(
    name="tiny",
    per_label=3,
    lime_samples=16,
    size_cap=120,
    methods=(METHOD_SINGLE, METHOD_LIME),
)


# ---------------------------------------------------------------------------
# MatcherGuard unit behaviour
# ---------------------------------------------------------------------------


class TestMatcherGuard:
    def test_inactive_guard_is_transparent(self):
        def fn(pairs):
            raise RuntimeError("matcher bug")

        guard = MatcherGuard(fn, GuardConfig())
        assert not guard.config.active
        # The original exception propagates untouched: no retry, no
        # wrapping, no counter churn.
        with pytest.raises(RuntimeError, match="matcher bug"):
            guard.call([0])
        assert guard.stats == GuardStats()

    def test_retry_then_success(self):
        calls = {"n": 0}

        def fn(pairs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return np.full(len(pairs), 0.5)

        guard = MatcherGuard(fn, GuardConfig(max_retries=2, backoff=0.0))
        out = guard.call([0, 1])
        assert list(out) == [0.5, 0.5]
        assert guard.stats.guard_retries == 1
        assert guard.stats.guard_failures == 1
        assert guard.state == "closed"

    def test_retry_exhaustion_reraises_and_tags_attempts(self):
        def fn(pairs):
            raise RuntimeError("always down")

        guard = MatcherGuard(
            fn, GuardConfig(max_retries=2, trip_after=10, backoff=0.0)
        )
        with pytest.raises(RuntimeError, match="always down") as info:
            guard.call([0])
        assert info.value.guard_attempts == 3
        assert guard.stats.guard_failures == 3
        assert guard.stats.guard_retries == 2

    def test_timeout(self):
        def fn(pairs):
            time.sleep(5.0)
            return np.zeros(len(pairs))

        guard = MatcherGuard(
            fn, GuardConfig(call_timeout=0.05, trip_after=10, backoff=0.0)
        )
        started = time.perf_counter()
        with pytest.raises(MatcherTimeoutError):
            guard.call([0, 1])
        assert time.perf_counter() - started < 2.0
        assert guard.stats.guard_timeouts == 1
        assert guard.stats.guard_failures == 1

    def test_circuit_trips_cools_down_and_recovers(self):
        calls = {"n": 0}

        def fn(pairs):
            calls["n"] += 1
            if calls["n"] <= 3:
                raise RuntimeError("boom")
            return np.ones(len(pairs))

        # call_timeout activates the guard without allowing retries, so
        # every failure is consecutive from the breaker's point of view.
        guard = MatcherGuard(
            fn,
            GuardConfig(
                call_timeout=30.0, trip_after=3, cooldown=2, backoff=0.0
            ),
        )
        for _ in range(2):
            with pytest.raises(RuntimeError):
                guard.call([0])
        # The third consecutive failure trips the breaker.
        with pytest.raises(MatcherUnavailableError):
            guard.call([0])
        assert guard.state == "open"
        assert guard.stats.guard_trips == 1
        # While open, calls fail fast without touching the matcher.
        for _ in range(2):
            with pytest.raises(MatcherUnavailableError):
                guard.call([0])
        assert calls["n"] == 3
        assert guard.stats.guard_fast_failures == 2
        # The next call is the half-open probe; it succeeds and closes.
        out = guard.call([0])
        assert list(out) == [1.0]
        assert guard.state == "closed"
        assert guard.stats.guard_recoveries == 1

    def test_failed_half_open_probe_reopens(self):
        def fn(pairs):
            raise RuntimeError("still down")

        guard = MatcherGuard(
            fn,
            GuardConfig(
                call_timeout=30.0, trip_after=2, cooldown=1, backoff=0.0
            ),
        )
        for _ in range(1):
            with pytest.raises(RuntimeError):
                guard.call([0])
        with pytest.raises(MatcherUnavailableError):
            guard.call([0])  # trips
        with pytest.raises(MatcherUnavailableError):
            guard.call([0])  # cooldown fast-fail
        with pytest.raises(MatcherUnavailableError):
            guard.call([0])  # failed probe re-trips immediately
        assert guard.state == "open"
        assert guard.stats.guard_trips == 2
        assert guard.stats.guard_recoveries == 0


# ---------------------------------------------------------------------------
# Fault schedule determinism
# ---------------------------------------------------------------------------


class TestFaultSchedule:
    def test_schedule_is_deterministic_per_index(self):
        one = FaultSchedule(0.3, seed=7)
        two = FaultSchedule(0.3, seed=7)
        draws = [one.should_fail(i) for i in range(200)]
        assert draws == [two.should_fail(i) for i in range(200)]
        rate = sum(draws) / len(draws)
        assert 0.15 < rate < 0.45

    def test_different_seeds_differ(self):
        one = FaultSchedule(0.5, seed=1)
        two = FaultSchedule(0.5, seed=2)
        assert [one.should_fail(i) for i in range(64)] != [
            two.should_fail(i) for i in range(64)
        ]

    def test_flaky_matcher_delegates(self, beer_matcher, beer_dataset):
        flaky = FlakyMatcher(beer_matcher, fail_rate=0.0)
        pairs = list(beer_dataset)[:4]
        np.testing.assert_allclose(
            flaky.predict_proba(pairs), beer_matcher.predict_proba(pairs)
        )
        # Attribute access falls through to the wrapped matcher.
        assert callable(flaky.attribute_weights)

    def test_slow_matcher_delays(self, beer_matcher, beer_dataset):
        slow = SlowMatcher(beer_matcher, delay=0.02, slow_rate=1.0)
        pairs = list(beer_dataset)[:2]
        started = time.perf_counter()
        slow.predict_proba(pairs)
        assert time.perf_counter() - started >= 0.02
        assert slow.slowed == 1


# ---------------------------------------------------------------------------
# Failure ledger
# ---------------------------------------------------------------------------


class TestFailureLedger:
    def _entry(self, kind=KIND_SKIPPED, record_id=3):
        try:
            raise RuntimeError("synthetic failure")
        except RuntimeError as error:
            error.guard_attempts = 4
            error.landmark_side = "left"
            return FailureEntry.from_exception(
                "S-BR", 1, METHOD_SINGLE, record_id, error, kind=kind
            )

    def test_from_exception_reads_tags(self):
        entry = self._entry()
        assert entry.attempts == 4
        assert entry.side == "left"
        assert entry.error == "RuntimeError"
        assert entry.message == "synthetic failure"
        assert len(entry.digest) == 12

    def test_payload_round_trip(self):
        ledger = FailureLedger()
        ledger.add(self._entry())
        ledger.add(self._entry(kind=KIND_CELL, record_id=CELL_RECORD_ID))
        restored = FailureLedger.from_payload(
            json.loads(json.dumps(ledger.to_payload()))
        )
        assert restored.entries == ledger.entries
        assert restored.count(KIND_CELL) == 1
        assert restored.for_cell("S-BR", 1, METHOD_SINGLE) == ledger.entries

    def test_summary_counts_kinds(self):
        ledger = FailureLedger()
        ledger.add(self._entry())
        ledger.add(self._entry(kind=KIND_DEGRADED))
        assert "1 skipped" in ledger.summary()
        assert "1 degraded" in ledger.summary()


# ---------------------------------------------------------------------------
# Runner isolation: skipped records, degraded records, failed cells
# ---------------------------------------------------------------------------


class TestRunnerIsolation:
    def test_double_failure_degrades_to_single(self, beer_matcher, non_match_pair):
        explainers = MethodExplainers(
            beer_matcher, lime_config=LimeConfig(n_samples=16, seed=0)
        )
        original = explainers._landmark.explain

        def failing(pair, generation="auto"):
            if generation == "double":
                raise ExplanationError("injected double failure")
            return original(pair, generation)

        explainers._landmark.explain = failing
        record = explainers.explain(METHOD_DOUBLE, non_match_pair)
        assert record.degraded
        assert isinstance(record.degraded_error, ExplanationError)
        assert record.token_weights  # the single-entity fallback is real

    def test_skipped_records_feed_ledger_and_metrics(self, monkeypatch):
        original = MethodExplainers.explain

        def flaky_explain(self, method, pair):
            if method == METHOD_SINGLE and pair.pair_id % 2 == 0:
                raise ExplanationError("injected per-record failure")
            return original(self, method, pair)

        monkeypatch.setattr(MethodExplainers, "explain", flaky_explain)
        result = ExperimentRunner(TINY).run_dataset("S-BR")
        skipped = [
            entry for entry in result.failures if entry.kind == KIND_SKIPPED
        ]
        assert skipped, "expected injected failures in the ledger"
        for (label, method), metrics in result.metrics.items():
            cell = [
                e for e in skipped if e.label == label and e.method == method
            ]
            # The n_skipped column is wired to the ledger, and skipped
            # records are genuinely absent from the evaluated ones.
            assert metrics.n_skipped == len(cell)
            assert metrics.n_records + metrics.n_skipped == TINY.per_label
        assert any(m.n_skipped for m in result.metrics.values())
        entry = skipped[0]
        assert entry.error == "ExplanationError"
        assert entry.record_id >= 0

    def test_cell_failure_isolated(self, monkeypatch):
        import repro.evaluation.runner as runner_module

        def broken_eval(*args, **kwargs):
            raise RuntimeError("evaluation stage died")

        monkeypatch.setattr(runner_module, "interest_eval", broken_eval)
        result = ExperimentRunner(TINY).run_dataset("S-BR")
        # Every cell failed, none raised out of run_dataset.
        assert result.metrics == {}
        cell_entries = [e for e in result.failures if e.kind == KIND_CELL]
        assert len(cell_entries) == 4  # 2 labels x 2 methods
        assert all(e.record_id == CELL_RECORD_ID for e in cell_entries)
        # Degraded cells are footnoted instead of silently blank.
        rendered = format_all_tables(_as_benchmark(result))
        assert "cell failed" in rendered

    def test_flaky_matcher_run_completes(self):
        config = dataclasses.replace(
            TINY, guard_max_retries=3, guard_backoff=0.0
        )
        runner = ExperimentRunner(
            config,
            matcher_factory=lambda: FlakyMatcher(
                LogisticRegressionMatcher(), fail_rate=0.2, seed=1
            ),
        )
        result = runner.run(["S-BR"])
        dataset_result = result.datasets["S-BR"]
        # The run finished and produced a (possibly degraded) grid.
        assert dataset_result.metrics
        stats = result.engine_totals()
        assert stats.guard_failures > 0
        assert stats.guard_retries > 0
        # Whatever the guard could not absorb is accounted for, not lost.
        for entry in result.ledger():
            assert entry.kind in (KIND_SKIPPED, KIND_DEGRADED, KIND_CELL)


def _as_benchmark(dataset_result):
    from repro.evaluation.runner import BenchmarkResult

    result = BenchmarkResult(config=TINY)
    result.datasets[dataset_result.code] = dataset_result
    return result


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------


def _comparable(result):
    """Run payload minus fields that legitimately vary across resumes."""
    payload = result_to_dict(result)
    for dataset_payload in payload["datasets"].values():
        dataset_payload.pop("engine_stats", None)
        for metrics in dataset_payload["metrics"]:
            metrics.pop("seconds", None)
        dataset_payload["metrics"].sort(
            key=lambda m: (m["label"], m["method"])
        )
    return payload


class _Killed(Exception):
    pass


class TestCheckpointResume:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        plain = ExperimentRunner(TINY).run(["S-BR"])
        checkpointed = ExperimentRunner(TINY).run(
            ["S-BR"], run_dir=str(tmp_path / "run")
        )
        assert _comparable(checkpointed) == _comparable(plain)
        assert (tmp_path / "run" / CHECKPOINT_NAME).exists()

    def test_kill_at_cell_k_then_resume_is_identical(self, tmp_path):
        run_dir = tmp_path / "run"
        baseline = ExperimentRunner(TINY).run(["S-BR"])

        seen = []

        def killer(code, label, method):
            seen.append((code, label, method))
            if len(seen) == 2:
                raise _Killed()

        with pytest.raises(_Killed):
            ExperimentRunner(TINY, on_cell=killer).run(
                ["S-BR"], run_dir=str(run_dir)
            )
        state = load_checkpoint(run_dir)
        assert state.n_cells() == 2
        assert state.config == TINY

        resumed = ExperimentRunner(state.config).run(
            ["S-BR"], run_dir=str(run_dir), resume=True
        )
        assert _comparable(resumed) == _comparable(baseline)
        # And the saved JSON round-trips with the ledger attached.
        restored = result_from_dict(result_to_dict(resumed))
        assert _comparable(restored) == _comparable(baseline)

    def test_resume_of_finished_run_skips_everything(self, tmp_path):
        run_dir = tmp_path / "run"
        first = ExperimentRunner(TINY).run(["S-BR"], run_dir=str(run_dir))

        def forbidden(*args, **kwargs):
            raise AssertionError("a finished run must not retrain")

        resumed = ExperimentRunner(
            TINY, matcher_factory=forbidden
        ).run(["S-BR"], run_dir=str(run_dir), resume=True)
        assert _comparable(resumed) == _comparable(first)

    def test_partial_trailing_line_is_tolerated(self, tmp_path):
        run_dir = tmp_path / "run"
        ExperimentRunner(TINY).run(["S-BR"], run_dir=str(run_dir))
        journal = run_dir / CHECKPOINT_NAME
        # Simulate a kill mid-write: a truncated JSON line at the end.
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "cell", "code": "S-')
        state = load_checkpoint(run_dir)
        assert state.n_cells() == len(TINY.methods) * 2

    def test_corrupt_interior_line_raises(self, tmp_path):
        run_dir = tmp_path / "run"
        ExperimentRunner(TINY).run(["S-BR"], run_dir=str(run_dir))
        journal = run_dir / CHECKPOINT_NAME
        lines = journal.read_text(encoding="utf-8").splitlines()
        lines[1] = "not json at all"
        journal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(run_dir)

    def test_config_mismatch_refuses_resume(self, tmp_path):
        run_dir = tmp_path / "run"
        ExperimentRunner(TINY).run(["S-BR"], run_dir=str(run_dir))
        with pytest.raises(CheckpointError, match="different"):
            load_checkpoint(run_dir, expected_config=FAST)

    def test_resume_recovers_dataset_selection(self, tmp_path):
        run_dir = tmp_path / "run"
        first = ExperimentRunner(TINY).run(["S-BR"], run_dir=str(run_dir))
        state = load_checkpoint(run_dir)
        assert state.codes == ("S-BR",)
        # Resuming without naming datasets re-runs the original selection,
        # not the full benchmark.
        resumed = ExperimentRunner(TINY).run(
            run_dir=str(run_dir), resume=True
        )
        assert list(resumed.datasets) == ["S-BR"]
        assert _comparable(resumed) == _comparable(first)

    def test_resume_without_run_dir_raises(self):
        with pytest.raises(CheckpointError, match="run_dir"):
            ExperimentRunner(TINY).run(["S-BR"], resume=True)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path)


class TestGuardBackoffScope:
    """The backoff sleep must respect the ambient request scope.

    A retry delay is time *charged to the waiting request*: sleeping the
    full backoff after the deadline already expired (or after every
    waiter left) burns tail latency on work nobody can use.
    """

    @staticmethod
    def _always_failing_guard(backoff: float) -> MatcherGuard:
        def fn(pairs):
            raise RuntimeError("transient")

        return MatcherGuard(
            fn,
            GuardConfig(
                max_retries=3, trip_after=100,
                backoff=backoff, backoff_max=backoff,
            ),
        )

    def test_expired_deadline_aborts_backoff_immediately(self):
        from repro.core.deadline import Deadline, request_scope
        from repro.exceptions import DeadlineExceededError

        guard = self._always_failing_guard(backoff=30.0)
        started = time.monotonic()
        with request_scope(Deadline.after(0.05)):
            with pytest.raises(DeadlineExceededError):
                guard.call([0])
        elapsed = time.monotonic() - started
        # The naive behaviour sleeps the full 30s backoff before the
        # post-sleep checkpoint notices.  The capped sleep returns within
        # the deadline budget (plus one poll slice of slack).
        assert elapsed < 2.0
        assert guard.stats.guard_retries >= 1

    def test_cancellation_interrupts_backoff_mid_sleep(self):
        import threading

        from repro.core.deadline import CancelToken, request_scope
        from repro.exceptions import RequestCancelledError

        guard = self._always_failing_guard(backoff=30.0)
        token = CancelToken()
        timer = threading.Timer(0.15, token.cancel)
        timer.start()
        started = time.monotonic()
        try:
            with request_scope(cancel=token):
                with pytest.raises(RequestCancelledError):
                    guard.call([0])
        finally:
            timer.cancel()
        elapsed = time.monotonic() - started
        # Cancellation lands mid-sleep; the sliced backoff notices within
        # _SLEEP_SLICE instead of finishing the 30s interval.
        assert elapsed < 2.0

    def test_unscoped_backoff_still_sleeps(self):
        guard = self._always_failing_guard(backoff=0.05)
        started = time.monotonic()
        with pytest.raises(RuntimeError, match="transient"):
            guard.call([0])
        elapsed = time.monotonic() - started
        # Three retries, each backing off ~0.05s (jitter halves at most).
        assert elapsed >= 0.05
        assert guard.stats.guard_retries == 3
