"""One record, three explainer families — the framework is generic.

The paper positions Landmark Explanation as a wrapper around *any*
post-hoc perturbation explainer (it evaluates the LIME coupling).  This
example explains the same non-match record through three couplings:

* **LIME** (kernel-weighted ridge — the paper's choice),
* **Kernel SHAP** (Shapley-kernel regression), and
* **Anchors** (a precision rule instead of weights),

all sharing the same landmark generation and pair reconstruction, and
finishes with the greedy counterfactual the weights imply.
"""

import numpy as np

from repro import (
    AnchorsTextExplainer,
    GENERATION_DOUBLE,
    KernelShapExplainer,
    LandmarkExplainer,
    LimeConfig,
    LogisticRegressionMatcher,
    anchor_for_landmark,
    greedy_counterfactual,
    load_dataset,
)
from repro.core.generation import LandmarkGenerator


def main() -> None:
    dataset = load_dataset("S-WA", seed=0, size_cap=1500)
    matcher = LogisticRegressionMatcher().fit(dataset)
    record = next(pair for pair in dataset if not pair.is_match)
    print(record.describe(max_width=44))
    print(f"model p(match) = {matcher.predict_one(record):.3f}")

    # --- LIME coupling (the paper's) -------------------------------------
    lime_explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=192, seed=0), seed=0
    )
    lime_dual = lime_explainer.explain(record, GENERATION_DOUBLE)
    print("\n[LIME coupling] left landmark, top tokens:")
    for word, attribute, weight, injected in lime_dual.left_landmark.top_tokens(4):
        origin = "injected" if injected else "own"
        print(f"  {weight:+.4f}  {word:<16} [{attribute}, {origin}]")

    # --- Kernel SHAP coupling ---------------------------------------------
    shap_explainer = LandmarkExplainer(
        matcher, explainer=KernelShapExplainer(n_samples=192, seed=0), seed=0
    )
    shap_dual = shap_explainer.explain(record, GENERATION_DOUBLE)
    print("\n[Kernel SHAP coupling] left landmark, top tokens:")
    for word, attribute, weight, injected in shap_dual.left_landmark.top_tokens(4):
        origin = "injected" if injected else "own"
        print(f"  {weight:+.4f}  {word:<16} [{attribute}, {origin}]")

    # Rank agreement between the two weight-based couplings.
    lime_weights = lime_dual.left_landmark.explanation.weights
    shap_weights = shap_dual.left_landmark.explanation.weights
    from scipy import stats

    rho = stats.spearmanr(lime_weights, shap_weights).statistic
    print(f"\nLIME vs SHAP token-rank agreement (Spearman): {rho:.3f}")

    # --- Anchors coupling ---------------------------------------------------
    instance = LandmarkGenerator().generate(record, "left", GENERATION_DOUBLE)
    anchor = anchor_for_landmark(
        instance,
        matcher,
        AnchorsTextExplainer(n_samples_per_candidate=24, seed=0),
        rng=np.random.default_rng(0),
    )
    print("\n[Anchors coupling] rule for the augmented right entity:")
    print("  " + anchor.render())

    # --- Counterfactual from the LIME weights --------------------------------
    print("\n[Counterfactual] minimal edits that flip the decision:")
    counterfactual = greedy_counterfactual(
        lime_dual.left_landmark, matcher, max_edits=12
    )
    print(counterfactual.render())


if __name__ == "__main__":
    main()
