"""Quickstart: train an EM model and explain two of its predictions.

Run with::

    python examples/quickstart.py

Loads the BeerAdvo-RateBeer stand-in (S-BR), trains the paper's Logistic
Regression matcher, and prints dual Landmark explanations for one record of
each class.  Match records use single-entity generation; non-match records
use double-entity generation with landmark-token injection — exactly the
``generation="auto"`` policy.
"""

from repro import (
    LandmarkExplainer,
    LimeConfig,
    LogisticRegressionMatcher,
    evaluate_matcher,
    load_dataset,
)


def main() -> None:
    dataset = load_dataset("S-BR", seed=0, size_cap=450)
    print(f"dataset: {dataset.name}, {len(dataset)} pairs, "
          f"{dataset.match_rate:.1%} matches")

    matcher = LogisticRegressionMatcher().fit(dataset)
    print("\nmatcher quality on the training data:")
    print(evaluate_matcher(matcher, dataset).report())

    explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=128, seed=0), seed=0
    )

    match_pair = next(pair for pair in dataset if pair.is_match)
    non_match_pair = next(pair for pair in dataset if not pair.is_match)

    for pair in (match_pair, non_match_pair):
        print("\n" + "=" * 72)
        print(pair.describe())
        print(f"model match probability: {matcher.predict_one(pair):.3f}")
        dual = explainer.explain(pair)  # auto: single for match, double else
        print(dual.render(k=4))


if __name__ == "__main__":
    main()
