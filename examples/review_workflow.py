"""A reviewer workflow: explain, persist, report, propose a fix.

The paper's business motivation is human review: an analyst sees a model
decision, wants to know why, and wants artifacts to attach to a ticket.
This example plays that workflow end to end for one borderline record:

1. explain it (dual landmark explanation),
2. persist the explanation as JSON (re-loadable without the model),
3. render the reviewer-facing HTML and markdown reports,
4. propose the minimal counterfactual edit set that would flip the model.

Artifacts land in ``review_artifacts/`` next to this script.
"""

from pathlib import Path

import numpy as np

from repro import (
    LandmarkExplainer,
    LimeConfig,
    LogisticRegressionMatcher,
    greedy_counterfactual,
    load_dataset,
)
from repro.core.report import save_html, to_markdown
from repro.core.serialize import load_explanation, save_explanation

ARTIFACT_DIR = Path(__file__).parent / "review_artifacts"


def main() -> None:
    dataset = load_dataset("S-WA", seed=0, size_cap=1500)
    matcher = LogisticRegressionMatcher().fit(dataset)
    probabilities = matcher.predict_proba(dataset.pairs)
    borderline = int(np.argmin(np.abs(probabilities - 0.5)))
    pair = dataset[borderline]
    print(f"reviewing pair #{pair.pair_id} "
          f"(p={probabilities[borderline]:.3f}, gold="
          f"{'match' if pair.is_match else 'non-match'})")
    print(pair.describe(max_width=44))

    # 1. explain
    explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=192, seed=0), seed=0
    )
    dual = explainer.explain(pair)

    # 2. persist + reload (what a ticket system would store)
    ARTIFACT_DIR.mkdir(exist_ok=True)
    json_path = ARTIFACT_DIR / f"pair_{pair.pair_id}.json"
    save_explanation(dual, json_path)
    restored = load_explanation(json_path)
    print(f"\nsaved + reloaded explanation: {json_path} "
          f"({json_path.stat().st_size} bytes)")

    # 3. reviewer-facing reports
    html_path = save_html(restored, ARTIFACT_DIR / f"pair_{pair.pair_id}.html")
    markdown_path = ARTIFACT_DIR / f"pair_{pair.pair_id}.md"
    markdown_path.write_text(to_markdown(restored) + "\n", encoding="utf-8")
    print(f"reports: {html_path.name}, {markdown_path.name}")
    print("\n" + restored.render(k=3))

    # 4. the proposed fix
    counterfactual = greedy_counterfactual(
        restored.left_landmark, matcher, max_edits=8
    )
    print("\nproposed counterfactual:")
    print(counterfactual.render())


if __name__ == "__main__":
    main()
