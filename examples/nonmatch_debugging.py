"""Debugging an EM model's mistakes with Landmark explanations.

The paper's motivation (Sec. 1): interpretability helps "debug erroneous
behaviors and diagnose unexpected results".  This example finds the
records the matcher gets wrong on the Walmart-Amazon stand-in and uses
Landmark Explanation to show *why*:

* for a **false negative** (a true match predicted non-match) the
  double-entity explanation lists the tokens whose absence broke the match;
* for a **false positive** (a true non-match predicted match) the
  single-entity explanation lists the shared tokens that fooled the model.
"""

import numpy as np

from repro import (
    GENERATION_DOUBLE,
    GENERATION_SINGLE,
    LandmarkExplainer,
    LimeConfig,
    LogisticRegressionMatcher,
    load_dataset,
    train_test_split,
)


def find_mistakes():
    """Search the dirty benchmarks for a split where the matcher errs.

    A well-regularized matcher on the clean stand-ins is often perfect;
    the dirty variants (values moved to the wrong attribute) reliably
    produce a few mistakes to debug.
    """
    for code in ("D-WA", "D-IA", "S-WA", "S-BR"):
        for seed in (0, 1, 2):
            dataset = load_dataset(code, seed=seed, size_cap=2500)
            train, test = train_test_split(dataset, test_fraction=0.5, seed=seed)
            matcher = LogisticRegressionMatcher().fit(train)
            probabilities = matcher.predict_proba(test.pairs)
            predicted = (probabilities >= 0.5).astype(int)
            if (predicted != test.labels).any():
                print(f"debugging {code} (seed {seed})")
                return test, matcher, probabilities, predicted
    raise SystemExit("no mistakes found anywhere — nothing to debug")


def main() -> None:
    test, matcher, probabilities, predicted = find_mistakes()
    explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=128, seed=0), seed=0
    )
    labels = test.labels

    false_negatives = np.flatnonzero((labels == 1) & (predicted == 0))
    false_positives = np.flatnonzero((labels == 0) & (predicted == 1))
    print(
        f"test split: {len(test)} pairs, "
        f"{len(false_negatives)} false negatives, "
        f"{len(false_positives)} false positives"
    )

    if false_negatives.size:
        index = int(false_negatives[0])
        pair = test[index]
        print("\n" + "=" * 72)
        print("FALSE NEGATIVE — a true match the model rejected "
              f"(p={probabilities[index]:.3f})")
        print(pair.describe(max_width=48))
        dual = explainer.explain(pair, GENERATION_DOUBLE)
        print("\ntokens that would repair the match (positive weight):")
        for word, attribute, weight, injected in dual.left_landmark.top_tokens(
            5, sign="positive"
        ):
            origin = "injected" if injected else "own"
            print(f"  {weight:+.4f}  {word:<16} [{attribute}, {origin}]")
        print("\ntokens that broke it (negative weight):")
        for word, attribute, weight, _ in dual.left_landmark.top_tokens(
            5, sign="negative"
        ):
            print(f"  {weight:+.4f}  {word:<16} [{attribute}]")

    if false_positives.size:
        index = int(false_positives[0])
        pair = test[index]
        print("\n" + "=" * 72)
        print("FALSE POSITIVE — a non-match the model accepted "
              f"(p={probabilities[index]:.3f})")
        print(pair.describe(max_width=48))
        dual = explainer.explain(pair, GENERATION_SINGLE)
        print("\nshared tokens that fooled the model (positive weight):")
        combined = dual.combined()
        for entry in combined.top(6):
            print(
                f"  {entry.weight:+.4f}  {entry.word:<16} "
                f"[{entry.side}.{entry.attribute}]"
            )

    if not false_negatives.size and not false_positives.size:
        print("the matcher made no mistakes on this split; "
              "increase --size-cap noise or try another seed")


if __name__ == "__main__":
    main()
