"""Global model interpretation by aggregating local explanations.

The paper's future work: "techniques for summarizing the explanations to
facilitate the interpretation of the EM model as a whole."  This example
implements that direction with :func:`repro.summarize_explanations`:
explain a balanced sample of iTunes-Amazon records and aggregate the dual
explanations into

* a per-attribute impact report (which attributes the model listens to,
  globally), and
* the words that act as match / mismatch evidence across the dataset.
"""

from repro import (
    LandmarkExplainer,
    LimeConfig,
    LogisticRegressionMatcher,
    load_dataset,
    sample_per_label,
    summarize_explanations,
)
from repro.exceptions import ExplanationError


def main() -> None:
    dataset = load_dataset("S-IA", seed=0, size_cap=539)
    matcher = LogisticRegressionMatcher().fit(dataset)
    explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=96, seed=0), seed=0
    )

    sample = sample_per_label(dataset, per_label=15, seed=0)
    explanations = []
    for pair in sample:
        try:
            explanations.append(explainer.explain(pair))
        except ExplanationError:
            continue

    summary = summarize_explanations(explanations)
    print(summary.render(k=15))

    print("\nwords acting as global MATCH evidence (mean weight > 0):")
    for word, weight, count in summary.top_words(8, sign="positive"):
        print(f"  {weight:+.4f}  {word:<20} (seen {count}x)")

    print("\nwords acting as global MISMATCH evidence (mean weight < 0):")
    for word, weight, count in summary.top_words(8, sign="negative"):
        print(f"  {weight:+.4f}  {word:<20} (seen {count}x)")

    print("\nmodel-side attribute ranking for comparison:")
    print("  " + " > ".join(matcher.attribute_ranking()))


if __name__ == "__main__":
    main()
