"""End-to-end entity matching: block → match → explain.

The benchmark datasets the paper evaluates on are pre-blocked candidate
pairs.  This example runs the whole upstream pipeline on two synthetic
product catalogs with a known gold matching:

1. **blocking** — an inverted-index blocker prunes the cross product to
   candidate pairs that share identifying tokens;
2. **matching** — a Logistic Regression matcher, trained on a labelled
   slice of the candidates, scores the rest;
3. **explaining** — Landmark Explanation justifies the matcher's calls on
   the two most uncertain candidates (the ones a human reviewer would be
   shown first).
"""

from repro import (
    EMDataset,
    LandmarkExplainer,
    LimeConfig,
    LogisticRegressionMatcher,
    PairSchema,
    RecordPair,
    evaluate_matcher,
    train_test_split,
)
from repro.blocking import InvertedIndexBlocker
from repro.data.synthetic.generator import SyntheticEMGenerator
from repro.data.synthetic.vocabularies import WALMART_AMAZON_FACTORY

import numpy as np


def main() -> None:
    generator = SyntheticEMGenerator(WALMART_AMAZON_FACTORY, seed=7)
    left_table, right_table, gold = generator.generate_tables(
        n_entities=300, overlap=0.4
    )
    print(f"catalogs: {len(left_table)} x {len(right_table)} entities, "
          f"{len(gold)} gold matches")

    # --- 1. blocking ---------------------------------------------------
    blocker = InvertedIndexBlocker(
        attributes=("title", "brand", "modelno"), min_shared_tokens=2
    )
    candidates, report = blocker.report(left_table, right_table, gold)
    print(report.render())

    # --- 2. matching ----------------------------------------------------
    schema = PairSchema(WALMART_AMAZON_FACTORY.attributes)
    pairs = [
        RecordPair(
            schema=schema,
            left=left_table[left_id],
            right=right_table[right_id],
            label=int((left_id, right_id) in gold),
            pair_id=index,
        )
        for index, (left_id, right_id) in enumerate(candidates)
    ]
    dataset = EMDataset("blocked-candidates", schema, pairs)
    print(f"candidate dataset: {len(dataset)} pairs, "
          f"{dataset.match_rate:.1%} matches")

    train, test = train_test_split(dataset, test_fraction=0.4, seed=7)
    matcher = LogisticRegressionMatcher().fit(train)
    print("\nmatcher quality on held-out candidates:")
    print(evaluate_matcher(matcher, test).report())

    # --- 3. explaining the borderline calls ------------------------------
    probabilities = matcher.predict_proba(test.pairs)
    uncertainty = np.abs(probabilities - 0.5)
    explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=96, seed=7), seed=7
    )
    for index in np.argsort(uncertainty)[:2]:
        pair = test[int(index)]
        print("\n" + "=" * 72)
        print(f"borderline candidate (p={probabilities[int(index)]:.3f}, "
              f"gold={'match' if pair.is_match else 'non-match'})")
        print(pair.describe(max_width=44))
        print(explainer.explain(pair).render(k=3))


if __name__ == "__main__":
    main()
