"""A tour of the pipeline — the paper's Figure 2, executed step by step.

Figure 2 contrasts a generic post-hoc perturbation explainer (top row) with
its Landmark extension (bottom row).  This script drives each component by
hand on one record, printing the intermediate artifacts, so the
architecture is visible in data rather than in a diagram:

    Landmark generation → Perturbation generation → Pair reconstruction
        → Dataset reconstruction → Surrogate model creation
"""

import numpy as np

from repro import LogisticRegressionMatcher, load_dataset
from repro.core.generation import GENERATION_DOUBLE, LandmarkGenerator
from repro.core.reconstruction import DatasetReconstructor, PairReconstructor
from repro.explainers.perturbation import sample_masks
from repro.surrogate.kernels import cosine_distance_to_ones, exponential_kernel
from repro.surrogate.linear_model import WeightedRidge

ASCII_PIPELINE = """
 generic explainer (Fig. 2, top):
   [record] -> Perturbation generation -> Dataset reconstruction
            -> Surrogate model creation -> explanation

 Landmark Explanation (Fig. 2, bottom):
   [record] -> Landmark generation  (x2: one per landmark side)
            -> Perturbation generation   (varying entity only)
            -> Pair reconstruction       (re-attach the frozen landmark)
            -> Dataset reconstruction    (black-box model labels pairs)
            -> Surrogate model creation  (weighted ridge)
            -> dual explanation
"""


def main() -> None:
    print(ASCII_PIPELINE)
    dataset = load_dataset("S-BR", seed=0, size_cap=450)
    matcher = LogisticRegressionMatcher().fit(dataset)
    record = next(pair for pair in dataset if not pair.is_match)
    print("record under explanation:")
    print(record.describe())

    # --- 1. Landmark generation -------------------------------------------
    generator = LandmarkGenerator()
    instance = generator.generate(record, "left", GENERATION_DOUBLE)
    print(f"\n[1] landmark generation: landmark={instance.landmark_side}, "
          f"varying={instance.varying_side}, generation={instance.generation}")
    print(f"    {len(instance.tokens)} perturbable tokens "
          f"({instance.n_injected} injected from the landmark):")
    print("    " + " ".join(token.prefixed for token in instance.tokens[:8]) + " ...")

    # --- 2. Perturbation generation ----------------------------------------
    rng = np.random.default_rng(0)
    masks = sample_masks(len(instance.tokens), 64, rng)
    print(f"\n[2] perturbation generation: {masks.shape[0]} binary masks over "
          f"{masks.shape[1]} tokens (first row = unperturbed)")

    # --- 3. Pair reconstruction --------------------------------------------
    reconstructor = PairReconstructor()
    example_pair = reconstructor.rebuild(instance, masks[1])
    print("\n[3] pair reconstruction of mask #1 (varying side only changes):")
    print(f"    right.beer_name: {example_pair.right['beer_name']!r}")
    print(f"    left .beer_name: {example_pair.left['beer_name']!r}  (frozen)")

    # --- 4. Dataset reconstruction -----------------------------------------
    predict_masks = DatasetReconstructor(matcher, reconstructor).predict_masks_fn(
        instance
    )
    probabilities = predict_masks(masks)
    print(f"\n[4] dataset reconstruction: model probabilities for every mask")
    print(f"    p(original augmented record) = {probabilities[0]:.3f}, "
          f"range over perturbations = [{probabilities.min():.3f}, "
          f"{probabilities.max():.3f}]")

    # --- 5. Surrogate model creation ----------------------------------------
    distances = cosine_distance_to_ones(masks)
    weights = exponential_kernel(distances)
    surrogate = WeightedRidge(alpha=1.0).fit(
        masks.astype(float), probabilities, weights
    )
    print("\n[5] surrogate model creation (weighted ridge):")
    print(f"    R² = {surrogate.score(masks.astype(float), probabilities, weights):.3f}")
    order = np.argsort(-np.abs(surrogate.coef_))[:5]
    for index in order:
        token = instance.tokens[int(index)]
        origin = "injected" if instance.injected[int(index)] else "own"
        print(f"    {surrogate.coef_[int(index)]:+.4f}  {token.word:<16} "
              f"[{token.attribute}, {origin}]")
    print("\nThese five steps are exactly what LandmarkExplainer.explain() runs, "
          "once per landmark side.")


if __name__ == "__main__":
    main()
