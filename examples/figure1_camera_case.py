"""The paper's Figure 1 / Examples 1.1-1.2, end to end.

The record: a Sony digital camera on the left, a Nikon leather case on the
right — obviously non-matching to a human, and classified non-matching by
the model.  The question the paper asks: *which tokens explain that
decision, and which tokens would have made it a match?*

The script trains a Logistic Regression matcher on an electronics catalog
(the Amazon-Google stand-in schema: title / manufacturer / price), builds
the Figure 1 record, and prints the two landmark explanations the paper
walks through in Example 1.2 — for each landmark, the top-3 tokens whose
presence in the *other* entity would push the record toward the matching
class.
"""

from repro import (
    GENERATION_DOUBLE,
    LandmarkExplainer,
    LimeConfig,
    LogisticRegressionMatcher,
    RecordPair,
    load_dataset,
)


def build_figure1_record(schema) -> RecordPair:
    """The record of Figure 1, mapped onto the S-AG product schema."""
    return RecordPair(
        schema=schema,
        left={
            "title": (
                "sony alpha digital slr camera with lens kit dslra200w "
                "10.2 megapixels"
            ),
            "manufacturer": "sony",
            "price": "849.99",
        },
        right={
            "title": "nikon digital camera leather case 5811 leather black",
            "manufacturer": "nikon",
            "price": "7.99",
        },
        label=0,
        pair_id=0,
    )


def main() -> None:
    dataset = load_dataset("S-AG", seed=0, size_cap=2000)
    matcher = LogisticRegressionMatcher().fit(dataset)
    record = build_figure1_record(dataset.schema)

    print("Figure 1 record:")
    print(record.describe(max_width=60))
    probability = matcher.predict_one(record)
    print(f"\nEM model match probability: {probability:.3f} "
          f"(classified {'match' if probability >= 0.5 else 'non-match'})")

    explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=256, seed=0), seed=0
    )
    dual = explainer.explain(record, GENERATION_DOUBLE)

    print("\nExample 1.2 — explanation with the LEFT entity as landmark")
    print("(tokens of the right entity + injected left tokens; positive")
    print(" weight = would push the pair toward matching):")
    for word, attribute, weight, injected in dual.left_landmark.top_tokens(3):
        origin = "injected from landmark" if injected else "right entity"
        print(f"  {weight:+.4f}  {word:<12} [{attribute}, {origin}]")

    print("\nExample 1.2 — explanation with the RIGHT entity as landmark:")
    for word, attribute, weight, injected in dual.right_landmark.top_tokens(3):
        origin = "injected from landmark" if injected else "left entity"
        print(f"  {weight:+.4f}  {word:<12} [{attribute}, {origin}]")

    left_words = [
        word for word, *_ in dual.left_landmark.top_tokens(3, sign="positive")
    ]
    right_words = [
        word for word, *_ in dual.right_landmark.top_tokens(3, sign="positive")
    ]
    print(
        "\nReading: if the right entity were described by "
        f"{', '.join(left_words) or '(nothing)'} the model would lean "
        "toward match;\nwith the right entity as the landmark the "
        f"equivalent tokens are {', '.join(right_words) or '(nothing)'}.\n"
        "This is the paper's notion of an *interesting* non-match "
        "explanation: not\nwhy the entities differ (there are countless "
        "reasons), but what would\nhave to change for the model to call "
        "them the same."
    )


if __name__ == "__main__":
    main()
