"""Model-agnosticism: the same record explained under three matchers.

Landmark Explanation only requires ``predict_proba`` — the paper couples it
with LIME precisely because post-hoc perturbation explainers are
model-agnostic.  This example explains one non-match record of the
Fodors-Zagats stand-in under:

* the paper's Logistic Regression,
* a numpy MLP over similarity features,
* gradient-boosted stumps (non-differentiable, tree-based),
* a token-embedding network (the DeepMatcher-style stand-in), and
* an intrinsically interpretable rule-based matcher,

and prints the top tokens each model's explanation agrees or disagrees on.
"""

from repro import (
    EmbeddingMatcher,
    GENERATION_DOUBLE,
    GradientBoostedStumpsMatcher,
    LandmarkExplainer,
    LimeConfig,
    LogisticRegressionMatcher,
    MLPMatcher,
    RuleBasedMatcher,
    evaluate_matcher,
    load_dataset,
)


def main() -> None:
    dataset = load_dataset("S-FZ", seed=0, size_cap=900)
    record = next(pair for pair in dataset if not pair.is_match)
    print(record.describe(max_width=44))

    matchers = {
        "logistic regression": LogisticRegressionMatcher(),
        "mlp (numpy)": MLPMatcher(hidden_sizes=(24,), epochs=200, seed=0),
        "boosted stumps": GradientBoostedStumpsMatcher(n_stumps=60),
        "token embeddings": EmbeddingMatcher(epochs=100, seed=0),
        "rule-based": RuleBasedMatcher(),
    }

    for name, matcher in matchers.items():
        matcher.fit(dataset)
        quality = evaluate_matcher(matcher, dataset)
        explainer = LandmarkExplainer(
            matcher, lime_config=LimeConfig(n_samples=128, seed=0), seed=0
        )
        dual = explainer.explain(record, GENERATION_DOUBLE)
        print("\n" + "=" * 72)
        print(
            f"{name}: f1={quality.f1:.3f}, "
            f"p(match)={matcher.predict_one(record):.3f}"
        )
        print("top tokens (left entity as landmark):")
        for word, attribute, weight, injected in dual.left_landmark.top_tokens(4):
            origin = "injected" if injected else "own"
            print(f"  {weight:+.4f}  {word:<16} [{attribute}, {origin}]")


if __name__ == "__main__":
    main()
