"""The ``repro-em`` command line.

Sub-commands:

* ``datasets`` — print Table 1 (nominal, or measured with ``--materialize``)
  and optionally export the synthetic CSVs.
* ``train`` — train a matcher on one dataset and print its quality report.
* ``explain`` — explain one record of a dataset with Landmark Explanation
  (and optionally the baselines) and print the rendered explanations.
* ``experiment`` — run the full evaluation protocol and print Tables 2-4
  (``--preset fast`` by default; ``--preset paper`` reproduces the paper's
  sample sizes).
* ``summarize`` — aggregate explanations over many records into a global
  model summary (the paper's future-work direction).
* ``serve`` — run the long-lived explanation service (JSONL over
  stdin/stdout, or a localhost HTTP endpoint with ``--http``), backed by
  the persistent explanation store.  With ``--backend HOST:PORT`` the
  service computes no predictions locally: every matcher call goes to a
  shared ``serve-matcher`` process.
* ``serve-matcher`` — run the standalone matcher server one or many
  service shards dial with ``--backend``.
* ``serve-shard`` — run one standing shard host of a cross-host fleet;
  a ``serve --fleet fleet.json`` supervisor adopts it over TCP and it
  keeps its engines and store partition warm across supervisor
  disconnects (partitions).
* ``precompute`` — warm the explanation store for a dataset split,
  resumable with ``--resume`` (the store-only bulk job in
  :mod:`repro.bulk.warm`).
* ``bulk`` — dataset-scale bulk explanation job: stream a pair source
  (dataset rows, blocker candidates, an explicit pair list, or an
  external CSV via ``--input``) through the prediction engine in chunks,
  deduplicate against the explanation store, fold every explanation into
  a streaming global aggregation report, and journal completed chunks so
  ``--resume`` reproduces an uninterrupted run byte-for-byte.

``train``, ``explain``, ``serve`` and ``precompute`` accept
``--model-dir``: trained matchers are persisted there as fingerprinted
artifacts and reused instead of retraining on every invocation.  On the
serving paths (``serve-matcher``) artifact loading is *strict*: a
fingerprint mismatch is :class:`~repro.exceptions.ArtifactMismatchError`,
never a silent retrain.
"""

from __future__ import annotations

import argparse
import dataclasses
import logging
import os
import sys
from pathlib import Path

from repro.config import get_preset
from repro.core.engine import EngineConfig, PredictionEngine
from repro.data.io import write_csv
from repro.data.splits import sample_per_label
from repro.data.synthetic.magellan import (
    DATASET_CODES,
    load_benchmark,
    load_dataset,
    table1_rows,
)
from repro.core.landmark import LandmarkExplainer
from repro.core.summarize import summarize_explanations
from repro.baselines.mojito import MojitoCopyExplainer, MojitoDropExplainer
from repro.evaluation.runner import ExperimentRunner
from repro.evaluation.tables import format_all_tables, format_table1
from repro.exceptions import ExplanationError, ReproError
from repro.explainers.lime_text import LimeConfig
from repro.matchers.evaluate import evaluate_matcher
from repro.matchers.boosting import GradientBoostedStumpsMatcher
from repro.matchers.embedding import EmbeddingMatcher
from repro.matchers.logistic import LogisticRegressionMatcher
from repro.matchers.neural import MLPMatcher
from repro.matchers.rules import RuleBasedMatcher

_MATCHERS = {
    "logistic": LogisticRegressionMatcher,
    "mlp": MLPMatcher,
    "rules": RuleBasedMatcher,
    "boosted": GradientBoostedStumpsMatcher,
    "embedding": EmbeddingMatcher,
}


def _add_common_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="S-BR", choices=DATASET_CODES, help="benchmark code"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--size-cap", type=int, default=None, help="cap the generated dataset size"
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n-jobs", type=int, default=1,
        help="threads per prediction batch (model calls run in parallel)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the prediction cache (results are identical either way)",
    )
    parser.add_argument(
        "--no-vectorize", action="store_true",
        help="disable columnar mask application and batch-matrix matcher "
             "calls, falling back to per-pair rebuilds (results are "
             "bit-identical either way)",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", nargs="?", const="trace.json", default=None, metavar="PATH",
        help="record pipeline trace spans and write them as JSON on exit "
             "(default path: trace.json); results are identical either way",
    )
    parser.add_argument(
        "--no-metrics", action="store_true",
        help="disable the metrics registry (every counter becomes a no-op)",
    )


def _obs_registry(args: argparse.Namespace):
    """The run's metrics registry, honouring --trace / --no-metrics."""
    from repro.obs import MetricsRegistry, trace

    if getattr(args, "trace", None) is not None:
        trace.enable()
    return MetricsRegistry(enabled=not getattr(args, "no_metrics", False))


def _obs_finish(args: argparse.Namespace, registry,
                metrics_path: Path | None = None) -> None:
    """Write the trace / metrics artifacts the flags asked for."""
    from repro.evaluation.persistence import save_metrics
    from repro.obs import trace

    if getattr(args, "trace", None) is not None:
        path = trace.save(args.trace)
        trace.disable()
        print(f"wrote {path}", file=sys.stderr)
    if metrics_path is not None and registry.enabled:
        save_metrics(registry, metrics_path)
        print(f"wrote {metrics_path}", file=sys.stderr)


def _add_model_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model-dir", type=Path, default=None,
        help="persist/load trained matchers as fingerprinted artifacts "
             "here instead of retraining on every invocation",
    )


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--matcher", default="logistic", choices=sorted(_MATCHERS)
    )
    _add_model_dir_argument(parser)
    parser.add_argument(
        "--store-dir", type=Path, default=None,
        help="directory of the persistent explanation store",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="explanation worker threads"
    )
    parser.add_argument(
        "--queue-size", type=int, default=256,
        help="bound of the pending-request priority queue",
    )
    parser.add_argument(
        "--store-max-entries", type=int, default=10_000,
        help="LRU capacity of the explanation store",
    )
    parser.add_argument(
        "--store-ttl", type=float, default=None,
        help="expire stored explanations older than this many seconds",
    )
    parser.add_argument(
        "--samples", type=int, default=128,
        help="default perturbation budget per request",
    )
    parser.add_argument(
        "--explainer", default="lime", choices=("lime", "shap"),
        help="default generic explainer per request",
    )
    parser.add_argument(
        "--max-retries", type=int, default=0,
        help="retry failing matcher calls up to N times (guard)",
    )
    parser.add_argument(
        "--call-timeout", type=float, default=None,
        help="abandon a matcher call after this many seconds (guard)",
    )
    parser.add_argument(
        "--shed-threshold", type=int, default=None,
        help="shed new requests (HTTP 429) once this many are queued",
    )
    parser.add_argument(
        "--max-queue-wait", type=float, default=None,
        help="shed new requests once the estimated queue wait exceeds "
             "this many seconds",
    )
    parser.add_argument(
        "--deadline", type=float, default=None,
        help="default per-request latency budget in seconds; a request "
             "past its deadline aborts between matcher chunks",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds a graceful shutdown (SIGTERM / close) may spend "
             "finishing queued work before cancelling it",
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=0.0,
        help="coalesce concurrent requests' matcher batches within this "
             "window (0 disables cross-request batching; results are "
             "bit-identical either way)",
    )
    parser.add_argument(
        "--batch-max-size", type=int, default=1024,
        help="flush a coalesced matcher batch once this many rows are "
             "pending (only with --batch-window-ms > 0)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="worker processes, each owning a matcher, a prediction "
             "engine and its own store partition, fronted by a "
             "consistent-hash router and a supervising shard manager; "
             "1 (the default) keeps the single-process service, "
             "bit-identical to previous releases",
    )
    parser.add_argument(
        "--virtual-nodes", type=int, default=64,
        help="ring positions per shard on the consistent-hash router "
             "(only with --shards > 1)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.5,
        help="seconds between shard liveness heartbeats",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=5.0,
        help="a shard silent this long is declared hung and restarted",
    )
    parser.add_argument(
        "--restart-backoff", type=float, default=0.5,
        help="base seconds of the capped exponential backoff between "
             "shard restarts",
    )
    parser.add_argument(
        "--max-failovers", type=int, default=1,
        help="times an in-flight request may fail over to another shard "
             "after a crash before returning a retryable 503",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=5.0,
        help="per-attempt TCP dial timeout to a fleet shard host "
             "(only with --fleet)",
    )
    parser.add_argument(
        "--connect-budget", type=float, default=30.0,
        help="total seconds of dial-with-retry per launch cycle before "
             "it counts as a failed connect (only with --fleet)",
    )
    parser.add_argument(
        "--host-loss-after", type=int, default=3,
        help="consecutive failed connect cycles before a fleet host is "
             "declared lost and replaced by a standby (only with --fleet)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="HOST:PORT",
        help="serve predictions from a remote serve-matcher process at "
             "this address instead of training/loading a matcher locally "
             "(all shards share the one model; the routing fingerprint "
             "is taken from its handshake)",
    )
    parser.add_argument(
        "--fleet", type=Path, default=None, metavar="FLEET.JSON",
        help="run the shards on standing serve-shard hosts described by "
             "this fleet file ({\"shards\": [{\"id\", \"host\", \"port\"}], "
             "\"standbys\": [...], \"quorum\": N}) instead of spawning "
             "local processes; the file's shard count overrides --shards",
    )
    _add_engine_arguments(parser)
    _add_obs_arguments(parser)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-em",
        description="Landmark Explanation (EDBT 2021) reproduction toolkit",
    )
    parser.add_argument("--verbose", action="store_true", help="log progress")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="print/export Table 1")
    datasets.add_argument("--materialize", action="store_true")
    datasets.add_argument("--export-dir", type=Path, default=None)
    datasets.add_argument("--seed", type=int, default=0)
    datasets.add_argument("--size-cap", type=int, default=None)

    train = subparsers.add_parser("train", help="train and evaluate a matcher")
    _add_common_dataset_arguments(train)
    train.add_argument("--matcher", default="logistic", choices=sorted(_MATCHERS))
    train.add_argument("--threshold", type=float, default=0.5)
    _add_model_dir_argument(train)

    explain = subparsers.add_parser("explain", help="explain one record")
    _add_common_dataset_arguments(explain)
    explain.add_argument(
        "--matcher", default="logistic", choices=sorted(_MATCHERS)
    )
    _add_model_dir_argument(explain)
    explain.add_argument("--record", type=int, default=0, help="record index")
    explain.add_argument(
        "--generation", default="auto", choices=("auto", "single", "double")
    )
    explain.add_argument("--samples", type=int, default=256)
    explain.add_argument("--top", type=int, default=5)
    explain.add_argument(
        "--explainer", default="lime", choices=("lime", "shap"),
        help="generic explainer to couple with the landmark pipeline",
    )
    explain.add_argument(
        "--baselines", action="store_true", help="also run LIME drop / Mojito copy"
    )
    _add_engine_arguments(explain)
    _add_obs_arguments(explain)

    experiment = subparsers.add_parser("experiment", help="run Tables 2-4")
    experiment.add_argument(
        "--preset", default="fast", choices=("fast", "paper", "bench")
    )
    experiment.add_argument(
        "--datasets", nargs="*", default=None, choices=DATASET_CODES, metavar="CODE"
    )
    experiment.add_argument("--output", type=Path, default=None)
    experiment.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (datasets run in parallel)",
    )
    experiment.add_argument(
        "--run-dir", type=Path, default=None,
        help="checkpoint each completed grid cell into this directory",
    )
    experiment.add_argument(
        "--resume", action="store_true",
        help="resume the run checkpointed in --run-dir (config is read "
             "from the checkpoint; completed cells are skipped)",
    )
    experiment.add_argument(
        "--max-retries", type=int, default=0,
        help="retry failing matcher calls up to N times (guard)",
    )
    experiment.add_argument(
        "--call-timeout", type=float, default=None,
        help="abandon a matcher call after this many seconds (guard)",
    )
    _add_engine_arguments(experiment)
    _add_obs_arguments(experiment)

    serve = subparsers.add_parser(
        "serve", help="long-running explanation service (JSONL stdio / HTTP)"
    )
    _add_common_dataset_arguments(serve)
    _add_service_arguments(serve)
    serve.add_argument(
        "--http", default=None, metavar="HOST:PORT",
        help="serve over HTTP on this address instead of stdin/stdout",
    )

    serve_matcher = subparsers.add_parser(
        "serve-matcher",
        help="standalone matcher server shared by service shards",
    )
    _add_common_dataset_arguments(serve_matcher)
    serve_matcher.add_argument(
        "--matcher", default="logistic", choices=sorted(_MATCHERS)
    )
    _add_model_dir_argument(serve_matcher)
    serve_matcher.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_matcher.add_argument(
        "--port", type=int, default=7654,
        help="bind port (0 picks an ephemeral one)",
    )
    serve_matcher.add_argument(
        "--server-workers", type=int, default=4,
        help="prediction threads serving concurrent in-flight batches",
    )
    serve_matcher.add_argument(
        "--max-batch-size", type=int, default=None,
        help="largest row count one predict call may carry "
             "(default: the protocol default, 4096)",
    )

    serve_shard = subparsers.add_parser(
        "serve-shard",
        help="standing shard host adopted by a --fleet supervisor",
    )
    serve_shard.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_shard.add_argument(
        "--port", type=int, default=9301,
        help="bind port (0 picks an ephemeral one)",
    )
    serve_shard.add_argument(
        "--store-dir", type=Path, default=None,
        help="host-local directory for this shard's store partition "
             "(default: serve without a persistent store)",
    )
    serve_shard.add_argument(
        "--store-max-entries", type=int, default=10_000,
        help="LRU capacity of the store partition",
    )
    serve_shard.add_argument(
        "--store-ttl", type=float, default=None,
        help="seconds before a stored explanation expires",
    )

    precompute = subparsers.add_parser(
        "precompute", help="warm the explanation store for a dataset split"
    )
    _add_common_dataset_arguments(precompute)
    _add_service_arguments(precompute)
    precompute.add_argument(
        "--per-label", type=int, default=None,
        help="records per label to warm (default: every record)",
    )
    precompute.add_argument(
        "--method", default="both",
        choices=("single", "double", "auto", "both"),
    )
    precompute.add_argument(
        "--resume", action="store_true",
        help="skip keys journaled by a previous precompute that are still "
             "servable from the store",
    )

    bulk = subparsers.add_parser(
        "bulk",
        help="dataset-scale bulk explanation job with streaming "
             "aggregation and resumable chunk journaling",
    )
    _add_common_dataset_arguments(bulk)
    bulk.add_argument(
        "--input", type=Path, default=None, metavar="CSV",
        help="explain pairs from this CSV instead of a synthetic "
             "benchmark; ill-formed rows are ledgered per record and "
             "skipped, never fatal",
    )
    bulk.add_argument(
        "--matcher", default="logistic", choices=sorted(_MATCHERS)
    )
    _add_model_dir_argument(bulk)
    bulk.add_argument(
        "--source", default="rows", choices=("rows", "block"),
        help="'rows' explains the dataset's own pairs; 'block' re-blocks "
             "the two entity tables with the inverted-index blocker and "
             "explains every candidate",
    )
    bulk.add_argument(
        "--pairs-file", type=Path, default=None,
        help="explicit pair list (one row index or 'left,right' per "
             "line); overrides --source",
    )
    bulk.add_argument(
        "--per-label", type=int, default=None,
        help="with --source rows: records per label (default: all rows)",
    )
    bulk.add_argument(
        "--min-shared-tokens", type=int, default=1,
        help="blocker threshold for --source block",
    )
    bulk.add_argument(
        "--max-token-frequency", type=float, default=0.25,
        help="blocker stop-token cutoff for --source block",
    )
    bulk.add_argument(
        "--method", default="both",
        choices=("single", "double", "auto", "both"),
    )
    bulk.add_argument("--samples", type=int, default=128)
    bulk.add_argument(
        "--explainer", default="lime", choices=("lime", "shap")
    )
    bulk.add_argument(
        "--chunk-size", type=int, default=64,
        help="pairs per chunk (one store transaction and one journal "
             "event per chunk; results are identical for any size)",
    )
    bulk.add_argument(
        "--run-dir", type=Path, default=None,
        help="journal completed chunks here so --resume can continue",
    )
    bulk.add_argument(
        "--resume", action="store_true",
        help="resume the job journaled in --run-dir; the finished report "
             "is byte-identical to an uninterrupted run's",
    )
    bulk.add_argument(
        "--report", type=Path, default=None,
        help="write the JSON aggregation report here",
    )
    bulk.add_argument(
        "--store-dir", type=Path, default=None,
        help="deduplicate against (and warm) this explanation store",
    )
    bulk.add_argument("--store-max-entries", type=int, default=10_000)
    bulk.add_argument("--store-ttl", type=float, default=None)
    bulk.add_argument(
        "--max-retries", type=int, default=0,
        help="retry failing matcher calls up to N times (guard)",
    )
    bulk.add_argument(
        "--call-timeout", type=float, default=None,
        help="abandon a matcher call after this many seconds (guard)",
    )
    bulk.add_argument("--top", type=int, default=15)
    _add_engine_arguments(bulk)
    _add_obs_arguments(bulk)

    selftest = subparsers.add_parser(
        "selftest", help="end-to-end installation check (~10 s)"
    )
    selftest.add_argument("--seed", type=int, default=0)

    summarize = subparsers.add_parser(
        "summarize", help="global explanation summary over many records"
    )
    _add_common_dataset_arguments(summarize)
    summarize.add_argument("--per-label", type=int, default=10)
    summarize.add_argument("--samples", type=int, default=128)
    summarize.add_argument("--top", type=int, default=15)

    counterfactual = subparsers.add_parser(
        "counterfactual", help="minimal token edits that flip a prediction"
    )
    _add_common_dataset_arguments(counterfactual)
    counterfactual.add_argument("--record", type=int, default=0)
    counterfactual.add_argument(
        "--landmark", default="left", choices=("left", "right")
    )
    counterfactual.add_argument("--samples", type=int, default=128)
    counterfactual.add_argument("--max-edits", type=int, default=10)

    report = subparsers.add_parser(
        "report", help="write an HTML / markdown explanation report"
    )
    _add_common_dataset_arguments(report)
    report.add_argument("--record", type=int, default=0)
    report.add_argument("--samples", type=int, default=128)
    report.add_argument(
        "--format", default="html", choices=("html", "markdown")
    )
    report.add_argument("--output", type=Path, required=True)

    profile = subparsers.add_parser(
        "profile", help="token-overlap profile of a benchmark dataset"
    )
    _add_common_dataset_arguments(profile)

    compare = subparsers.add_parser(
        "compare", help="diff two saved experiment runs (JSON)"
    )
    compare.add_argument("baseline", type=Path)
    compare.add_argument("candidate", type=Path)
    return parser


# ---------------------------------------------------------------------------
# Matcher resolution (train-or-load behind --model-dir)
# ---------------------------------------------------------------------------


def _artifact_path(model_dir: Path, args: argparse.Namespace) -> Path:
    cap = args.size_cap if args.size_cap is not None else "full"
    name = f"{args.matcher}-{args.dataset}-seed{args.seed}-cap{cap}.pkl"
    return model_dir / name


def _resolve_matcher(args: argparse.Namespace, dataset):
    """Train the requested matcher, or reuse a persisted artifact.

    Without ``--model-dir`` this trains from scratch (the historical
    behaviour).  With it, the trained matcher is saved once as a
    fingerprinted artifact and loaded on every later invocation with the
    same (matcher, dataset, seed, size-cap) coordinates; an artifact that
    fails its integrity check is retrained and rewritten.
    """
    model_dir: Path | None = getattr(args, "model_dir", None)
    if model_dir is not None:
        from repro.core.serialize import load_matcher, save_matcher
        from repro.exceptions import ArtifactError

        path = _artifact_path(model_dir, args)
        if path.exists():
            try:
                matcher = load_matcher(path)
                logging.getLogger("repro.cli").info("loaded matcher %s", path)
                return matcher
            except ArtifactError as error:
                print(
                    f"warning: {error}; retraining", file=sys.stderr
                )
        matcher = _MATCHERS[args.matcher]().fit(dataset)
        fingerprint = save_matcher(matcher, path)
        # stderr: in `serve` stdio mode, stdout is the JSONL channel.
        print(
            f"saved matcher artifact {path} ({fingerprint[:12]})",
            file=sys.stderr,
        )
        return matcher
    return _MATCHERS[args.matcher]().fit(dataset)


# ---------------------------------------------------------------------------
# Sub-command implementations
# ---------------------------------------------------------------------------


def _cmd_datasets(args: argparse.Namespace) -> int:
    materialized = None
    if args.materialize or args.export_dir:
        materialized = load_benchmark(seed=args.seed, size_cap=args.size_cap)
    print(format_table1(table1_rows(materialized)))
    if args.export_dir:
        args.export_dir.mkdir(parents=True, exist_ok=True)
        assert materialized is not None
        for code, dataset in materialized.items():
            path = args.export_dir / f"{code}.csv"
            write_csv(dataset, path)
            print(f"wrote {path} ({len(dataset)} pairs)")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    matcher = _resolve_matcher(args, dataset)
    quality = evaluate_matcher(matcher, dataset, threshold=args.threshold)
    print(f"{args.matcher} matcher on {args.dataset} ({len(dataset)} pairs)")
    print(quality.report())
    ranking = getattr(matcher, "attribute_ranking", None)
    if callable(ranking):
        print("attribute ranking:", " > ".join(ranking()))
    describe = getattr(matcher, "describe", None)
    if callable(describe):
        print(describe())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    if not 0 <= args.record < len(dataset):
        print(f"record index {args.record} out of range 0..{len(dataset) - 1}")
        return 2
    pair = dataset[args.record]
    matcher = _resolve_matcher(args, dataset)
    lime_config = LimeConfig(n_samples=args.samples, seed=args.seed)
    registry = _obs_registry(args)
    engine = PredictionEngine(
        matcher,
        EngineConfig(
            cache=not args.no_cache,
            n_jobs=args.n_jobs,
            vectorize=not args.no_vectorize,
        ),
        metrics=registry,
    )
    print(pair.describe())
    print(f"model match probability: {matcher.predict_one(pair):.3f}")
    if args.explainer == "shap":
        from repro.explainers.kernel_shap import KernelShapExplainer

        explainer = LandmarkExplainer(
            matcher,
            explainer=KernelShapExplainer(n_samples=args.samples, seed=args.seed),
            seed=args.seed,
            engine=engine,
        )
    else:
        explainer = LandmarkExplainer(
            matcher, lime_config=lime_config, seed=args.seed, engine=engine
        )
    dual = explainer.explain(pair, generation=args.generation)
    print(dual.render(args.top))
    if args.baselines:
        drop = MojitoDropExplainer(
            matcher, lime_config=lime_config, seed=args.seed, engine=engine
        )
        print(drop.explain(pair).render(args.top))
        copy = MojitoCopyExplainer(
            matcher, lime_config=lime_config, seed=args.seed, engine=engine
        )
        print(copy.explain(pair).render(args.top))
    print(engine.stats.summary())
    _obs_finish(args, registry)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.resume:
        # The checkpoint, not the command line, is the source of truth for
        # a resumed run's configuration: mixing presets would corrupt it.
        from repro.evaluation.persistence import load_checkpoint

        if args.run_dir is None:
            print("error: --resume requires --run-dir", file=sys.stderr)
            return 2
        config = load_checkpoint(args.run_dir).config
    else:
        config = dataclasses.replace(
            get_preset(args.preset),
            engine_n_jobs=args.n_jobs,
            engine_cache=not args.no_cache,
            engine_vectorize=not args.no_vectorize,
            guard_max_retries=args.max_retries,
            guard_call_timeout=args.call_timeout,
        )
    registry = _obs_registry(args)
    runner = ExperimentRunner(config, metrics=registry)
    result = runner.run(
        args.datasets,
        n_jobs=args.jobs,
        run_dir=str(args.run_dir) if args.run_dir else None,
        resume=args.resume,
    )
    report = format_all_tables(result)
    print(report)
    totals = result.engine_totals()
    if totals is not None:
        print(totals.summary())
    ledger = result.ledger()
    if len(ledger):
        print(ledger.summary())
    if args.output:
        args.output.write_text(report + "\n", encoding="utf-8")
        print(f"wrote {args.output}")
    # metrics.json lands next to the run's checkpoint journal (or the
    # report, when only --output was given).  With --jobs > 1 the worker
    # processes accumulate into their own registry copies, so only the
    # serial path yields a complete snapshot — same rule as checkpoints.
    metrics_path = None
    if args.run_dir is not None:
        metrics_path = Path(args.run_dir) / "metrics.json"
    elif args.output is not None:
        metrics_path = args.output.parent / "metrics.json"
    _obs_finish(args, registry, metrics_path)
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    matcher = LogisticRegressionMatcher().fit(dataset)
    explainer = LandmarkExplainer(
        matcher,
        lime_config=LimeConfig(n_samples=args.samples, seed=args.seed),
        seed=args.seed,
    )
    sample = sample_per_label(dataset, args.per_label, seed=args.seed)
    explanations = []
    for pair in sample:
        try:
            explanations.append(explainer.explain(pair))
        except ExplanationError:
            continue
    summary = summarize_explanations(explanations)
    print(summary.render(args.top))
    return 0


def _cmd_counterfactual(args: argparse.Namespace) -> int:
    from repro.core.counterfactual import greedy_counterfactual

    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    if not 0 <= args.record < len(dataset):
        print(f"record index {args.record} out of range 0..{len(dataset) - 1}")
        return 2
    pair = dataset[args.record]
    matcher = LogisticRegressionMatcher().fit(dataset)
    explainer = LandmarkExplainer(
        matcher,
        lime_config=LimeConfig(n_samples=args.samples, seed=args.seed),
        seed=args.seed,
    )
    print(pair.describe())
    landmark = explainer.explain_landmark(pair, args.landmark)
    counterfactual = greedy_counterfactual(
        landmark, matcher, max_edits=args.max_edits
    )
    print(counterfactual.render())
    return 0 if counterfactual.flipped else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import save_html, to_markdown

    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    if not 0 <= args.record < len(dataset):
        print(f"record index {args.record} out of range 0..{len(dataset) - 1}")
        return 2
    pair = dataset[args.record]
    matcher = LogisticRegressionMatcher().fit(dataset)
    explainer = LandmarkExplainer(
        matcher,
        lime_config=LimeConfig(n_samples=args.samples, seed=args.seed),
        seed=args.seed,
    )
    dual = explainer.explain(pair)
    if args.format == "html":
        save_html(dual, args.output)
    else:
        args.output.write_text(to_markdown(dual) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.data.profiling import profile_dataset

    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    profile = profile_dataset(dataset)
    print(profile.render())
    print("attributes by class separation:",
          " > ".join(profile.ranking_by_separation()))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.evaluation.persistence import compare_results, load_result

    baseline = load_result(args.baseline)
    candidate = load_result(args.candidate)
    print(compare_results(baseline, candidate))
    return 0


def _build_service(args: argparse.Namespace, dataset):
    """Assemble (service, store, defaults) from the shared service flags.

    ``--shards N`` with N > 1 builds the multi-process
    :class:`~repro.service.supervisor.ShardedService`; each shard then
    owns its own store partition, so the returned ``store`` is ``None``
    (shutdown is entirely ``service.close()``'s job).
    """
    from repro.config import ServiceConfig, ShardConfig, StoreConfig
    from repro.service import ExplanationService, ExplanationStore

    backend_address = getattr(args, "backend", None)
    # Backend mode trains nothing: the model lives in the serve-matcher
    # process and its handshake fingerprint keys every request.
    matcher = None if backend_address else _resolve_matcher(args, dataset)
    registry = _obs_registry(args)
    service_config = ServiceConfig(
        n_workers=args.workers,
        queue_size=args.queue_size,
        shed_threshold=args.shed_threshold,
        max_queue_wait=args.max_queue_wait,
        default_deadline=args.deadline,
        drain_timeout=args.drain_timeout,
        batch_window_ms=args.batch_window_ms,
        batch_max_size=args.batch_max_size,
    )
    engine_config = EngineConfig(
        cache=not args.no_cache,
        n_jobs=args.n_jobs,
        vectorize=not args.no_vectorize,
        max_retries=args.max_retries,
        call_timeout=args.call_timeout,
    )
    store_config = StoreConfig(
        max_entries=args.store_max_entries,
        ttl_seconds=args.store_ttl,
    )
    defaults = {
        "method": "both",
        "samples": args.samples,
        "explainer": args.explainer,
        "seed": args.seed,
    }
    fleet = None
    if getattr(args, "fleet", None) is not None:
        from repro.service import load_fleet_config

        fleet = load_fleet_config(args.fleet)
    if fleet is not None or getattr(args, "shards", 1) > 1:
        from repro.service import ShardedService

        service = ShardedService(
            matcher,
            store_dir=args.store_dir,
            config=service_config,
            engine_config=engine_config,
            store_config=store_config if args.store_dir is not None else None,
            shard_config=ShardConfig(
                n_shards=max(args.shards, 1),
                virtual_nodes=args.virtual_nodes,
                heartbeat_interval=args.heartbeat_interval,
                heartbeat_timeout=args.heartbeat_timeout,
                restart_backoff_base=args.restart_backoff,
                max_failovers=args.max_failovers,
                connect_timeout=args.connect_timeout,
                connect_budget=args.connect_budget,
                host_loss_after=args.host_loss_after,
            ),
            metrics=registry,
            backend_address=backend_address,
            fleet=fleet,
        )
        return service, None, defaults
    store = None
    if args.store_dir is not None:
        store = ExplanationStore(
            args.store_dir,
            store_config,
            metrics=registry,
        )
    source = matcher
    if backend_address is not None:
        from repro.backends import RemoteBackend

        source = RemoteBackend(backend_address, metrics=registry)
    service = ExplanationService(
        source,
        store=store,
        config=service_config,
        engine_config=engine_config,
        metrics=registry,
    )
    return service, store, defaults


def _write_service_stats(service, store_dir: Path | None) -> None:
    if store_dir is None:
        return
    from repro.evaluation.persistence import save_service_stats

    # In fleet mode the store partitions live on the shard hosts, so
    # nothing has created the local store_dir yet.
    Path(store_dir).mkdir(parents=True, exist_ok=True)
    path = Path(store_dir) / "service_stats.json"
    save_service_stats(service.stats_payload(), path)
    print(f"wrote {path}", file=sys.stderr)


def _install_drain_handler() -> None:
    """Turn SIGTERM into a graceful drain (via the serve cleanup path).

    Raising ``SystemExit`` in the main thread unwinds ``serve_forever`` /
    the stdio loop into ``_cmd_serve``'s ``finally`` block, which closes
    the service with its drain budget and prints the drain summary.
    """
    import signal

    def _on_sigterm(signum, frame):
        print("received SIGTERM: draining...", file=sys.stderr)
        raise SystemExit(0)

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - not in the main thread
        pass


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve_http, serve_stdio

    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    service, store, defaults = _build_service(args, dataset)
    _install_drain_handler()
    try:
        if args.http:
            host, _, port = args.http.rpartition(":")
            server = serve_http(
                service, dataset, defaults,
                host=host or "127.0.0.1", port=int(port),
            )
            address = "http://%s:%d" % server.server_address[:2]
            print(f"serving on {address} (Ctrl-C to stop)", file=sys.stderr)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                server.shutdown()
                server.server_close()
        else:
            serve_stdio(service, dataset, defaults)
    finally:
        drain = service.close()
        if "shards" in drain:
            print(
                f"drain: {len(drain['shards'])} shard(s) drained, "
                f"{drain.get('abandoned', 0)} request(s) abandoned",
                file=sys.stderr,
            )
        else:
            print(
                f"drain: {drain.get('pending_at_close', 0)} pending at close, "
                f"{drain.get('cancelled', 0)} cancelled, "
                f"{drain.get('seconds', 0.0)}s",
                file=sys.stderr,
            )
        print(service.stats.summary(), file=sys.stderr)
        _write_service_stats(service, args.store_dir)
        metrics_path = (
            Path(args.store_dir) / "metrics.json"
            if args.store_dir is not None else None
        )
        _obs_finish(args, service.metrics, None)
        if metrics_path is not None and service.metrics.enabled:
            # service.metrics_json() is fleet-aware: sharded, it merges
            # every shard's final families next to the router's own.
            import json as _json

            metrics_path.write_text(
                _json.dumps(
                    service.metrics_json(), indent=2, sort_keys=True
                ),
                encoding="utf-8",
            )
            print(f"wrote {metrics_path}", file=sys.stderr)
        if store is not None:
            store.close()
    return 0


def _cmd_serve_matcher(args: argparse.Namespace) -> int:
    """Run the standalone matcher server behind ``--backend``."""
    from repro.backends import DEFAULT_MAX_BATCH_SIZE, MatcherServer

    if args.model_dir is not None:
        # Strict on serving paths: a bad or stale artifact is a startup
        # failure (ArtifactError / ArtifactMismatchError), never a
        # silent retrain — shards already minted keys for a fingerprint.
        from repro.core.serialize import load_matcher

        path = _artifact_path(args.model_dir, args)
        matcher = load_matcher(path)
        print(f"loaded matcher artifact {path}", file=sys.stderr)
    else:
        dataset = load_dataset(
            args.dataset, seed=args.seed, size_cap=args.size_cap
        )
        matcher = _MATCHERS[args.matcher]().fit(dataset)
    server = MatcherServer(
        matcher,
        host=args.host,
        port=args.port,
        max_batch_size=(
            DEFAULT_MAX_BATCH_SIZE if args.max_batch_size is None
            else args.max_batch_size
        ),
        workers=args.server_workers,
    )
    host, port = server.start()
    capabilities = server.capabilities
    print(
        f"serving matcher on {host}:{port} "
        f"({capabilities.matcher_class}, fingerprint "
        f"{capabilities.fingerprint[:12]}, pid {os.getpid()})",
        file=sys.stderr,
    )
    _install_drain_handler()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print("matcher server stopped", file=sys.stderr)
    return 0


def _cmd_serve_shard(args: argparse.Namespace) -> int:
    """Run one standing shard host for a ``--fleet`` supervisor."""
    from repro.config import StoreConfig
    from repro.service import ShardServer

    store_config = None
    if args.store_dir is not None:
        store_config = StoreConfig(
            max_entries=args.store_max_entries,
            ttl_seconds=args.store_ttl,
        )
    server = ShardServer(
        host=args.host,
        port=args.port,
        store_dir=args.store_dir,
        store_config=store_config,
    )
    print(
        f"serving shard on {server.host}:{server.port} (pid {os.getpid()})",
        file=sys.stderr,
    )
    _install_drain_handler()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print("shard host stopped", file=sys.stderr)
    return 0


def _cmd_precompute(args: argparse.Namespace) -> int:
    from repro.service.server import precompute

    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    service, store, _ = _build_service(args, dataset)
    try:
        report = precompute(
            service,
            dataset,
            per_label=args.per_label,
            method=args.method,
            samples=args.samples,
            explainer=args.explainer,
            seed=args.seed,
            resume=args.resume,
            journal_dir=args.store_dir,
        )
    finally:
        service.close()
    print(report.summary())
    print(service.stats.summary())
    _write_service_stats(service, args.store_dir)
    metrics_path = (
        Path(args.store_dir) / "metrics.json"
        if args.store_dir is not None else None
    )
    _obs_finish(args, service.metrics, metrics_path)
    if store is not None:
        store.close()
    return 0 if report.n_failed == 0 else 1


def _cmd_bulk(args: argparse.Namespace) -> int:
    import json

    from repro.bulk import (
        BlockedSource,
        BulkJob,
        BulkJobSpec,
        DatasetSource,
        PairListSource,
    )
    from repro.config import StoreConfig
    from repro.data.io import read_csv
    from repro.evaluation.ledger import (
        KIND_SKIPPED,
        FailureEntry,
        FailureLedger,
    )
    from repro.service import ExplanationStore

    if args.resume and args.run_dir is None:
        print("error: --resume requires --run-dir", file=sys.stderr)
        return 2

    input_ledger = FailureLedger()
    if args.input is not None:
        dataset = read_csv(
            args.input,
            name=args.input.stem,
            on_row_error=lambda row, error: input_ledger.add(
                FailureEntry.from_exception(
                    dataset=args.input.stem,
                    label=-1,
                    method="read_csv",
                    record_id=row,
                    error=error,
                    kind=KIND_SKIPPED,
                )
            ),
        )
        if len(input_ledger):
            print(
                f"input: skipped {len(input_ledger)} ill-formed row(s) of "
                f"{args.input}",
                file=sys.stderr,
            )
    else:
        dataset = load_dataset(
            args.dataset, seed=args.seed, size_cap=args.size_cap
        )
    matcher = _resolve_matcher(args, dataset)
    registry = _obs_registry(args)

    if args.pairs_file is not None:
        source = PairListSource(dataset, args.pairs_file)
    elif args.source == "block":
        source = BlockedSource(
            dataset,
            min_shared_tokens=args.min_shared_tokens,
            max_token_frequency=args.max_token_frequency,
        )
    else:
        source = DatasetSource(dataset, per_label=args.per_label,
                               seed=args.seed)

    store = None
    if args.store_dir is not None:
        store = ExplanationStore(
            args.store_dir,
            StoreConfig(
                max_entries=args.store_max_entries,
                ttl_seconds=args.store_ttl,
            ),
            metrics=registry,
        )
    job = BulkJob(
        matcher,
        source,
        spec=BulkJobSpec(
            method=args.method,
            samples=args.samples,
            explainer=args.explainer,
            seed=args.seed,
            chunk_size=args.chunk_size,
        ),
        store=store,
        run_dir=args.run_dir,
        engine_config=EngineConfig(
            cache=not args.no_cache,
            n_jobs=args.n_jobs,
            vectorize=not args.no_vectorize,
            max_retries=args.max_retries,
            call_timeout=args.call_timeout,
        ),
        metrics=registry,
    )
    try:
        report = job.run(resume=args.resume)
    finally:
        if store is not None:
            store.close()
    report.ledger.extend(input_ledger)
    print(report.render(args.top))
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json.dumps(
                report.report_payload(
                    job.spec, source.describe(), job.fingerprint
                ),
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.report}", file=sys.stderr)
    metrics_path = None
    if args.run_dir is not None:
        stats_path = Path(args.run_dir) / "stats.json"
        stats_path.write_text(
            json.dumps(report.stats_payload(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote {stats_path}", file=sys.stderr)
        metrics_path = Path(args.run_dir) / "metrics.json"
    _obs_finish(args, registry, metrics_path)
    return 0 if report.n_failed == 0 else 1


def _cmd_selftest(args: argparse.Namespace) -> int:
    """A fast end-to-end exercise of every major subsystem."""
    from repro.core.counterfactual import greedy_counterfactual
    from repro.core.serialize import dual_from_dict, dual_to_dict
    from repro.data.records import NON_MATCH

    checks: list[tuple[str, bool]] = []

    dataset = load_dataset("S-BR", seed=args.seed, size_cap=200)
    checks.append(("dataset generation", len(dataset) == 200))

    matcher = LogisticRegressionMatcher().fit(dataset)
    quality = evaluate_matcher(matcher, dataset)
    checks.append(("matcher training (f1 > 0.7)", quality.f1 > 0.7))

    explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=48, seed=args.seed),
        seed=args.seed,
    )
    non_match = next(p for p in dataset if p.label == NON_MATCH)
    dual = explainer.explain(non_match)
    checks.append(("dual explanation", len(dual.combined()) > 0))
    checks.append(
        ("double generation on non-match", dual.generation == "double")
    )

    restored = dual_from_dict(dual_to_dict(dual))
    checks.append(
        ("explanation serialization", restored.generation == dual.generation)
    )

    counterfactual = greedy_counterfactual(
        dual.left_landmark, matcher, max_edits=10
    )
    checks.append(("counterfactual search ran", counterfactual.n_edits >= 1))

    ok = True
    for name, passed in checks:
        print(f"  [{'ok' if passed else 'FAIL'}] {name}")
        ok = ok and passed
    print("selftest", "passed" if ok else "FAILED")
    return 0 if ok else 1


_COMMANDS = {
    "datasets": _cmd_datasets,
    "train": _cmd_train,
    "explain": _cmd_explain,
    "experiment": _cmd_experiment,
    "summarize": _cmd_summarize,
    "counterfactual": _cmd_counterfactual,
    "report": _cmd_report,
    "profile": _cmd_profile,
    "compare": _cmd_compare,
    "serve": _cmd_serve,
    "serve-matcher": _cmd_serve_matcher,
    "serve-shard": _cmd_serve_shard,
    "precompute": _cmd_precompute,
    "bulk": _cmd_bulk,
    "selftest": _cmd_selftest,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-em`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        logging.basicConfig(
            level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
        )
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
