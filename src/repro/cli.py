"""The ``repro-em`` command line.

Sub-commands:

* ``datasets`` — print Table 1 (nominal, or measured with ``--materialize``)
  and optionally export the synthetic CSVs.
* ``train`` — train a matcher on one dataset and print its quality report.
* ``explain`` — explain one record of a dataset with Landmark Explanation
  (and optionally the baselines) and print the rendered explanations.
* ``experiment`` — run the full evaluation protocol and print Tables 2-4
  (``--preset fast`` by default; ``--preset paper`` reproduces the paper's
  sample sizes).
* ``summarize`` — aggregate explanations over many records into a global
  model summary (the paper's future-work direction).
"""

from __future__ import annotations

import argparse
import dataclasses
import logging
import sys
from pathlib import Path

from repro.config import get_preset
from repro.core.engine import EngineConfig, PredictionEngine
from repro.data.io import write_csv
from repro.data.splits import sample_per_label
from repro.data.synthetic.magellan import (
    DATASET_CODES,
    load_benchmark,
    load_dataset,
    table1_rows,
)
from repro.core.landmark import LandmarkExplainer
from repro.core.summarize import summarize_explanations
from repro.baselines.mojito import MojitoCopyExplainer, MojitoDropExplainer
from repro.evaluation.runner import ExperimentRunner
from repro.evaluation.tables import format_all_tables, format_table1
from repro.exceptions import ExplanationError, ReproError
from repro.explainers.lime_text import LimeConfig
from repro.matchers.evaluate import evaluate_matcher
from repro.matchers.boosting import GradientBoostedStumpsMatcher
from repro.matchers.embedding import EmbeddingMatcher
from repro.matchers.logistic import LogisticRegressionMatcher
from repro.matchers.neural import MLPMatcher
from repro.matchers.rules import RuleBasedMatcher

_MATCHERS = {
    "logistic": LogisticRegressionMatcher,
    "mlp": MLPMatcher,
    "rules": RuleBasedMatcher,
    "boosted": GradientBoostedStumpsMatcher,
    "embedding": EmbeddingMatcher,
}


def _add_common_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="S-BR", choices=DATASET_CODES, help="benchmark code"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--size-cap", type=int, default=None, help="cap the generated dataset size"
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n-jobs", type=int, default=1,
        help="threads per prediction batch (model calls run in parallel)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the prediction cache (results are identical either way)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-em",
        description="Landmark Explanation (EDBT 2021) reproduction toolkit",
    )
    parser.add_argument("--verbose", action="store_true", help="log progress")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="print/export Table 1")
    datasets.add_argument("--materialize", action="store_true")
    datasets.add_argument("--export-dir", type=Path, default=None)
    datasets.add_argument("--seed", type=int, default=0)
    datasets.add_argument("--size-cap", type=int, default=None)

    train = subparsers.add_parser("train", help="train and evaluate a matcher")
    _add_common_dataset_arguments(train)
    train.add_argument("--matcher", default="logistic", choices=sorted(_MATCHERS))
    train.add_argument("--threshold", type=float, default=0.5)

    explain = subparsers.add_parser("explain", help="explain one record")
    _add_common_dataset_arguments(explain)
    explain.add_argument("--record", type=int, default=0, help="record index")
    explain.add_argument(
        "--generation", default="auto", choices=("auto", "single", "double")
    )
    explain.add_argument("--samples", type=int, default=256)
    explain.add_argument("--top", type=int, default=5)
    explain.add_argument(
        "--explainer", default="lime", choices=("lime", "shap"),
        help="generic explainer to couple with the landmark pipeline",
    )
    explain.add_argument(
        "--baselines", action="store_true", help="also run LIME drop / Mojito copy"
    )
    _add_engine_arguments(explain)

    experiment = subparsers.add_parser("experiment", help="run Tables 2-4")
    experiment.add_argument(
        "--preset", default="fast", choices=("fast", "paper", "bench")
    )
    experiment.add_argument(
        "--datasets", nargs="*", default=None, choices=DATASET_CODES, metavar="CODE"
    )
    experiment.add_argument("--output", type=Path, default=None)
    experiment.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (datasets run in parallel)",
    )
    experiment.add_argument(
        "--run-dir", type=Path, default=None,
        help="checkpoint each completed grid cell into this directory",
    )
    experiment.add_argument(
        "--resume", action="store_true",
        help="resume the run checkpointed in --run-dir (config is read "
             "from the checkpoint; completed cells are skipped)",
    )
    experiment.add_argument(
        "--max-retries", type=int, default=0,
        help="retry failing matcher calls up to N times (guard)",
    )
    experiment.add_argument(
        "--call-timeout", type=float, default=None,
        help="abandon a matcher call after this many seconds (guard)",
    )
    _add_engine_arguments(experiment)

    selftest = subparsers.add_parser(
        "selftest", help="end-to-end installation check (~10 s)"
    )
    selftest.add_argument("--seed", type=int, default=0)

    summarize = subparsers.add_parser(
        "summarize", help="global explanation summary over many records"
    )
    _add_common_dataset_arguments(summarize)
    summarize.add_argument("--per-label", type=int, default=10)
    summarize.add_argument("--samples", type=int, default=128)
    summarize.add_argument("--top", type=int, default=15)

    counterfactual = subparsers.add_parser(
        "counterfactual", help="minimal token edits that flip a prediction"
    )
    _add_common_dataset_arguments(counterfactual)
    counterfactual.add_argument("--record", type=int, default=0)
    counterfactual.add_argument(
        "--landmark", default="left", choices=("left", "right")
    )
    counterfactual.add_argument("--samples", type=int, default=128)
    counterfactual.add_argument("--max-edits", type=int, default=10)

    report = subparsers.add_parser(
        "report", help="write an HTML / markdown explanation report"
    )
    _add_common_dataset_arguments(report)
    report.add_argument("--record", type=int, default=0)
    report.add_argument("--samples", type=int, default=128)
    report.add_argument(
        "--format", default="html", choices=("html", "markdown")
    )
    report.add_argument("--output", type=Path, required=True)

    profile = subparsers.add_parser(
        "profile", help="token-overlap profile of a benchmark dataset"
    )
    _add_common_dataset_arguments(profile)

    compare = subparsers.add_parser(
        "compare", help="diff two saved experiment runs (JSON)"
    )
    compare.add_argument("baseline", type=Path)
    compare.add_argument("candidate", type=Path)
    return parser


# ---------------------------------------------------------------------------
# Sub-command implementations
# ---------------------------------------------------------------------------


def _cmd_datasets(args: argparse.Namespace) -> int:
    materialized = None
    if args.materialize or args.export_dir:
        materialized = load_benchmark(seed=args.seed, size_cap=args.size_cap)
    print(format_table1(table1_rows(materialized)))
    if args.export_dir:
        args.export_dir.mkdir(parents=True, exist_ok=True)
        assert materialized is not None
        for code, dataset in materialized.items():
            path = args.export_dir / f"{code}.csv"
            write_csv(dataset, path)
            print(f"wrote {path} ({len(dataset)} pairs)")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    matcher = _MATCHERS[args.matcher]()
    matcher.fit(dataset)
    quality = evaluate_matcher(matcher, dataset, threshold=args.threshold)
    print(f"{args.matcher} matcher on {args.dataset} ({len(dataset)} pairs)")
    print(quality.report())
    ranking = getattr(matcher, "attribute_ranking", None)
    if callable(ranking):
        print("attribute ranking:", " > ".join(ranking()))
    describe = getattr(matcher, "describe", None)
    if callable(describe):
        print(describe())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    if not 0 <= args.record < len(dataset):
        print(f"record index {args.record} out of range 0..{len(dataset) - 1}")
        return 2
    pair = dataset[args.record]
    matcher = LogisticRegressionMatcher().fit(dataset)
    lime_config = LimeConfig(n_samples=args.samples, seed=args.seed)
    engine = PredictionEngine(
        matcher,
        EngineConfig(cache=not args.no_cache, n_jobs=args.n_jobs),
    )
    print(pair.describe())
    print(f"model match probability: {matcher.predict_one(pair):.3f}")
    if args.explainer == "shap":
        from repro.explainers.kernel_shap import KernelShapExplainer

        explainer = LandmarkExplainer(
            matcher,
            explainer=KernelShapExplainer(n_samples=args.samples, seed=args.seed),
            seed=args.seed,
            engine=engine,
        )
    else:
        explainer = LandmarkExplainer(
            matcher, lime_config=lime_config, seed=args.seed, engine=engine
        )
    dual = explainer.explain(pair, generation=args.generation)
    print(dual.render(args.top))
    if args.baselines:
        drop = MojitoDropExplainer(
            matcher, lime_config=lime_config, seed=args.seed, engine=engine
        )
        print(drop.explain(pair).render(args.top))
        copy = MojitoCopyExplainer(
            matcher, lime_config=lime_config, seed=args.seed, engine=engine
        )
        print(copy.explain(pair).render(args.top))
    print(engine.stats.summary())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.resume:
        # The checkpoint, not the command line, is the source of truth for
        # a resumed run's configuration: mixing presets would corrupt it.
        from repro.evaluation.persistence import load_checkpoint

        if args.run_dir is None:
            print("error: --resume requires --run-dir", file=sys.stderr)
            return 2
        config = load_checkpoint(args.run_dir).config
    else:
        config = dataclasses.replace(
            get_preset(args.preset),
            engine_n_jobs=args.n_jobs,
            engine_cache=not args.no_cache,
            guard_max_retries=args.max_retries,
            guard_call_timeout=args.call_timeout,
        )
    runner = ExperimentRunner(config)
    result = runner.run(
        args.datasets,
        n_jobs=args.jobs,
        run_dir=str(args.run_dir) if args.run_dir else None,
        resume=args.resume,
    )
    report = format_all_tables(result)
    print(report)
    totals = result.engine_totals()
    if totals is not None:
        print(totals.summary())
    ledger = result.ledger()
    if len(ledger):
        print(ledger.summary())
    if args.output:
        args.output.write_text(report + "\n", encoding="utf-8")
        print(f"wrote {args.output}")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    matcher = LogisticRegressionMatcher().fit(dataset)
    explainer = LandmarkExplainer(
        matcher,
        lime_config=LimeConfig(n_samples=args.samples, seed=args.seed),
        seed=args.seed,
    )
    sample = sample_per_label(dataset, args.per_label, seed=args.seed)
    explanations = []
    for pair in sample:
        try:
            explanations.append(explainer.explain(pair))
        except ExplanationError:
            continue
    summary = summarize_explanations(explanations)
    print(summary.render(args.top))
    return 0


def _cmd_counterfactual(args: argparse.Namespace) -> int:
    from repro.core.counterfactual import greedy_counterfactual

    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    if not 0 <= args.record < len(dataset):
        print(f"record index {args.record} out of range 0..{len(dataset) - 1}")
        return 2
    pair = dataset[args.record]
    matcher = LogisticRegressionMatcher().fit(dataset)
    explainer = LandmarkExplainer(
        matcher,
        lime_config=LimeConfig(n_samples=args.samples, seed=args.seed),
        seed=args.seed,
    )
    print(pair.describe())
    landmark = explainer.explain_landmark(pair, args.landmark)
    counterfactual = greedy_counterfactual(
        landmark, matcher, max_edits=args.max_edits
    )
    print(counterfactual.render())
    return 0 if counterfactual.flipped else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import save_html, to_markdown

    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    if not 0 <= args.record < len(dataset):
        print(f"record index {args.record} out of range 0..{len(dataset) - 1}")
        return 2
    pair = dataset[args.record]
    matcher = LogisticRegressionMatcher().fit(dataset)
    explainer = LandmarkExplainer(
        matcher,
        lime_config=LimeConfig(n_samples=args.samples, seed=args.seed),
        seed=args.seed,
    )
    dual = explainer.explain(pair)
    if args.format == "html":
        save_html(dual, args.output)
    else:
        args.output.write_text(to_markdown(dual) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.data.profiling import profile_dataset

    dataset = load_dataset(args.dataset, seed=args.seed, size_cap=args.size_cap)
    profile = profile_dataset(dataset)
    print(profile.render())
    print("attributes by class separation:",
          " > ".join(profile.ranking_by_separation()))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.evaluation.persistence import compare_results, load_result

    baseline = load_result(args.baseline)
    candidate = load_result(args.candidate)
    print(compare_results(baseline, candidate))
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    """A fast end-to-end exercise of every major subsystem."""
    from repro.core.counterfactual import greedy_counterfactual
    from repro.core.serialize import dual_from_dict, dual_to_dict
    from repro.data.records import NON_MATCH

    checks: list[tuple[str, bool]] = []

    dataset = load_dataset("S-BR", seed=args.seed, size_cap=200)
    checks.append(("dataset generation", len(dataset) == 200))

    matcher = LogisticRegressionMatcher().fit(dataset)
    quality = evaluate_matcher(matcher, dataset)
    checks.append(("matcher training (f1 > 0.7)", quality.f1 > 0.7))

    explainer = LandmarkExplainer(
        matcher, lime_config=LimeConfig(n_samples=48, seed=args.seed),
        seed=args.seed,
    )
    non_match = next(p for p in dataset if p.label == NON_MATCH)
    dual = explainer.explain(non_match)
    checks.append(("dual explanation", len(dual.combined()) > 0))
    checks.append(
        ("double generation on non-match", dual.generation == "double")
    )

    restored = dual_from_dict(dual_to_dict(dual))
    checks.append(
        ("explanation serialization", restored.generation == dual.generation)
    )

    counterfactual = greedy_counterfactual(
        dual.left_landmark, matcher, max_edits=10
    )
    checks.append(("counterfactual search ran", counterfactual.n_edits >= 1))

    ok = True
    for name, passed in checks:
        print(f"  [{'ok' if passed else 'FAIL'}] {name}")
        ok = ok and passed
    print("selftest", "passed" if ok else "FAILED")
    return 0 if ok else 1


_COMMANDS = {
    "datasets": _cmd_datasets,
    "train": _cmd_train,
    "explain": _cmd_explain,
    "experiment": _cmd_experiment,
    "summarize": _cmd_summarize,
    "counterfactual": _cmd_counterfactual,
    "report": _cmd_report,
    "profile": _cmd_profile,
    "compare": _cmd_compare,
    "selftest": _cmd_selftest,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-em`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        logging.basicConfig(
            level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
        )
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
