"""From-scratch LIME for token-level instances.

The explainer is *reconstruction-agnostic*: it samples perturbation masks,
asks a caller-supplied ``predict_masks`` function for the black-box match
probability of every mask, and fits a kernel-weighted linear surrogate.
Everything that knows how to turn a mask back into a record pair (pair
reconstruction + model invocation, the paper's *Dataset reconstruction*)
lives with the caller — :class:`repro.core.landmark.LandmarkExplainer` or
the Mojito baselines.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, ExplanationError
from repro.explainers.base import Explanation
from repro.explainers.perturbation import sample_masks
from repro.obs.tracing import trace
from repro.surrogate.feature_selection import forward_selection, highest_weights
from repro.surrogate.kernels import (
    DEFAULT_KERNEL_WIDTH,
    cosine_distance_to_ones,
    exponential_kernel,
)
from repro.surrogate.linear_model import WeightedLasso, WeightedRidge

#: A function mapping a (n_samples, n_tokens) binary mask matrix to the
#: black-box match probability of each reconstructed instance.
PredictMasksFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class LimeConfig:
    """Hyper-parameters of the surrogate fit.

    ``n_samples`` is the perturbation budget (model calls per explanation);
    ``num_features`` restricts the surrogate to that many tokens (``None``
    keeps all — the paper's evaluations need a weight for *every* token).
    """

    n_samples: int = 256
    kernel_width: float = DEFAULT_KERNEL_WIDTH
    surrogate: str = "ridge"
    alpha: float = 1.0
    num_features: int | None = None
    selection: str = "highest_weights"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_samples < 2:
            raise ConfigurationError(f"n_samples must be >= 2, got {self.n_samples}")
        if self.surrogate not in ("ridge", "lasso"):
            raise ConfigurationError(
                f"surrogate must be 'ridge' or 'lasso', got {self.surrogate!r}"
            )
        if self.selection not in ("highest_weights", "forward_selection"):
            raise ConfigurationError(
                "selection must be 'highest_weights' or 'forward_selection', "
                f"got {self.selection!r}"
            )
        if self.num_features is not None and self.num_features < 1:
            raise ConfigurationError(
                f"num_features must be >= 1 or None, got {self.num_features}"
            )


class LimeTextExplainer:
    """LIME over a token list, with pluggable reconstruction."""

    def __init__(self, config: LimeConfig | None = None) -> None:
        self.config = config or LimeConfig()

    def explain(
        self,
        feature_names: Sequence[str],
        predict_masks: PredictMasksFn,
        rng: np.random.Generator | None = None,
    ) -> Explanation:
        """Explain one instance given its interpretable feature names.

        *predict_masks* receives the full mask matrix (first row all ones)
        and must return one probability per row.  Callers that route it
        through a :class:`repro.core.engine.PredictionEngine` still see
        the full matrix here — dedup and caching happen behind the
        callable and never change the returned probabilities.
        """
        config = self.config
        if rng is None:
            rng = np.random.default_rng(config.seed)
        names = tuple(feature_names)
        if len(set(names)) != len(names):
            raise ExplanationError("interpretable feature names must be unique")
        if not names:
            raise ExplanationError("cannot explain an instance with zero features")

        masks = sample_masks(len(names), config.n_samples, rng)
        probabilities = np.asarray(predict_masks(masks), dtype=np.float64)
        if probabilities.shape != (masks.shape[0],):
            raise ExplanationError(
                f"predict_masks returned shape {probabilities.shape}, "
                f"expected ({masks.shape[0]},)"
            )
        if not np.all(np.isfinite(probabilities)):
            raise ExplanationError(
                "black-box model returned non-finite probabilities; the "
                "surrogate fit would silently produce garbage weights"
            )

        with trace.span(
            "surrogate_fit",
            surrogate=config.surrogate,
            n_samples=int(masks.shape[0]),
            n_features=len(names),
        ):
            distances = cosine_distance_to_ones(masks)
            sample_weights = exponential_kernel(distances, config.kernel_width)

            features = masks.astype(np.float64)
            selected = np.arange(len(names))
            if config.num_features is not None and config.num_features < len(names):
                if config.selection == "highest_weights":
                    selected = highest_weights(
                        features, probabilities, sample_weights,
                        config.num_features, config.alpha,
                    )
                else:
                    selected = forward_selection(
                        features, probabilities, sample_weights,
                        config.num_features, config.alpha,
                    )

            if config.surrogate == "ridge":
                model = WeightedRidge(alpha=config.alpha)
            else:
                model = WeightedLasso(alpha=config.alpha)
            model.fit(features[:, selected], probabilities, sample_weights)
            assert model.coef_ is not None

            weights = np.zeros(len(names))
            weights[selected] = model.coef_
            surrogate_at_original = float(
                np.ones(len(selected)) @ model.coef_ + model.intercept_
            )
            if isinstance(model, WeightedRidge):
                score = model.score(
                    features[:, selected], probabilities, sample_weights
                )
            else:
                residual = probabilities - model.predict(features[:, selected])
                mean = float(
                    (sample_weights * probabilities).sum() / sample_weights.sum()
                )
                total = float(np.sum(sample_weights * (probabilities - mean) ** 2))
                score = (
                    1.0 - float(np.sum(sample_weights * residual**2)) / total
                    if total > 0
                    else 1.0
                )

        return Explanation(
            feature_names=names,
            weights=weights,
            intercept=float(model.intercept_),
            score=float(score),
            model_probability=float(probabilities[0]),
            surrogate_probability=surrogate_at_original,
            n_samples=config.n_samples,
            metadata={
                "kernel_width": config.kernel_width,
                "surrogate": config.surrogate,
                "selected": [int(index) for index in selected],
            },
        )
