"""The :class:`Explanation` container returned by every explainer.

An explanation is the fitted surrogate read back as data: one weight per
interpretable feature, plus enough diagnostics (surrogate R², black-box and
surrogate probabilities at the original instance) to judge how much to
trust it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ExplanationError


@dataclass(frozen=True)
class Explanation:
    """Linear surrogate coefficients over interpretable features.

    ``feature_names[i]`` is the i-th interpretable feature (a prefixed token
    string for token-level explainers, an attribute name for Mojito Copy)
    and ``weights[i]`` its coefficient toward the *match* probability:
    positive weights push the record toward the matching class.
    """

    feature_names: tuple[str, ...]
    weights: np.ndarray
    intercept: float
    score: float
    model_probability: float
    surrogate_probability: float
    n_samples: int
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        object.__setattr__(self, "weights", weights)
        if weights.shape != (len(self.feature_names),):
            raise ExplanationError(
                f"{len(self.feature_names)} features but weight shape "
                f"{weights.shape}"
            )

    def __len__(self) -> int:
        return len(self.feature_names)

    def as_dict(self) -> dict[str, float]:
        """Feature → weight mapping."""
        return {
            name: float(weight)
            for name, weight in zip(self.feature_names, self.weights)
        }

    def weight_of(self, feature_name: str) -> float:
        """Weight of one feature; raises on unknown names."""
        try:
            index = self.feature_names.index(feature_name)
        except ValueError as exc:
            raise ExplanationError(f"unknown feature {feature_name!r}") from exc
        return float(self.weights[index])

    def top(self, k: int = 10, sign: str | None = None) -> list[tuple[str, float]]:
        """The *k* most important features by |weight|.

        ``sign="positive"`` / ``"negative"`` restricts to one direction —
        the paper's Example 1.2 shows top-3 positive tokens per landmark.
        """
        indexed = list(zip(self.feature_names, (float(w) for w in self.weights)))
        if sign == "positive":
            indexed = [(name, weight) for name, weight in indexed if weight > 0]
        elif sign == "negative":
            indexed = [(name, weight) for name, weight in indexed if weight < 0]
        elif sign is not None:
            raise ValueError(f"sign must be 'positive', 'negative' or None: {sign!r}")
        indexed.sort(key=lambda item: -abs(item[1]))
        return indexed[:k]

    def sum_of(self, feature_names: Sequence[str]) -> float:
        """Sum of the weights of the named features (token-removal eval)."""
        lookup = self.as_dict()
        total = 0.0
        for name in feature_names:
            if name not in lookup:
                raise ExplanationError(f"unknown feature {name!r}")
            total += lookup[name]
        return total

    def render(self, k: int = 10) -> str:
        """Multi-line human-readable rendering of the top-k features."""
        lines = [
            f"explanation (R²={self.score:.3f}, model p={self.model_probability:.3f}, "
            f"surrogate p={self.surrogate_probability:.3f}, n={self.n_samples})"
        ]
        for name, weight in self.top(k):
            bar = "+" if weight >= 0 else "-"
            lines.append(f"  {bar} {name:<40} {weight:+.4f}")
        return "\n".join(lines)
