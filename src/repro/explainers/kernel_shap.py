"""Kernel SHAP over token masks — a second generic explainer.

The paper presents Landmark Explanation as a *generic* framework: any
post-hoc perturbation explainer can sit in the yellow boxes of Figure 2.
Its experiments couple the framework with LIME; this module provides the
other classic choice, Kernel SHAP (Lundberg & Lee 2017), with the same
``explain(feature_names, predict_masks, rng)`` interface so it drops into
:class:`repro.core.landmark.LandmarkExplainer` unchanged.

Kernel SHAP is weighted linear regression on binary coalitions ``z`` with
the Shapley kernel::

    w(z) = (d - 1) / (C(d, |z|) · |z| · (d - |z|))

which diverges for the empty and full coalitions — those two constraints
(the base rate and the full prediction) are enforced with a large finite
weight.  With enough samples the resulting coefficients approach Shapley
values of the token-presence game.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.exceptions import ConfigurationError, ExplanationError
from repro.explainers.base import Explanation
from repro.explainers.lime_text import PredictMasksFn
from repro.obs.tracing import trace
from repro.surrogate.linear_model import WeightedRidge

#: Finite stand-in for the kernel's infinite weight at |z| ∈ {0, d}.
_ANCHOR_WEIGHT = 1e6


def shapley_kernel_weights(masks: np.ndarray) -> np.ndarray:
    """Shapley kernel weight of every mask row."""
    masks = np.asarray(masks)
    if masks.ndim != 2:
        raise ValueError(f"masks must be 2-D, got shape {masks.shape}")
    d = masks.shape[1]
    sizes = masks.sum(axis=1).astype(int)
    weights = np.empty(len(sizes), dtype=np.float64)
    for row, size in enumerate(sizes):
        if size == 0 or size == d:
            weights[row] = _ANCHOR_WEIGHT
        else:
            weights[row] = (d - 1) / (comb(d, size) * size * (d - size))
    return weights


class KernelShapExplainer:
    """SHAP-style explainer with the pluggable-reconstruction interface."""

    def __init__(self, n_samples: int = 256, alpha: float = 1e-6, seed: int | None = None):
        if n_samples < 4:
            raise ConfigurationError(f"n_samples must be >= 4, got {n_samples}")
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        self.n_samples = n_samples
        self.alpha = alpha
        self.seed = seed

    def _sample_masks(self, d: int, rng: np.random.Generator) -> np.ndarray:
        """All-ones + all-zeros anchors, then coalitions of size 1..d-1.

        Sizes are drawn proportionally to the kernel's marginal weight of
        each size (``(d-1)/(k(d-k))`` summed over C(d,k) coalitions), which
        concentrates samples on the small and large coalitions that carry
        the Shapley signal.
        """
        masks = np.ones((self.n_samples, d), dtype=np.int8)
        masks[1] = 0
        if d == 1:
            return masks[:2]
        sizes = np.arange(1, d)
        size_weights = (d - 1) / (sizes * (d - sizes))
        size_weights = size_weights / size_weights.sum()
        for row in range(2, self.n_samples):
            size = int(rng.choice(sizes, p=size_weights))
            active = rng.choice(d, size=size, replace=False)
            masks[row] = 0
            masks[row, active] = 1
        return masks

    def explain(
        self,
        feature_names,
        predict_masks: PredictMasksFn,
        rng: np.random.Generator | None = None,
    ) -> Explanation:
        """Explain one instance; mirrors :class:`LimeTextExplainer.explain`."""
        if rng is None:
            rng = np.random.default_rng(self.seed)
        names = tuple(feature_names)
        if not names:
            raise ExplanationError("cannot explain an instance with zero features")
        if len(set(names)) != len(names):
            raise ExplanationError("interpretable feature names must be unique")

        masks = self._sample_masks(len(names), rng)
        probabilities = np.asarray(predict_masks(masks), dtype=np.float64)
        if probabilities.shape != (masks.shape[0],):
            raise ExplanationError(
                f"predict_masks returned shape {probabilities.shape}, "
                f"expected ({masks.shape[0]},)"
            )
        if not np.all(np.isfinite(probabilities)):
            raise ExplanationError(
                "black-box model returned non-finite probabilities"
            )
        with trace.span(
            "surrogate_fit",
            surrogate="kernel_shap",
            n_samples=int(masks.shape[0]),
            n_features=len(names),
        ):
            weights = shapley_kernel_weights(masks)
            model = WeightedRidge(alpha=self.alpha).fit(
                masks.astype(np.float64), probabilities, weights
            )
            assert model.coef_ is not None
            surrogate_at_original = float(model.coef_.sum() + model.intercept_)
        return Explanation(
            feature_names=names,
            weights=model.coef_,
            intercept=float(model.intercept_),
            score=model.score(masks.astype(np.float64), probabilities, weights),
            model_probability=float(probabilities[0]),
            surrogate_probability=surrogate_at_original,
            n_samples=masks.shape[0],
            metadata={"surrogate": "kernel_shap"},
        )
