"""Generic perturbation-based explainer (the yellow blocks of Figure 2).

This package is deliberately EM-agnostic: it knows about *interpretable
features* (binary presence of tokens), perturbation masks, locality kernels
and linear surrogates — nothing about entity pairs.  Landmark Explanation
(:mod:`repro.core`) and the Mojito baselines (:mod:`repro.baselines`) plug
their own reconstruction logic into it, exactly as the paper's architecture
prescribes.
"""

from repro.explainers.anchors import (
    AnchorExplanation,
    AnchorsTextExplainer,
    anchor_for_landmark,
)
from repro.explainers.base import Explanation
from repro.explainers.kernel_shap import KernelShapExplainer
from repro.explainers.lime_text import LimeConfig, LimeTextExplainer
from repro.explainers.perturbation import sample_masks

__all__ = [
    "AnchorExplanation",
    "AnchorsTextExplainer",
    "Explanation",
    "KernelShapExplainer",
    "LimeConfig",
    "LimeTextExplainer",
    "anchor_for_landmark",
    "sample_masks",
]
