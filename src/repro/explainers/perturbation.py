"""Perturbation-mask sampling (the *Perturbation generation* block).

The interpretable space of a token-level explainer is the binary hypercube
over the instance's tokens: mask bit *j* says whether token *j* survives.
Following LIME's text sampler, each perturbation first draws the number of
tokens to deactivate uniformly from ``1..d`` and then chooses that many
positions without replacement — this covers all perturbation sizes instead
of concentrating around d/2 like i.i.d. coin flips would.

The first row is always the unperturbed all-ones mask, so the surrogate is
anchored at the instance being explained.
"""

from __future__ import annotations

import numpy as np


def sample_masks(
    n_features: int,
    n_samples: int,
    rng: np.random.Generator,
    include_original: bool = True,
) -> np.ndarray:
    """Sample a ``(n_samples, n_features)`` binary perturbation matrix.

    With ``include_original`` the first row is all ones (the instance
    itself); remaining rows deactivate between 1 and ``n_features`` tokens.
    """
    if n_features < 0:
        raise ValueError(f"n_features must be >= 0, got {n_features}")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    masks = np.ones((n_samples, n_features), dtype=np.int8)
    if n_features == 0:
        return masks
    start = 1 if include_original else 0
    for row in range(start, n_samples):
        n_off = int(rng.integers(1, n_features + 1))
        off_positions = rng.choice(n_features, size=n_off, replace=False)
        masks[row, off_positions] = 0
    return masks
