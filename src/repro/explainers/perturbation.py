"""Perturbation-mask sampling (the *Perturbation generation* block).

The interpretable space of a token-level explainer is the binary hypercube
over the instance's tokens: mask bit *j* says whether token *j* survives.
Following LIME's text sampler, each perturbation first draws the number of
tokens to deactivate uniformly from ``1..d`` and then chooses that many
positions without replacement — this covers all perturbation sizes instead
of concentrating around d/2 like i.i.d. coin flips would.

The first row is always the unperturbed all-ones mask, so the surrogate is
anchored at the instance being explained.

Sampled rows are **distinct** whenever the hypercube permits: a naive
sampler frequently redraws the same mask (at small ``n_features`` the
all-zeros row alone recurs ``n_samples / n_features`` times in
expectation), which silently shrinks the effective perturbation budget and
over-weights the repeated points in the surrogate fit.  Duplicate draws
are therefore resampled, topping up from the unused remainder of the
hypercube when random redraws stall; only once every admissible mask has
been emitted (``n_samples - 1 > 2^d - 1``) do duplicates appear.
"""

from __future__ import annotations

import numpy as np

#: Enumerating the hypercube to top up a stalled sampler is only attempted
#: below this dimensionality (2^20 rows); stalls are impossible above it.
_ENUMERATION_LIMIT = 20


def _draw_row(n_features: int, rng: np.random.Generator) -> np.ndarray:
    """One LIME-style perturbation: deactivate 1..d uniformly-chosen tokens."""
    n_off = int(rng.integers(1, n_features + 1))
    off_positions = rng.choice(n_features, size=n_off, replace=False)
    row = np.ones(n_features, dtype=np.int8)
    row[off_positions] = 0
    return row


def _missing_rows(
    n_features: int,
    seen: set[bytes],
    count: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """*count* not-yet-seen masks (≥ 1 removal), in rng-shuffled order.

    The candidate block is built with one vectorized bit-unpack over the
    unseen patterns instead of ``2^d`` per-bit Python generators; candidate
    order (ascending pattern) and rng consumption (one full-length
    permutation) are unchanged, so sampled masks are bit-identical to the
    old enumeration.
    """
    capacity = (1 << n_features) - 1  # excludes the all-ones mask
    unseen = np.ones(capacity, dtype=bool)
    if seen:
        # ``seen`` keys are the little-endian int8 rows; decode them back
        # to hypercube patterns in one shot.
        rows = np.frombuffer(b"".join(seen), dtype=np.int8)
        rows = rows.reshape(len(seen), n_features)
        weights = np.int64(1) << np.arange(n_features, dtype=np.int64)
        codes = rows.astype(np.int64) @ weights
        unseen[codes[codes < capacity]] = False
    patterns = np.flatnonzero(unseen)
    bits = (
        (patterns[:, None] >> np.arange(n_features, dtype=np.int64)) & 1
    ).astype(np.int8)
    order = rng.permutation(len(patterns))
    return [bits[index] for index in order[:count]]


def sample_masks(
    n_features: int,
    n_samples: int,
    rng: np.random.Generator,
    include_original: bool = True,
) -> np.ndarray:
    """Sample a ``(n_samples, n_features)`` binary perturbation matrix.

    With ``include_original`` the first row is all ones (the instance
    itself); remaining rows deactivate between 1 and ``n_features`` tokens
    and are pairwise distinct whenever ``n_features`` permits.
    """
    if n_features < 0:
        raise ValueError(f"n_features must be >= 0, got {n_features}")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    masks = np.ones((n_samples, n_features), dtype=np.int8)
    if n_features == 0:
        return masks
    start = 1 if include_original else 0
    target = n_samples - start
    if target <= 0:
        return masks

    # Distinct masks with >= 1 removal available in the hypercube.
    capacity = (1 << n_features) - 1 if n_features <= 62 else None
    distinct_target = target if capacity is None else min(target, capacity)

    rows: list[np.ndarray] = []
    seen: set[bytes] = set()
    budget = 16 * distinct_target + 64
    draws = 0
    while len(rows) < distinct_target and draws < budget:
        draws += 1
        row = _draw_row(n_features, rng)
        key = row.tobytes()
        if key in seen:
            continue
        seen.add(key)
        rows.append(row)
    if len(rows) < distinct_target and n_features <= _ENUMERATION_LIMIT:
        # Random redraws stalled near saturation: top up deterministically
        # from the unused remainder of the hypercube.
        rows.extend(
            _missing_rows(n_features, seen, distinct_target - len(rows), rng)
        )
    while len(rows) < target:
        # Budget beyond the hypercube: duplicates are unavoidable.
        rows.append(_draw_row(n_features, rng))

    for offset, row in enumerate(rows):
        masks[start + offset] = row
    return masks
