"""Anchors over token masks — rule explanations for EM predictions.

Anchor explanations (Ribeiro et al. 2018, cited in the paper's related
work and shipped by ExplainER) answer a different question than LIME:
instead of a weight per token, they return a *rule* — a minimal set of
tokens whose presence (almost) guarantees the model's prediction,
whatever happens to the rest of the record.

This implementation is a compact beam search over token conjunctions:

1. the anchor's *precision* is estimated by sampling masks in which the
   anchor tokens are forced present and every other token survives with
   probability ½, then measuring how often the model repeats its original
   class;
2. candidates grow one token at a time, the ``beam_width`` most precise
   survive each level;
3. search stops at the first candidate whose precision reaches the
   threshold (or at ``max_anchor_size``), returning the most precise,
   smallest anchor found.

It consumes the same ``(feature_names, predict_masks)`` interface as the
LIME and Kernel SHAP explainers, so it composes with
:class:`repro.core.generation.LandmarkGenerator` /
:class:`repro.core.reconstruction.DatasetReconstructor` for landmark-style
per-entity anchors — see :func:`anchor_for_landmark`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.generation import GeneratedInstance
from repro.core.reconstruction import DatasetReconstructor
from repro.exceptions import ConfigurationError, ExplanationError
from repro.explainers.lime_text import PredictMasksFn
from repro.matchers.base import DEFAULT_THRESHOLD, EntityMatcher


@dataclass(frozen=True)
class AnchorExplanation:
    """A rule explanation: *if these tokens are present, the model sticks
    to its prediction*."""

    feature_names: tuple[str, ...]
    anchor_indices: tuple[int, ...]
    precision: float
    coverage: float
    predicted_class: int
    n_model_calls: int

    @property
    def anchor_tokens(self) -> tuple[str, ...]:
        return tuple(self.feature_names[index] for index in self.anchor_indices)

    def render(self) -> str:
        label = "match" if self.predicted_class == 1 else "non-match"
        rule = " AND ".join(self.anchor_tokens) or "(empty anchor)"
        return (
            f"IF {rule} PRESENT THEN {label} "
            f"(precision={self.precision:.2f}, coverage={self.coverage:.2f})"
        )


class AnchorsTextExplainer:
    """Beam-search anchors with the pluggable-reconstruction interface."""

    def __init__(
        self,
        precision_threshold: float = 0.95,
        n_samples_per_candidate: int = 32,
        beam_width: int = 3,
        max_anchor_size: int = 5,
        seed: int | None = None,
    ) -> None:
        if not 0.5 < precision_threshold <= 1.0:
            raise ConfigurationError(
                f"precision_threshold must be in (0.5, 1], got {precision_threshold}"
            )
        if n_samples_per_candidate < 4:
            raise ConfigurationError("n_samples_per_candidate must be >= 4")
        if beam_width < 1:
            raise ConfigurationError("beam_width must be >= 1")
        if max_anchor_size < 1:
            raise ConfigurationError("max_anchor_size must be >= 1")
        self.precision_threshold = precision_threshold
        self.n_samples_per_candidate = n_samples_per_candidate
        self.beam_width = beam_width
        self.max_anchor_size = max_anchor_size
        self.seed = seed

    def _candidate_precision(
        self,
        anchor: tuple[int, ...],
        d: int,
        predict_masks: PredictMasksFn,
        predicted_class: int,
        threshold: float,
        rng: np.random.Generator,
    ) -> float:
        masks = (rng.random((self.n_samples_per_candidate, d)) < 0.5).astype(np.int8)
        masks[:, list(anchor)] = 1
        probabilities = np.asarray(predict_masks(masks), dtype=np.float64)
        classes = (probabilities >= threshold).astype(int)
        return float(np.mean(classes == predicted_class))

    def explain(
        self,
        feature_names,
        predict_masks: PredictMasksFn,
        rng: np.random.Generator | None = None,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> AnchorExplanation:
        """Find an anchor for the model's prediction on the full instance."""
        if rng is None:
            rng = np.random.default_rng(self.seed)
        names = tuple(feature_names)
        if not names:
            raise ExplanationError("cannot explain an instance with zero features")
        d = len(names)
        calls = 0

        full_mask = np.ones((1, d), dtype=np.int8)
        p_full = float(np.asarray(predict_masks(full_mask))[0])
        calls += 1
        predicted_class = int(p_full >= threshold)

        beam: list[tuple[float, tuple[int, ...]]] = [(0.0, ())]
        best: tuple[float, tuple[int, ...]] | None = None
        for _ in range(self.max_anchor_size):
            candidates: dict[tuple[int, ...], float] = {}
            for _, anchor in beam:
                for token_index in range(d):
                    if token_index in anchor:
                        continue
                    extended = tuple(sorted(anchor + (token_index,)))
                    if extended in candidates:
                        continue
                    precision = self._candidate_precision(
                        extended, d, predict_masks, predicted_class, threshold, rng
                    )
                    calls += self.n_samples_per_candidate
                    candidates[extended] = precision
            if not candidates:
                break
            ranked = sorted(
                candidates.items(), key=lambda item: (-item[1], len(item[0]))
            )
            beam = [(precision, anchor) for anchor, precision in ranked[: self.beam_width]]
            top_precision, top_anchor = beam[0]
            if best is None or top_precision > best[0]:
                best = (top_precision, top_anchor)
            if top_precision >= self.precision_threshold:
                break

        assert best is not None
        precision, anchor = best
        # Coverage: how much of the perturbation space the rule applies to.
        random_masks = (rng.random((256, d)) < 0.5).astype(np.int8)
        if anchor:
            coverage = float(np.mean(np.all(random_masks[:, list(anchor)] == 1, axis=1)))
        else:
            coverage = 1.0
        return AnchorExplanation(
            feature_names=names,
            anchor_indices=anchor,
            precision=precision,
            coverage=coverage,
            predicted_class=predicted_class,
            n_model_calls=calls,
        )


def anchor_for_landmark(
    instance: GeneratedInstance,
    matcher: EntityMatcher,
    explainer: AnchorsTextExplainer | None = None,
    rng: np.random.Generator | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> AnchorExplanation:
    """Landmark-coupled anchors: freeze one entity, anchor the other.

    The returned rule names the varying entity's tokens (and, under
    double-entity generation, the injected landmark tokens) that pin down
    the model's decision while the landmark stays fixed.
    """
    explainer = explainer or AnchorsTextExplainer()
    predict_masks = DatasetReconstructor(matcher).predict_masks_fn(instance)
    return explainer.explain(
        instance.feature_names, predict_masks, rng=rng, threshold=threshold
    )
