"""Request deadlines and cooperative cancellation.

Serving landmark explanations means bounding tail latency: a perturbation
explanation costs hundreds of matcher calls, and a caller that gave up
(its own timeout fired, its HTTP connection dropped) must not keep a
worker busy for the rest of that spend.  This module provides the two
primitives the request-lifecycle layer is built from:

* :class:`Deadline` — an absolute point on the monotonic clock with
  ``remaining()`` / ``expired()`` / ``check()`` accessors;
* :class:`CancelToken` — a thread-safe flag a caller flips when it
  abandons a request.

Both are *cooperative*: nothing is interrupted preemptively.  The
prediction engine polls the **ambient scope** — a thread-local
``(deadline, cancel-token)`` pair installed with :func:`request_scope` —
between matcher chunks, so an expired or abandoned request aborts at the
next chunk boundary with :class:`~repro.exceptions.DeadlineExceededError`
or :class:`~repro.exceptions.RequestCancelledError` instead of computing
its full batch.  Polling never changes results (checks are read-only and
raise or pass), so zero-fault runs stay bit-identical with or without a
scope installed.

The scope is thread-local by design: each service worker computes one
request at a time, and the engine's intra-request thread pool
(``n_jobs > 1``) is checked at chunk-dispatch time on the owning thread.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.exceptions import DeadlineExceededError, RequestCancelledError

__all__ = [
    "CancelToken",
    "Deadline",
    "active_scope",
    "checkpoint",
    "request_scope",
]


class Deadline:
    """An absolute deadline on an injectable monotonic clock.

    Built with :meth:`after`; ``clock`` is injectable so expiry behaviour
    is testable without sleeping.  A ``None`` budget means "no deadline" —
    :meth:`never` returns a deadline that cannot expire.
    """

    __slots__ = ("_at", "_clock")

    def __init__(
        self,
        at: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._at = at
        self._clock = clock

    @classmethod
    def after(
        cls,
        seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """The deadline *seconds* from now (``None`` = never expires)."""
        if seconds is None:
            return cls(None, clock)
        return cls(clock() + float(seconds), clock)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    @property
    def bounded(self) -> bool:
        """Whether this deadline can expire at all."""
        return self._at is not None

    def remaining(self) -> float | None:
        """Seconds left (may be negative), or ``None`` if unbounded."""
        if self._at is None:
            return None
        return self._at - self._clock()

    def expired(self) -> bool:
        return self._at is not None and self._clock() >= self._at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the deadline passed."""
        if self.expired():
            remaining = self.remaining() or 0.0
            raise DeadlineExceededError(
                f"{what} deadline exceeded by {-remaining:.3f}s"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._at is None:
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


class CancelToken:
    """A thread-safe one-way cancellation flag.

    The service flips it when the last waiter of a ticket walks away;
    workers and the engine poll it at cheap boundaries.  Cancelling an
    already-cancelled token is a no-op, so racing waiters are safe.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self, what: str = "request") -> None:
        """Raise :class:`RequestCancelledError` if cancelled."""
        if self._event.is_set():
            raise RequestCancelledError(f"{what} was cancelled by its waiters")


class _Scope(threading.local):
    deadline: Deadline | None = None
    cancel: CancelToken | None = None


_scope = _Scope()


class request_scope:
    """Install an ambient ``(deadline, cancel)`` pair for this thread.

    Used as a context manager by the service worker around one request's
    computation; nests safely (the previous scope is restored on exit)::

        with request_scope(Deadline.after(0.5), token):
            explainer.explain(pair)   # engine polls between chunks
    """

    def __init__(
        self,
        deadline: Deadline | None = None,
        cancel: CancelToken | None = None,
    ) -> None:
        self._deadline = deadline
        self._cancel = cancel
        self._previous: tuple[Deadline | None, CancelToken | None] | None = None

    def __enter__(self) -> "request_scope":
        self._previous = (_scope.deadline, _scope.cancel)
        _scope.deadline = self._deadline
        _scope.cancel = self._cancel
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._previous is not None
        _scope.deadline, _scope.cancel = self._previous
        self._previous = None


def active_scope() -> tuple[Deadline | None, CancelToken | None]:
    """The calling thread's ambient ``(deadline, cancel)`` pair."""
    return _scope.deadline, _scope.cancel


def checkpoint(what: str = "request") -> None:
    """Poll the ambient scope; raise if expired or cancelled.

    The single call sites sprinkle between chunks — a no-op (two
    attribute reads) when no scope is installed, so the non-serving paths
    pay nothing.
    """
    deadline = _scope.deadline
    if deadline is not None:
        deadline.check(what)
    cancel = _scope.cancel
    if cancel is not None:
        cancel.check(what)
