"""Explanation views: per-landmark, dual, and flat per-token weight maps.

Three layers, from closest-to-the-surrogate to closest-to-the-evaluation:

* :class:`LandmarkExplanation` — the surrogate coefficients for one
  (record, landmark side, generation mode) choice, with token provenance
  (attribute, position, injected-or-not).
* :class:`DualExplanation` — the paper's output: one explanation per
  landmark side.  Its :meth:`~DualExplanation.combined` view assigns every
  *original* token of the record the weight it received in the explanation
  where its own entity was the varying one.
* :class:`PairTokenWeights` — a flat ``(side, attribute, position) → weight``
  map over the record's tokens; the evaluation harness consumes this shape
  for Landmark and baseline explainers alike.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.generation import GENERATION_DOUBLE, GeneratedInstance
from repro.core.reconstruction import PairReconstructor
from repro.data.records import RecordPair
from repro.exceptions import ExplanationError
from repro.explainers.base import Explanation
from repro.text.tokenize import Tokenizer

#: Address of one token inside a record pair.
TokenKey = tuple[str, str, int]  # (side, attribute, position)


@dataclass(frozen=True)
class TokenEntry:
    """One record token with its explanation weight."""

    side: str
    attribute: str
    position: int
    word: str
    weight: float

    @property
    def key(self) -> TokenKey:
        return (self.side, self.attribute, self.position)


def remove_tokens_from_pair(
    pair: RecordPair,
    keys: Iterable[TokenKey],
    tokenizer: Tokenizer | None = None,
) -> RecordPair:
    """Rebuild *pair* with the addressed tokens removed from both entities."""
    tokenizer = tokenizer or Tokenizer()
    to_remove = set(keys)
    result = pair
    for side in ("left", "right"):
        tokens = tokenizer.tokenize_entity(pair.entity(side))
        kept = [
            token
            for token in tokens
            if (side, token.attribute, token.position) not in to_remove
        ]
        entity = pair.schema.conform(tokenizer.detokenize(kept))
        result = result.with_side(side, entity)
    return result


class PairTokenWeights:
    """Flat per-token weight map over a record pair's original tokens."""

    def __init__(self, pair: RecordPair, entries: Sequence[TokenEntry]) -> None:
        self.pair = pair
        self.entries: tuple[TokenEntry, ...] = tuple(entries)
        self._index: dict[TokenKey, TokenEntry] = {}
        for entry in self.entries:
            if entry.key in self._index:
                raise ExplanationError(f"duplicate token key {entry.key}")
            self._index[entry.key] = entry

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: TokenKey) -> bool:
        return key in self._index

    def weight(self, side: str, attribute: str, position: int) -> float:
        """Weight of one addressed token; raises on unknown addresses."""
        entry = self._index.get((side, attribute, position))
        if entry is None:
            raise ExplanationError(
                f"no weight for token ({side}, {attribute}, {position})"
            )
        return entry.weight

    def sum_weights(self, keys: Iterable[TokenKey]) -> float:
        """Σ weight over the addressed tokens (token-removal evaluation)."""
        total = 0.0
        for key in keys:
            entry = self._index.get(key)
            if entry is None:
                raise ExplanationError(f"no weight for token {key}")
            total += entry.weight
        return total

    def entries_by_sign(self, sign: str) -> list[TokenEntry]:
        """Entries with strictly positive / strictly negative weight."""
        if sign == "positive":
            return [entry for entry in self.entries if entry.weight > 0]
        if sign == "negative":
            return [entry for entry in self.entries if entry.weight < 0]
        raise ValueError(f"sign must be 'positive' or 'negative', got {sign!r}")

    def attribute_importance(self) -> dict[str, float]:
        """Σ|weight| of each attribute's tokens, both sides pooled."""
        importance = {attribute: 0.0 for attribute in self.pair.schema.attributes}
        for entry in self.entries:
            importance[entry.attribute] += abs(entry.weight)
        return importance

    def removal_pair(
        self, sign: str, tokenizer: Tokenizer | None = None
    ) -> RecordPair:
        """The record with every *sign*-weighted token removed."""
        keys = [entry.key for entry in self.entries_by_sign(sign)]
        return remove_tokens_from_pair(self.pair, keys, tokenizer)

    def top(self, k: int = 10) -> list[TokenEntry]:
        """The *k* entries with the largest |weight|."""
        ordered = sorted(self.entries, key=lambda entry: -abs(entry.weight))
        return ordered[:k]


@dataclass(frozen=True)
class LandmarkExplanation:
    """Surrogate coefficients for one landmark choice, with provenance."""

    instance: GeneratedInstance
    explanation: Explanation

    def __post_init__(self) -> None:
        if self.explanation.feature_names != self.instance.feature_names:
            raise ExplanationError(
                "explanation features do not match the generated instance"
            )

    @property
    def pair(self) -> RecordPair:
        return self.instance.pair

    @property
    def landmark_side(self) -> str:
        return self.instance.landmark_side

    @property
    def varying_side(self) -> str:
        return self.instance.varying_side

    @property
    def generation(self) -> str:
        return self.instance.generation

    def token_weights(self) -> list[tuple[str, str, int, bool, float]]:
        """(attribute, word, position, injected, weight) per perturbable token."""
        rows = []
        for token, injected, weight in zip(
            self.instance.tokens, self.instance.injected, self.explanation.weights
        ):
            rows.append(
                (token.attribute, token.word, token.position, injected, float(weight))
            )
        return rows

    def original_entries(self) -> list[TokenEntry]:
        """Weights of the varying entity's *own* (non-injected) tokens."""
        entries = []
        for token, injected, weight in zip(
            self.instance.tokens, self.instance.injected, self.explanation.weights
        ):
            if injected:
                continue
            entries.append(
                TokenEntry(
                    side=self.varying_side,
                    attribute=token.attribute,
                    position=token.position,
                    word=token.word,
                    weight=float(weight),
                )
            )
        return entries

    def top_tokens(
        self,
        k: int = 3,
        sign: str | None = None,
        include_injected: bool = True,
    ) -> list[tuple[str, str, float, bool]]:
        """Top-k (word, attribute, weight, injected) rows by |weight|."""
        rows = []
        for token, injected, weight in zip(
            self.instance.tokens, self.instance.injected, self.explanation.weights
        ):
            weight = float(weight)
            if not include_injected and injected:
                continue
            if sign == "positive" and weight <= 0:
                continue
            if sign == "negative" and weight >= 0:
                continue
            rows.append((token.word, token.attribute, weight, injected))
        rows.sort(key=lambda row: -abs(row[2]))
        return rows[:k]

    def attribute_importance(self, include_injected: bool = True) -> dict[str, float]:
        """Σ|weight| per attribute over this explanation's tokens."""
        importance = {attribute: 0.0 for attribute in self.pair.schema.attributes}
        for token, injected, weight in zip(
            self.instance.tokens, self.instance.injected, self.explanation.weights
        ):
            if injected and not include_injected:
                continue
            importance[token.attribute] += abs(float(weight))
        return importance

    def apply_removal(
        self, sign: str, reconstructor: PairReconstructor | None = None
    ) -> RecordPair:
        """The pair rebuilt from this explanation's working representation
        with every *sign*-weighted token removed.

        Under double-entity generation the working representation *includes
        the injected landmark tokens*: removing the negative ones keeps the
        match-inducing injected tokens in place — the mechanism behind the
        paper's "interest" result for non-match records.
        """
        if sign not in ("positive", "negative"):
            raise ValueError(f"sign must be 'positive' or 'negative', got {sign!r}")
        reconstructor = reconstructor or PairReconstructor()
        if sign == "positive":
            mask = [0 if weight > 0 else 1 for weight in self.explanation.weights]
        else:
            mask = [0 if weight < 0 else 1 for weight in self.explanation.weights]
        return reconstructor.rebuild(self.instance, mask)

    def render(self, k: int = 5) -> str:
        """Readable per-landmark summary."""
        lines = [
            f"landmark={self.landmark_side} varying={self.varying_side} "
            f"generation={self.generation} "
            f"(model p={self.explanation.model_probability:.3f}, "
            f"R²={self.explanation.score:.3f})"
        ]
        for word, attribute, weight, injected in self.top_tokens(k):
            marker = "injected" if injected else "own"
            lines.append(f"  {weight:+.4f}  {word:<20} [{attribute}, {marker}]")
        return "\n".join(lines)


@dataclass(frozen=True)
class DualExplanation:
    """The paper's output: one explanation per landmark side."""

    pair: RecordPair
    left_landmark: LandmarkExplanation
    right_landmark: LandmarkExplanation

    def __post_init__(self) -> None:
        if self.left_landmark.landmark_side != "left":
            raise ExplanationError("left_landmark must have landmark_side='left'")
        if self.right_landmark.landmark_side != "right":
            raise ExplanationError("right_landmark must have landmark_side='right'")

    @property
    def generation(self) -> str:
        return self.left_landmark.generation

    def for_landmark(self, side: str) -> LandmarkExplanation:
        if side == "left":
            return self.left_landmark
        if side == "right":
            return self.right_landmark
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")

    def sides(self) -> tuple[LandmarkExplanation, LandmarkExplanation]:
        return (self.left_landmark, self.right_landmark)

    def combined(self) -> PairTokenWeights:
        """Every original token weighted by the explanation that varied it.

        Right-side tokens take their weight from the left-landmark
        explanation (where the right entity was perturbed) and vice versa,
        so the two explanations jointly cover the whole record exactly once.
        """
        entries = (
            self.left_landmark.original_entries()
            + self.right_landmark.original_entries()
        )
        return PairTokenWeights(self.pair, entries)

    def attribute_importance(self, include_injected: bool = True) -> dict[str, float]:
        """Σ|weight| per attribute pooled over both landmark explanations."""
        importance = {attribute: 0.0 for attribute in self.pair.schema.attributes}
        for side in self.sides():
            for attribute, value in side.attribute_importance(include_injected).items():
                importance[attribute] += value
        return importance

    def digest(self) -> str:
        """Stable content hash of this explanation (see
        :func:`repro.core.serialize.dual_digest`).

        Equal digests mean bit-identical serialized explanations — the
        equality the serving layer's store and the reproduction tests use.
        """
        from repro.core.serialize import dual_digest

        return dual_digest(self)

    def render(self, k: int = 5) -> str:
        """Readable dual summary (Example 1.2 style)."""
        header = (
            f"dual explanation [{self.generation}] "
            f"{'injected tokens present' if self.generation == GENERATION_DOUBLE else ''}"
        ).rstrip()
        return "\n".join(
            (header, self.left_landmark.render(k), self.right_landmark.render(k))
        )
