"""The batched prediction engine: the layer between reconstruction and
the black-box matcher.

Perturbation explainers are bounded by the number of model predictions
they spend (LEMON's "prediction budget" observation): every explanation
rebuilds ``n_samples`` record pairs per landmark side and sends each batch
to :meth:`~repro.matchers.base.EntityMatcher.predict_proba`, and the
evaluation runner repeats that for every (record × method ×
generation-mode) cell.  Much of that spend is redundant:

* identical mask rows rebuild — and re-predict — the same pair;
* distinct masks can still rebuild identical pairs (duplicate words inside
  an attribute value, injected tokens equal to the varying entity's own);
* the Single / Double / Mojito columns of the evaluation grid re-explain
  the *same* records, so the anchor rows and many perturbations recur
  across methods, landmark sides and evaluation stages.

:class:`PredictionEngine` removes the redundancy without changing a single
output bit: predictions are deduplicated by the **content of the rebuilt
pair**, answered from an LRU cache when possible, executed in chunked
(optionally thread-parallel) batches otherwise, and scattered back to the
full request.  Because every matcher in this library scores pairs
row-independently and deterministically, the scattered probabilities are
byte-identical to the naive path — equivalence is enforced by
``tests/core/test_engine.py`` and ``benchmarks/bench_prediction_engine.py``.

Observability
-------------
Engine accounting lives in :class:`~repro.obs.metrics.MetricsRegistry`
instruments labeled ``component="engine"`` (counters for the dedup/cache
bookkeeping, ``repro_stage_seconds`` histograms for the rebuild and
predict stages, a cache-size gauge); :class:`EngineStats` is a plain
snapshot view over them, taken atomically so concurrent workers can
never observe mixed counter generations.  The rebuild and matcher-call
sections also open ``reconstruction`` / ``prediction`` trace spans (see
:mod:`repro.obs.tracing`) — no-ops unless ``--trace`` is on.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, fields
from typing import Iterable

import numpy as np

from repro.backends.base import InProcessBackend, as_backend
from repro.core.batching import CrossRequestBatcher
from repro.core.columnar import ColumnarPairBatch, landmark_batch
from repro.core.deadline import checkpoint
from repro.core.generation import GeneratedInstance
from repro.core.guard import GUARD_COUNTER_FIELDS, GuardConfig, MatcherGuard
from repro.data.records import EMDataset, RecordPair
from repro.exceptions import ConfigurationError, ExplanationError
from repro.matchers.base import EntityMatcher
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import trace
from repro.text.tokenize import Tokenizer

#: Raw counter field names (everything in :class:`EngineStats` that can be
#: summed across engines / worker processes).
_COUNTER_FIELDS = (
    "requested",
    "calls_issued",
    "dedup_saved",
    "cache_hits",
    "cache_misses",
    "batches",
    "rebuild_seconds",
    "predict_seconds",
) + GUARD_COUNTER_FIELDS


@dataclass
class EngineStats:
    """Counter snapshot of one :class:`PredictionEngine`.

    Since the observability refactor the live counters are
    :mod:`repro.obs.metrics` instruments; an ``EngineStats`` is the
    plain-dataclass view over them that run JSON, checkpoints and the
    table footers consume (``engine.stats`` takes one atomically).

    The accounting invariant — checked by the test suite — is::

        calls_issued + calls_saved == requested
        calls_saved == dedup_saved + cache_hits
    """

    #: Predictions requested through any engine entry point (one per mask
    #: row / pair, before any deduplication).
    requested: int = 0
    #: Predictions actually forwarded to the matcher.
    calls_issued: int = 0
    #: Requests answered by another identical request in the same batch.
    dedup_saved: int = 0
    #: Unique requests answered from the LRU cache.
    cache_hits: int = 0
    #: Unique requests that missed the cache (cache enabled only).
    cache_misses: int = 0
    #: Matcher invocations (chunks sent to ``predict_proba``).
    batches: int = 0
    #: Wall time spent rebuilding pairs from masks.
    rebuild_seconds: float = 0.0
    #: Wall time spent inside the matcher.
    predict_seconds: float = 0.0
    #: Matcher-guard counters (see :mod:`repro.core.guard`): retried
    #: attempts, timed-out attempts, failed attempts, circuit-breaker
    #: trips, fast-failed calls while open, and half-open recoveries.
    guard_retries: int = 0
    guard_timeouts: int = 0
    guard_failures: int = 0
    guard_trips: int = 0
    guard_fast_failures: int = 0
    guard_recoveries: int = 0

    @property
    def calls_saved(self) -> int:
        """Requests answered without a matcher call."""
        return self.requested - self.calls_issued

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over unique (post-dedup) lookups."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def savings_factor(self) -> float:
        """Requested / issued — "1.8x fewer matcher calls" reads from here."""
        return self.requested / self.calls_issued if self.calls_issued else 1.0

    def as_dict(self) -> dict[str, float]:
        """Raw counters plus derived ratios, JSON-friendly."""
        payload: dict[str, float] = {
            name: getattr(self, name) for name in _COUNTER_FIELDS
        }
        payload["calls_saved"] = self.calls_saved
        payload["hit_rate"] = round(self.hit_rate, 4)
        payload["savings_factor"] = round(self.savings_factor, 4)
        return payload

    @classmethod
    def from_counters(cls, payload: dict[str, float]) -> "EngineStats":
        """Rebuild from :meth:`as_dict` output (derived fields ignored).

        Counters absent from *payload* (results written before the field
        existed) keep their zero defaults.
        """
        known = {f.name for f in fields(cls)}
        return cls(
            **{
                k: payload[k]
                for k in _COUNTER_FIELDS
                if k in known and k in payload
            }
        )

    def add(self, other: "EngineStats") -> "EngineStats":
        """Accumulate *other*'s counters into self (for run aggregation)."""
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def summary(self) -> str:
        """One log-friendly line."""
        text = (
            f"prediction engine: {self.requested} requested, "
            f"{self.calls_issued} issued, {self.calls_saved} saved "
            f"({self.savings_factor:.2f}x; dedup {self.dedup_saved}, "
            f"cache hits {self.cache_hits}, hit rate {self.hit_rate:.2f}) "
            f"in {self.batches} batches, "
            f"rebuild {self.rebuild_seconds:.2f}s, "
            f"predict {self.predict_seconds:.2f}s"
        )
        if self.guard_failures or self.guard_fast_failures:
            text += (
                f"; guard: {self.guard_retries} retries, "
                f"{self.guard_timeouts} timeouts, "
                f"{self.guard_trips} trips, "
                f"{self.guard_fast_failures} fast-failed, "
                f"{self.guard_recoveries} recoveries"
            )
        return text


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the prediction engine.

    ``dedup`` collapses identical rebuilt pairs inside one request;
    ``cache`` keeps an LRU of ``cache_size`` pair fingerprints that
    persists across landmark sides, methods and evaluation stages;
    ``batch_size`` chunks matcher calls and ``n_jobs > 1`` runs the chunks
    on a thread pool (expensive matchers release the GIL in their numpy
    kernels; anything that goes wrong falls back to serial execution).

    The ``max_retries`` / ``call_timeout`` / ``trip_after`` / ``cooldown``
    / ``backoff`` / ``guard_seed`` fields configure the
    :class:`~repro.core.guard.MatcherGuard` every matcher chunk goes
    through; with the defaults (no retries, no timeout) the guard is a
    plain pass-through and runs are bit-identical to unguarded ones.

    ``vectorize`` (default on) applies perturbation masks as columnar
    batches — one vectorized rebuild per instance instead of a Python
    loop per mask row — and, for matchers with ``supports_columnar``,
    scores cache-miss sets through ``predict_proba_columnar``.  Results
    are bit-identical either way (the columnar path re-encodes the same
    strings and the same float64 features); the flag exists for A/B
    benchmarking and as an escape hatch.
    """

    dedup: bool = True
    cache: bool = True
    cache_size: int = 100_000
    batch_size: int = 512
    n_jobs: int = 1
    vectorize: bool = True
    max_retries: int = 0
    call_timeout: float | None = None
    trip_after: int = 5
    cooldown: int = 8
    backoff: float = 0.05
    guard_seed: int = 0

    def __post_init__(self) -> None:
        if self.cache_size < 1:
            raise ConfigurationError(
                f"cache_size must be >= 1, got {self.cache_size}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {self.n_jobs}")
        # Delegate guard-field validation (raises ConfigurationError).
        self.guard_config()

    def guard_config(self) -> GuardConfig:
        """The :class:`~repro.core.guard.GuardConfig` these knobs ask for."""
        return GuardConfig(
            max_retries=self.max_retries,
            call_timeout=self.call_timeout,
            trip_after=self.trip_after,
            cooldown=self.cooldown,
            backoff=self.backoff,
            seed=self.guard_seed,
        )


#: A fully transparent engine: every request goes straight to the matcher.
ENGINE_OFF = EngineConfig(dedup=False, cache=False)

#: Cache key of one pair: schema attributes + both value tuples.
PairKey = tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]


def pair_fingerprint(pair: RecordPair) -> PairKey:
    """A hashable fingerprint of the *content* of a pair.

    Two pairs with equal fingerprints receive equal probabilities from
    every matcher in this library (they see only attribute values), so the
    fingerprint is a sound cache key across explanation methods.
    """
    attributes = pair.schema.attributes
    return (
        attributes,
        tuple(pair.left[attribute] for attribute in attributes),
        tuple(pair.right[attribute] for attribute in attributes),
    )


class _EngineInstruments:
    """The registry instruments one engine records into.

    Attribute names match the :class:`EngineStats` counter fields, so
    the guard (which writes ``guard_*``) and the snapshot code address
    them uniformly.  All instruments carry ``component="engine"`` plus a
    per-registry ``instance`` label so several engines can share one
    registry (one per dataset in an experiment run) without colliding.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        instance = registry.next_instance("engine")
        labels = {"component": "engine", "instance": instance}

        def counter(name: str, help: str):
            return registry.counter(name, help, **labels)

        self.requested = counter(
            "repro_engine_requests_total",
            "Predictions requested through any engine entry point",
        )
        self.calls_issued = counter(
            "repro_engine_calls_issued_total",
            "Predictions actually forwarded to the matcher",
        )
        self.dedup_saved = counter(
            "repro_engine_dedup_saved_total",
            "Requests answered by an identical request in the same batch",
        )
        self.cache_hits = counter(
            "repro_engine_cache_hits_total",
            "Unique requests answered from the LRU cache",
        )
        self.cache_misses = counter(
            "repro_engine_cache_misses_total",
            "Unique requests that missed the cache",
        )
        self.batches = counter(
            "repro_engine_batches_total",
            "Chunks sent to the matcher's predict_proba",
        )
        self.guard_retries = counter(
            "repro_guard_retries_total",
            "Matcher-guard re-invocations after a failed attempt",
        )
        self.guard_timeouts = counter(
            "repro_guard_timeouts_total",
            "Matcher-guard attempts abandoned on timeout",
        )
        self.guard_failures = counter(
            "repro_guard_failures_total",
            "Matcher-guard failed attempts of any kind",
        )
        self.guard_trips = counter(
            "repro_guard_trips_total",
            "Times the matcher circuit breaker tripped open",
        )
        self.guard_fast_failures = counter(
            "repro_guard_fast_failures_total",
            "Calls rejected while the matcher circuit was open",
        )
        self.guard_recoveries = counter(
            "repro_guard_recoveries_total",
            "Half-open probes that closed the matcher circuit",
        )
        self.rebuild_seconds = registry.histogram(
            "repro_stage_seconds",
            "Wall time per pipeline stage",
            stage="rebuild", **labels,
        )
        self.predict_seconds = registry.histogram(
            "repro_stage_seconds",
            "Wall time per pipeline stage",
            stage="predict", **labels,
        )
        self.cache_entries = registry.gauge(
            "repro_engine_cache_entries",
            "Entries currently held by the prediction LRU cache",
            **labels,
        )
        # Batch-shape observability (registry-only; not part of the
        # EngineStats counter snapshot, so checkpoint compatibility and
        # the accounting invariant are untouched).
        self.batch_width = registry.histogram(
            "repro_engine_batch_width",
            "Rows per matcher batch actually issued",
            **labels,
        )
        self.batch_wait_seconds = registry.histogram(
            "repro_engine_batch_wait_seconds",
            "Seconds a miss set waited in the cross-request batcher",
            **labels,
        )
        self.batch_merges = counter(
            "repro_engine_batch_merges_total",
            "Cross-request flushes that merged more than one miss set",
        )

    #: Instrument attributes, in EngineStats field order (counters first,
    #: then the two stage histograms whose sums are the *_seconds fields).
    COUNTERS = (
        "requested", "calls_issued", "dedup_saved", "cache_hits",
        "cache_misses", "batches",
    ) + GUARD_COUNTER_FIELDS

    def instruments(self) -> list:
        """All instruments backing an :class:`EngineStats`, in order."""
        bundle = [getattr(self, name) for name in self.COUNTERS]
        bundle += [self.rebuild_seconds, self.predict_seconds]
        return bundle

    def build(self, values: list) -> EngineStats:
        """An :class:`EngineStats` from one :meth:`instruments` read."""
        counters = {
            name: int(value)
            for name, value in zip(self.COUNTERS, values)
        }
        return EngineStats(
            rebuild_seconds=values[-2]["sum"],
            predict_seconds=values[-1]["sum"],
            **counters,
        )

    def snapshot(self) -> EngineStats:
        """An :class:`EngineStats` read atomically from the registry."""
        return self.build(self.registry.read(*self.instruments()))

    def drain(self) -> EngineStats:
        """Atomic snapshot-and-zero (``PredictionEngine.reset_stats``)."""
        return self.build(self.registry.drain(*self.instruments()))


class _EngineMatcher(EntityMatcher):
    """An :class:`EntityMatcher` view of an engine.

    Evaluation stages (token-removal trials, interest flips, deletion
    curves) accept a matcher; handing them this adapter routes their
    predictions through the shared dedup + cache layer, so e.g. the
    token-removal trials — identical across method columns by protocol —
    are only paid for once.
    """

    def __init__(self, engine: "PredictionEngine") -> None:
        self.engine = engine

    def fit(self, dataset: EMDataset) -> "EntityMatcher":
        self.engine.matcher.fit(dataset)
        self.engine.cache_clear()
        return self

    def predict_proba(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        return self.engine.predict_pairs(pairs)


class PredictionEngine:
    """Deduplicating, caching, batching front-end to one matcher backend.

    *matcher* may be a live :class:`EntityMatcher` (wrapped in an
    :class:`~repro.backends.base.InProcessBackend`, preserving the
    historical behaviour bit for bit) or any
    :class:`~repro.backends.base.MatcherBackend` — the engine itself
    only ever talks to the backend surface, so a remote matcher slots in
    without the dedup/cache/batching layers noticing.  The effective
    chunk width is ``min(config.batch_size, backend max batch)``.

    The engine is **thread-safe**: the serving layer's worker pool shares
    one engine so matcher-call dedup spans concurrent requests.  A single
    internal lock protects the stats counters and the LRU cache; the
    matcher itself is called *outside* the lock, so concurrent callers can
    race to compute the same key — both get identical values (every
    matcher here is deterministic), the only cost being an occasional
    duplicated call.  The accounting invariant holds under any
    interleaving.
    """

    def __init__(
        self,
        matcher,
        config: EngineConfig | None = None,
        tokenizer: Tokenizer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        # Imported here: reconstruction builds engines by default, so a
        # module-level import would be circular.
        from repro.core.reconstruction import PairReconstructor

        backend = as_backend(matcher)
        self.backend = backend
        # Matcher-typed view: the real matcher in-process (identical to
        # the pre-backend engine), a non-trainable proxy for remote.
        self.matcher = backend.as_matcher()
        self.config = config or EngineConfig()
        self.reconstructor = PairReconstructor(tokenizer=tokenizer)
        # *metrics* is the registry this engine's instruments live in —
        # pass the service's (or runner's) registry to surface engine
        # accounting on its /metrics endpoint and metrics.json.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._instruments = _EngineInstruments(self.metrics)
        # The guard writes its guard_* counters straight into the same
        # instrument bundle, so they land in the same registry (and the
        # same run JSON) as the dedup/cache accounting.
        self.guard = MatcherGuard(
            backend.predict_proba,
            config=self.config.guard_config(),
            stats=self._instruments,
        )
        self._cache: OrderedDict[PairKey, float] = OrderedDict()
        # Protects the LRU cache; counters live in the metrics registry
        # and are synchronized by its own lock.
        self._lock = threading.Lock()
        if isinstance(backend, InProcessBackend):
            # No capabilities() call here: it would fingerprint the
            # matcher, which may not be trained yet (the _EngineMatcher
            # adapter fits through the engine in eval flows).
            self._supports_columnar = bool(
                getattr(backend.matcher, "supports_columnar", False)
            )
            backend_max = backend.max_batch_size
        else:
            capabilities = backend.capabilities()
            self._supports_columnar = capabilities.supports_columnar
            backend_max = capabilities.max_batch_size
        self._chunk_size = min(self.config.batch_size, backend_max)
        # Optional cross-request batch scheduler (serving layer attaches
        # one when ServiceConfig.batch_window_ms is set).
        self._batcher: CrossRequestBatcher | None = None

    def attach_batcher(self, window_seconds: float, max_rows: int) -> None:
        """Coalesce concurrent miss sets into merged matcher batches.

        Submissions from different threads within *window_seconds* (or
        until *max_rows* rows accumulate) execute as one merged batch —
        see :class:`~repro.core.batching.CrossRequestBatcher`.  Row
        probabilities are bit-identical with or without merging; only
        matcher-call shapes change.
        """
        instruments = self._instruments
        self._batcher = CrossRequestBatcher(
            execute_pairs=self._execute_pairs,
            execute_columnar=self._execute_columnar,
            window_seconds=window_seconds,
            max_rows=max_rows,
            observe_wait=instruments.batch_wait_seconds.observe,
            count_merge=instruments.batch_merges.inc,
        )

    def detach_batcher(self) -> None:
        """Stop coalescing; in-flight flushes complete normally."""
        self._batcher = None

    @property
    def stats(self) -> EngineStats:
        """An atomic :class:`EngineStats` snapshot of this engine.

        Taken under the registry lock, so the returned counters all
        belong to one generation even while workers are mid-request.
        """
        return self._instruments.snapshot()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def predict_pairs(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        """Probabilities for *pairs*, deduplicated and cached by content."""
        pairs = list(pairs)
        self._instruments.requested.inc(len(pairs))
        if not pairs:
            return np.empty(0, dtype=np.float64)
        if not self.config.dedup and not self.config.cache:
            self._instruments.calls_issued.inc(len(pairs))
            return self._predict_batches(pairs)
        entries = self._group(pair_fingerprint(pair) for pair in pairs)

        def predict_misses(miss_keys, miss_slots):
            miss_pairs = [pairs[slots[0]] for slots in miss_slots]
            return self._predict_batches(miss_pairs)

        return self._resolve(entries, len(pairs), predict_misses)

    def predict_instance(
        self, instance: GeneratedInstance, masks: np.ndarray
    ) -> np.ndarray:
        """Probabilities for every perturbation mask of one instance.

        Mask rows are grouped by the *rebuilt varying entity* they produce
        — this catches identical rows and rows that differ only on tokens
        whose removal does not change the rebuilt value (duplicate words,
        already-covered injections).  Pairs are only materialized for
        groups that miss the cache.

        With ``config.vectorize`` (the default) the mask matrix is applied
        as one columnar rebuild (:func:`~repro.core.columnar.
        landmark_batch`) instead of a Python loop per row, and miss sets
        reach vectorizing matchers through ``predict_proba_columnar``;
        keys, accounting and probabilities are bit-identical either way.
        """
        masks = np.asarray(masks)
        n_masks = masks.shape[0]
        self._instruments.requested.inc(n_masks)
        if n_masks == 0:
            return np.empty(0, dtype=np.float64)
        if self.config.vectorize:
            started = time.perf_counter()
            with trace.span("reconstruction", n_masks=n_masks):
                batch = landmark_batch(instance, masks)
            self._instruments.rebuild_seconds.observe(
                time.perf_counter() - started
            )
            return self._answer_columnar(batch, n_masks)
        if not self.config.dedup and not self.config.cache:
            started = time.perf_counter()
            with trace.span("reconstruction", n_masks=n_masks):
                rebuilt = self.reconstructor.rebuild_many(instance, masks)
            self.metrics.bulk(
                (
                    (self._instruments.rebuild_seconds,
                     time.perf_counter() - started),
                    (self._instruments.calls_issued, n_masks),
                )
            )
            return self._predict_batches(rebuilt)

        started = time.perf_counter()
        rebuild_span = trace.span("reconstruction", n_masks=n_masks)
        attributes = instance.pair.schema.attributes
        landmark_values = tuple(
            instance.landmark_entity[attribute] for attribute in attributes
        )
        varying_side = instance.varying_side
        keys: list[PairKey] = []
        values_of: dict[PairKey, tuple[str, ...]] = {}
        with rebuild_span:
            for row in masks:
                values = self.reconstructor.varying_values(instance, row)
                if varying_side == "left":
                    key = (attributes, values, landmark_values)
                else:
                    key = (attributes, landmark_values, values)
                keys.append(key)
                values_of[key] = values
        self._instruments.rebuild_seconds.observe(time.perf_counter() - started)

        def predict_misses(miss_keys, miss_slots):
            miss_pairs = [
                instance.pair.with_side(
                    varying_side, dict(zip(attributes, values_of[key]))
                )
                for key in miss_keys
            ]
            return self._predict_batches(miss_pairs)

        return self._resolve(self._group(keys), n_masks, predict_misses)

    def predict_columnar(self, batch: ColumnarPairBatch) -> np.ndarray:
        """Probabilities for a columnar perturbation batch.

        The baselines' entry point: rows are fingerprinted by content
        (the same :data:`PairKey` tuples as :meth:`predict_pairs`, so the
        cache interoperates across methods), deduplicated, and miss sets
        are scored columnar when the matcher supports it — materialized
        as pairs otherwise.
        """
        n_rows = batch.n_rows
        self._instruments.requested.inc(n_rows)
        if n_rows == 0:
            return np.empty(0, dtype=np.float64)
        return self._answer_columnar(batch, n_rows)

    def predict_one(self, pair: RecordPair) -> float:
        """Cached probability of a single pair."""
        return float(self.predict_pairs([pair])[0])

    def as_matcher(self) -> EntityMatcher:
        """This engine wrapped in the :class:`EntityMatcher` interface."""
        return _EngineMatcher(self)

    def cache_clear(self) -> None:
        with self._lock:
            self._cache.clear()
        self._instruments.cache_entries.set(0)

    def reset_stats(self) -> EngineStats:
        """Return the accumulated stats and zero the counters atomically."""
        return self._instruments.drain()

    @property
    def cache_len(self) -> int:
        with self._lock:
            return len(self._cache)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _group(self, keys: Iterable[PairKey]) -> list[tuple[PairKey, list[int]]]:
        """Group request indices by fingerprint (dedup off → singletons)."""
        if self.config.dedup:
            grouped: OrderedDict[PairKey, list[int]] = OrderedDict()
            for index, key in enumerate(keys):
                grouped.setdefault(key, []).append(index)
            return list(grouped.items())
        return [(key, [index]) for index, key in enumerate(keys)]

    def _answer_columnar(
        self, batch: ColumnarPairBatch, n_requests: int
    ) -> np.ndarray:
        """Dedup/cache resolution of a columnar batch (requested counted).

        With ``vectorize`` off (a directly handed-in batch on a
        non-vectorizing engine), miss rows are materialized as pairs and
        follow the per-pair path — accounting and results are identical.
        """
        config = self.config
        if not config.dedup and not config.cache:
            self._instruments.calls_issued.inc(n_requests)
            if config.vectorize:
                return self._predict_columnar(batch)
            return self._predict_batches(batch.pairs())
        attributes = batch.schema.attributes
        left_rows = batch.value_rows("left")
        right_rows = batch.value_rows("right")
        keys: list[PairKey] = [
            (attributes, left, right)
            for left, right in zip(left_rows, right_rows)
        ]

        def predict_misses(miss_keys, miss_slots):
            rows = [slots[0] for slots in miss_slots]
            sub = batch.take(rows)
            if config.vectorize:
                return self._predict_columnar(sub)
            return self._predict_batches(sub.pairs())

        return self._resolve(self._group(keys), n_requests, predict_misses)

    def _resolve(
        self,
        entries: list[tuple[PairKey, list[int]]],
        n_requests: int,
        predict_misses,
    ) -> np.ndarray:
        """Answer grouped requests from the cache, then the matcher.

        *predict_misses* maps ``(miss_keys, miss_slots)`` — the keys that
        missed the cache and their request-index groups — to one
        probability per key; callers close it over whatever representation
        (pair list, columnar batch) the request arrived in.
        """
        config = self.config
        instruments = self._instruments
        out = np.empty(n_requests, dtype=np.float64)
        miss_keys: list[PairKey] = []
        miss_slots: list[list[int]] = []
        hits = 0
        with self._lock:
            for key, indices in entries:
                cached = self._cache_get(key) if config.cache else None
                if cached is not None:
                    hits += 1
                    out[indices] = cached
                    continue
                miss_keys.append(key)
                miss_slots.append(indices)
        # One registry-lock hold for the whole accounting batch.
        updates = [
            (instruments.dedup_saved, n_requests - len(entries)),
            (instruments.cache_hits, hits),
            (instruments.calls_issued, len(miss_keys)),
        ]
        if config.cache:
            updates.append((instruments.cache_misses, len(miss_keys)))
        self.metrics.bulk(updates)
        if miss_keys:
            # Misses are built and predicted outside the lock; concurrent
            # callers may race to compute the same key, but matchers are
            # deterministic so both writers cache the same value.
            probabilities = predict_misses(miss_keys, miss_slots)
            with self._lock:
                for key, indices, probability in zip(
                    miss_keys, miss_slots, probabilities
                ):
                    out[indices] = probability
                    if config.cache:
                        self._cache_put(key, float(probability))
                size = len(self._cache)
            if config.cache:
                instruments.cache_entries.set(size)
        return out

    def _predict_batches(self, pairs: list[RecordPair]) -> np.ndarray:
        """Matcher execution for a pair list, via the batcher when attached."""
        if self._batcher is not None:
            return self._batcher.submit(list(pairs))
        return self._execute_pairs(pairs)

    def _predict_columnar(self, batch: ColumnarPairBatch) -> np.ndarray:
        """Matcher execution for a columnar batch, via the batcher when
        attached."""
        if self._batcher is not None:
            return self._batcher.submit(batch)
        return self._execute_columnar(batch)

    def _execute_pairs(self, pairs: list[RecordPair]) -> np.ndarray:
        """Chunked (optionally thread-parallel) matcher execution.

        Polls the ambient request scope (:func:`repro.core.deadline.
        checkpoint`) between chunks: a request whose deadline passed or
        whose waiters cancelled aborts at the next chunk boundary instead
        of paying for the rest of the batch.  The poll is a no-op outside
        a serving scope and never changes results.
        """
        config = self.config
        chunk_size = self._chunk_size
        started = time.perf_counter()
        checkpoint("prediction")
        chunks = [
            pairs[offset : offset + chunk_size]
            for offset in range(0, len(pairs), chunk_size)
        ]
        instruments = self._instruments
        instruments.batches.inc(len(chunks))
        for chunk in chunks:
            instruments.batch_width.observe(len(chunk))
        with trace.span("prediction", n_pairs=len(pairs), n_batches=len(chunks)):
            results: list[np.ndarray] | None = None
            if config.n_jobs > 1 and len(chunks) > 1:
                try:
                    from concurrent.futures import ThreadPoolExecutor

                    workers = min(config.n_jobs, len(chunks))
                    with ThreadPoolExecutor(max_workers=workers) as pool:
                        results = list(pool.map(self.guard.call, chunks))
                except Exception:
                    if self.guard.config.active:
                        # With an active guard a parallel failure is a real
                        # matcher fault (retries exhausted / circuit open),
                        # not a pool problem — re-raising it serially would
                        # just hammer the matcher again.
                        raise
                    results = None  # pragma: no cover - defensive serial fallback
            if results is None:
                results = []
                for index, chunk in enumerate(chunks):
                    if index:
                        checkpoint("prediction")
                    results.append(self.guard.call(chunk))
        for chunk, result in zip(chunks, results):
            if np.shape(result) != (len(chunk),):
                raise ExplanationError(
                    f"matcher returned probabilities of shape "
                    f"{np.shape(result)} for {len(chunk)} pairs; expected "
                    f"({len(chunk)},)"
                )
        instruments.predict_seconds.observe(time.perf_counter() - started)
        if len(results) == 1:
            return np.asarray(results[0], dtype=np.float64)
        return np.concatenate(
            [np.asarray(result, dtype=np.float64) for result in results]
        )

    def _execute_columnar(self, batch: ColumnarPairBatch) -> np.ndarray:
        """Chunked columnar matcher execution (same policies as pairs).

        Falls back to the per-pair path for matchers without columnar
        support — test doubles, wrappers and the token-level matchers keep
        their exact pre-vectorization call patterns.
        """
        if not self._supports_columnar:
            return self._execute_pairs(batch.pairs())
        if batch.n_rows == 0:
            return np.empty(0, dtype=np.float64)
        config = self.config
        chunk_size = self._chunk_size
        started = time.perf_counter()
        checkpoint("prediction")
        chunks = [
            batch.slice_rows(offset, offset + chunk_size)
            for offset in range(0, batch.n_rows, chunk_size)
        ]
        instruments = self._instruments
        instruments.batches.inc(len(chunks))
        for chunk in chunks:
            instruments.batch_width.observe(chunk.n_rows)
        predict_fn = self.backend.predict_proba_columnar

        def call(chunk: ColumnarPairBatch) -> np.ndarray:
            return self.guard.call_with(predict_fn, chunk, chunk.n_rows)

        with trace.span(
            "prediction", n_pairs=batch.n_rows, n_batches=len(chunks)
        ):
            results: list[np.ndarray] | None = None
            if config.n_jobs > 1 and len(chunks) > 1:
                try:
                    from concurrent.futures import ThreadPoolExecutor

                    workers = min(config.n_jobs, len(chunks))
                    with ThreadPoolExecutor(max_workers=workers) as pool:
                        results = list(pool.map(call, chunks))
                except Exception:
                    if self.guard.config.active:
                        raise
                    results = None  # pragma: no cover - defensive serial fallback
            if results is None:
                results = []
                for index, chunk in enumerate(chunks):
                    if index:
                        checkpoint("prediction")
                    results.append(call(chunk))
        for chunk, result in zip(chunks, results):
            if np.shape(result) != (chunk.n_rows,):
                raise ExplanationError(
                    f"matcher returned probabilities of shape "
                    f"{np.shape(result)} for {chunk.n_rows} rows; expected "
                    f"({chunk.n_rows},)"
                )
        instruments.predict_seconds.observe(time.perf_counter() - started)
        if len(results) == 1:
            return np.asarray(results[0], dtype=np.float64)
        return np.concatenate(
            [np.asarray(result, dtype=np.float64) for result in results]
        )

    def _cache_get(self, key: PairKey) -> float | None:
        # Caller holds self._lock (move_to_end mutates the OrderedDict).
        value = self._cache.get(key)
        if value is not None:
            self._cache.move_to_end(key)
        return value

    def _cache_put(self, key: PairKey, value: float) -> None:
        # Caller holds self._lock.
        cache = self._cache
        cache[key] = value
        cache.move_to_end(key)
        while len(cache) > self.config.cache_size:
            cache.popitem(last=False)
