"""Rendering explanations for humans: markdown and standalone HTML.

The paper motivates Landmark Explanation with user-facing scenarios
(confidence, debugging); this module turns a
:class:`~repro.core.explanation.DualExplanation` into review-ready
artifacts:

* :func:`to_markdown` — a compact report for issue trackers / notebooks;
* :func:`to_html` — a self-contained HTML page where every token of the
  record is colour-coded by its weight (green = pushes toward match,
  red = pushes away), one panel per landmark side.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.core.explanation import DualExplanation
from repro.data.records import LABEL_NAMES


def _weight_color(weight: float, max_abs: float) -> str:
    """Green-to-red background with intensity proportional to |weight|."""
    if max_abs <= 0.0:
        return "#f0f0f0"
    intensity = min(1.0, abs(weight) / max_abs)
    alpha = 0.15 + 0.6 * intensity
    if weight >= 0:
        return f"rgba(46, 160, 67, {alpha:.2f})"
    return f"rgba(218, 54, 51, {alpha:.2f})"


def to_markdown(dual: DualExplanation, k: int = 5) -> str:
    """A compact markdown report of a dual explanation."""
    pair = dual.pair
    lines = [
        f"## Explanation for pair #{pair.pair_id} "
        f"({LABEL_NAMES[pair.label]}, generation: {dual.generation})",
        "",
        "| attribute | left | right |",
        "|---|---|---|",
    ]
    for attribute in pair.schema.attributes:
        lines.append(
            f"| {attribute} | {pair.left[attribute]} | {pair.right[attribute]} |"
        )
    for side in dual.sides():
        lines.append("")
        lines.append(
            f"### Landmark: {side.landmark_side} "
            f"(model p={side.explanation.model_probability:.3f}, "
            f"R²={side.explanation.score:.3f})"
        )
        lines.append("")
        lines.append("| token | attribute | origin | weight |")
        lines.append("|---|---|---|---|")
        for word, attribute, weight, injected in side.top_tokens(k):
            origin = "injected" if injected else "own"
            lines.append(f"| {word} | {attribute} | {origin} | {weight:+.4f} |")
    return "\n".join(lines)


_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Landmark explanation — pair #{pair_id}</title>
<style>
  body {{ font-family: system-ui, sans-serif; margin: 2rem; color: #1f2328; }}
  h1 {{ font-size: 1.3rem; }}
  h2 {{ font-size: 1.05rem; margin-top: 1.6rem; }}
  table {{ border-collapse: collapse; margin: 0.6rem 0; }}
  td, th {{ border: 1px solid #d0d7de; padding: 0.3rem 0.6rem;
            text-align: left; vertical-align: top; }}
  .token {{ padding: 0.08rem 0.25rem; border-radius: 0.25rem;
            margin-right: 0.15rem; display: inline-block; }}
  .meta {{ color: #57606a; font-size: 0.9rem; }}
  .legend span {{ margin-right: 1rem; }}
</style>
</head>
<body>
<h1>Landmark explanation — pair #{pair_id} ({label})</h1>
<p class="meta">generation: {generation} · decision threshold 0.5 ·
green pushes toward <em>match</em>, red pushes away</p>
{panels}
</body>
</html>
"""

_PANEL_TEMPLATE = """<h2>Landmark: {landmark} (frozen) — perturbed side: {varying}</h2>
<p class="meta">model p = {model_p:.3f} · surrogate R² = {score:.3f}
 · {n_injected} injected tokens</p>
<table>
<tr><th>attribute</th><th>{landmark} (landmark)</th><th>{varying} (weighted)</th></tr>
{rows}
</table>
"""


def _panel(side) -> str:
    pair = side.pair
    weights = {
        (token.attribute, token.position): (float(weight), injected)
        for token, injected, weight in zip(
            side.instance.tokens,
            side.instance.injected,
            side.explanation.weights,
        )
    }
    max_abs = max((abs(w) for w, _ in weights.values()), default=0.0)
    rows = []
    for attribute in pair.schema.attributes:
        landmark_value = html.escape(pair.entity(side.landmark_side)[attribute])
        spans = []
        for token, injected, weight in zip(
            side.instance.tokens, side.instance.injected, side.explanation.weights
        ):
            if token.attribute != attribute:
                continue
            color = _weight_color(float(weight), max_abs)
            title = (
                f"{'injected, ' if injected else ''}weight {float(weight):+.4f}"
            )
            style = f"background:{color};"
            if injected:
                style += " border: 1px dashed #57606a;"
            spans.append(
                f'<span class="token" style="{style}" title="{title}">'
                f"{html.escape(token.word)}</span>"
            )
        rows.append(
            f"<tr><td>{html.escape(attribute)}</td>"
            f"<td>{landmark_value}</td><td>{''.join(spans)}</td></tr>"
        )
    return _PANEL_TEMPLATE.format(
        landmark=side.landmark_side,
        varying=side.varying_side,
        model_p=side.explanation.model_probability,
        score=side.explanation.score,
        n_injected=side.instance.n_injected,
        rows="\n".join(rows),
    )


def to_html(dual: DualExplanation) -> str:
    """A self-contained HTML page with colour-coded tokens."""
    panels = "\n".join(_panel(side) for side in dual.sides())
    return _HTML_TEMPLATE.format(
        pair_id=dual.pair.pair_id,
        label=LABEL_NAMES[dual.pair.label],
        generation=dual.generation,
        panels=panels,
    )


def save_html(dual: DualExplanation, path: str | Path) -> Path:
    """Write :func:`to_html` output to *path* and return it."""
    path = Path(path)
    path.write_text(to_html(dual), encoding="utf-8")
    return path
