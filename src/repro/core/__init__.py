"""Landmark Explanation — the paper's primary contribution.

The pipeline (Figure 2, bottom row):

1. :class:`~repro.core.generation.LandmarkGenerator` picks one entity of the
   record as the **landmark** (kept frozen) and prepares the token list of
   the **varying entity** — either its own tokens (*single-entity*
   generation) or its tokens plus the landmark's injected tokens
   (*double-entity* generation, for non-match records).
2. The generic perturbation explainer (:mod:`repro.explainers`) samples
   binary masks over those tokens.
3. :class:`~repro.core.reconstruction.PairReconstructor` rebuilds a full
   record pair from every mask (*pair reconstruction*) and
   :class:`~repro.core.reconstruction.DatasetReconstructor` labels it with
   the black-box matcher (*dataset reconstruction*).
4. The surrogate coefficients come back as a
   :class:`~repro.core.explanation.LandmarkExplanation`; doing this once per
   landmark side yields the paper's dual
   :class:`~repro.core.explanation.DualExplanation`.

:class:`~repro.core.landmark.LandmarkExplainer` is the public entry point.
"""

from repro.core.batching import CrossRequestBatcher
from repro.core.columnar import (
    ColumnarPairBatch,
    ValueColumn,
    landmark_batch,
)
from repro.core.counterfactual import (
    Counterfactual,
    TokenEdit,
    greedy_counterfactual,
)
from repro.core.deadline import (
    CancelToken,
    Deadline,
    checkpoint,
    request_scope,
)
from repro.core.engine import (
    ENGINE_OFF,
    EngineConfig,
    EngineStats,
    PredictionEngine,
)
from repro.core.explanation import (
    DualExplanation,
    LandmarkExplanation,
    PairTokenWeights,
)
from repro.core.guard import GuardConfig, GuardStats, MatcherGuard
from repro.core.generation import (
    GENERATION_DOUBLE,
    GENERATION_SINGLE,
    GeneratedInstance,
    LandmarkGenerator,
)
from repro.core.landmark import GENERATION_AUTO, LandmarkExplainer
from repro.core.reconstruction import DatasetReconstructor, PairReconstructor
from repro.core.report import save_html, to_html, to_markdown
from repro.core.serialize import (
    dual_digest,
    dual_from_dict,
    dual_to_dict,
    load_explanation,
    load_matcher,
    matcher_fingerprint,
    pair_digest,
    save_explanation,
    save_matcher,
)
from repro.core.summarize import GlobalSummary, summarize_explanations

__all__ = [
    "CancelToken",
    "ColumnarPairBatch",
    "Counterfactual",
    "CrossRequestBatcher",
    "DatasetReconstructor",
    "Deadline",
    "DualExplanation",
    "ENGINE_OFF",
    "EngineConfig",
    "EngineStats",
    "PredictionEngine",
    "GENERATION_AUTO",
    "GENERATION_DOUBLE",
    "GENERATION_SINGLE",
    "GeneratedInstance",
    "GlobalSummary",
    "GuardConfig",
    "GuardStats",
    "MatcherGuard",
    "LandmarkExplainer",
    "LandmarkExplanation",
    "LandmarkGenerator",
    "PairReconstructor",
    "PairTokenWeights",
    "TokenEdit",
    "ValueColumn",
    "checkpoint",
    "landmark_batch",
    "dual_digest",
    "dual_from_dict",
    "dual_to_dict",
    "greedy_counterfactual",
    "load_explanation",
    "load_matcher",
    "matcher_fingerprint",
    "pair_digest",
    "request_scope",
    "save_explanation",
    "save_matcher",
    "save_html",
    "summarize_explanations",
    "to_html",
    "to_markdown",
]
