"""The cross-request batch scheduler.

The serving layer's workers compute different requests concurrently, and
each request's cache-miss set reaches the matcher as its own (often small)
batch.  :class:`CrossRequestBatcher` sits between the prediction engine's
miss sets and its matcher execution: submissions from different threads
are buffered for up to a small time window (or until a row budget fills)
and flushed as **one merged matcher batch**, amortizing per-call overhead
and letting vectorized matchers run at full width.

Scheduling semantics (leader/follower):

* the first submitter of an empty buffer becomes the **leader** and waits
  up to ``window_seconds`` for followers;
* followers enqueue and wait on their slot; a follower whose rows fill
  ``max_rows`` wakes the leader immediately;
* the leader drains the buffer, executes the merged batch (outside any
  lock) and scatters results — or the failure — back to every slot.

A submission at or above ``max_rows`` executes directly; it gains nothing
from waiting.  Pair-list and columnar submissions ride the same buffer
but merge per kind (a flush may issue one merged call of each).

Correctness: merging never changes a result bit.  Every matcher behind
the engine scores rows independently, so a row's probability is the same
whatever batch carries it — the same argument that makes the engine's
chunking safe, extended across requests.  The one sharing hazard is
*fault* attribution: the merged call runs on the leader's thread (and
under the leader's ambient request scope), so a guard failure or an
expired leader deadline fails every merged request in that flush.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.core.columnar import ColumnarPairBatch
from repro.exceptions import ConfigurationError


class _Slot:
    """One submitted miss set waiting for its share of a merged flush."""

    __slots__ = ("payload", "n_rows", "enqueued_at", "done", "result", "error")

    def __init__(self, payload, n_rows: int, enqueued_at: float) -> None:
        self.payload = payload
        self.n_rows = n_rows
        self.enqueued_at = enqueued_at
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None


class CrossRequestBatcher:
    """Coalesces concurrent matcher submissions into merged batches.

    *execute_pairs* / *execute_columnar* run one merged batch through the
    engine's chunked + guarded execution path.  *observe_wait* and
    *count_merge* are optional metric hooks: seconds a slot spent
    buffered, and flushes that merged more than one submission.
    """

    def __init__(
        self,
        execute_pairs: Callable[[list], np.ndarray],
        execute_columnar: Callable[[ColumnarPairBatch], np.ndarray],
        window_seconds: float,
        max_rows: int,
        observe_wait: Callable[[float], None] | None = None,
        count_merge: Callable[[int], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ConfigurationError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        if max_rows < 1:
            raise ConfigurationError(f"max_rows must be >= 1, got {max_rows}")
        self.window_seconds = window_seconds
        self.max_rows = max_rows
        self._execute_pairs = execute_pairs
        self._execute_columnar = execute_columnar
        self._observe_wait = observe_wait
        self._count_merge = count_merge
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: list[_Slot] = []
        self._pending_rows = 0

    # ------------------------------------------------------------------

    def submit(self, payload) -> np.ndarray:
        """Run *payload* (a pair list or a columnar batch) through a
        merged flush and return its rows of the merged result."""
        n_rows = (
            payload.n_rows
            if isinstance(payload, ColumnarPairBatch)
            else len(payload)
        )
        if n_rows == 0:
            return np.empty(0, dtype=np.float64)
        if n_rows >= self.max_rows:
            # Already a full batch: waiting could only add latency.
            return self._execute(payload)
        slot = _Slot(payload, n_rows, self._clock())
        with self._cond:
            self._pending.append(slot)
            self._pending_rows += n_rows
            leader = len(self._pending) == 1
            if not leader and self._pending_rows >= self.max_rows:
                self._cond.notify_all()
        if leader:
            self._lead(slot)
        else:
            slot.done.wait()
        if slot.error is not None:
            raise slot.error
        assert slot.result is not None
        return slot.result

    # ------------------------------------------------------------------

    def _lead(self, slot: _Slot) -> None:
        """Wait out the batch window, then drain and flush the buffer."""
        deadline = slot.enqueued_at + self.window_seconds
        with self._cond:
            while self._pending_rows < self.max_rows:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            bucket = self._pending
            self._pending = []
            self._pending_rows = 0
        self._flush(bucket)

    def _execute(self, payload) -> np.ndarray:
        if isinstance(payload, ColumnarPairBatch):
            return self._execute_columnar(payload)
        return self._execute_pairs(payload)

    def _flush(self, bucket: list[_Slot]) -> None:
        """Execute the merged bucket and scatter results to every slot."""
        now = self._clock()
        if self._observe_wait is not None:
            for slot in bucket:
                self._observe_wait(now - slot.enqueued_at)
        if self._count_merge is not None and len(bucket) > 1:
            self._count_merge(1)
        pair_slots = [
            s for s in bucket if not isinstance(s.payload, ColumnarPairBatch)
        ]
        col_slots = [
            s for s in bucket if isinstance(s.payload, ColumnarPairBatch)
        ]
        try:
            if pair_slots:
                merged: list = []
                for s in pair_slots:
                    merged.extend(s.payload)
                self._scatter(pair_slots, self._execute_pairs(merged))
            if col_slots:
                merged_batch = ColumnarPairBatch.concat(
                    [s.payload for s in col_slots]
                )
                self._scatter(col_slots, self._execute_columnar(merged_batch))
        except BaseException as error:  # noqa: BLE001 - relayed to waiters
            # A merged failure (guard trip, leader deadline, matcher
            # fault) fails every submission still waiting on this flush.
            for slot in bucket:
                if slot.result is None and slot.error is None:
                    slot.error = error
        finally:
            for slot in bucket:
                slot.done.set()

    @staticmethod
    def _scatter(slots: list[_Slot], merged: np.ndarray) -> None:
        offset = 0
        for slot in slots:
            slot.result = np.asarray(
                merged[offset : offset + slot.n_rows], dtype=np.float64
            )
            offset += slot.n_rows
