"""Serialization: dual explanations as JSON, matchers as fingerprinted
artifacts, content digests for both.

Explanations are review artifacts: they get attached to data-quality
tickets, diffed across model versions, and rendered later by someone who
cannot re-run the model.  This module round-trips a
:class:`~repro.core.explanation.DualExplanation` through plain JSON.

It also persists *trained matchers*: :func:`save_matcher` /
:func:`load_matcher` write a pickled artifact stamped with
:func:`matcher_fingerprint`, a stable content hash of the matcher's class
and learned parameters.  The serving layer (:mod:`repro.service`) keys its
explanation store on that fingerprint, so a cached explanation can never be
served for a model other than the one that produced it.  Finally,
:func:`pair_digest` and :func:`dual_digest` give canonical content hashes
of records and explanations (cache keys, store checksums, bit-identity
tests).
"""

from __future__ import annotations

import hashlib
import json
import pickle
from collections.abc import Mapping
from pathlib import Path

import numpy as np

from repro.core.explanation import DualExplanation, LandmarkExplanation
from repro.core.generation import GeneratedInstance
from repro.data.records import RecordPair
from repro.data.schema import PairSchema
from repro.exceptions import (
    ArtifactError,
    ArtifactMismatchError,
    ExplanationError,
)
from repro.explainers.base import Explanation
from repro.matchers.base import EntityMatcher
from repro.text.tokenize import PrefixedToken

FORMAT_VERSION = 1

#: Format version of matcher artifacts written by :func:`save_matcher`.
MATCHER_FORMAT_VERSION = 1


def _pair_to_dict(pair: RecordPair) -> dict:
    return {
        "attributes": list(pair.schema.attributes),
        "left": dict(pair.left),
        "right": dict(pair.right),
        "label": pair.label,
        "pair_id": pair.pair_id,
    }


def _pair_from_dict(payload: dict) -> RecordPair:
    schema = PairSchema(tuple(payload["attributes"]))
    return RecordPair(
        schema=schema,
        left=payload["left"],
        right=payload["right"],
        label=payload["label"],
        pair_id=payload["pair_id"],
    )


def _side_to_dict(side: LandmarkExplanation) -> dict:
    explanation = side.explanation
    return {
        "landmark_side": side.landmark_side,
        "generation": side.generation,
        "tokens": [
            {"attribute": token.attribute, "position": token.position,
             "word": token.word}
            for token in side.instance.tokens
        ],
        "injected": list(side.instance.injected),
        "explanation": {
            "weights": [float(weight) for weight in explanation.weights],
            "intercept": explanation.intercept,
            "score": explanation.score,
            "model_probability": explanation.model_probability,
            "surrogate_probability": explanation.surrogate_probability,
            "n_samples": explanation.n_samples,
            "metadata": _jsonable(explanation.metadata),
        },
    }


def _jsonable(value):
    """Recursively convert numpy scalars/arrays so json.dumps accepts them."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    return value


def _side_from_dict(payload: dict, pair: RecordPair) -> LandmarkExplanation:
    tokens = tuple(
        PrefixedToken(entry["attribute"], entry["position"], entry["word"])
        for entry in payload["tokens"]
    )
    instance = GeneratedInstance(
        pair=pair,
        landmark_side=payload["landmark_side"],
        generation=payload["generation"],
        tokens=tokens,
        injected=tuple(bool(flag) for flag in payload["injected"]),
    )
    explanation_payload = payload["explanation"]
    explanation = Explanation(
        feature_names=instance.feature_names,
        weights=np.array(explanation_payload["weights"], dtype=np.float64),
        intercept=explanation_payload["intercept"],
        score=explanation_payload["score"],
        model_probability=explanation_payload["model_probability"],
        surrogate_probability=explanation_payload["surrogate_probability"],
        n_samples=explanation_payload["n_samples"],
        metadata=dict(explanation_payload.get("metadata", {})),
    )
    return LandmarkExplanation(instance=instance, explanation=explanation)


def dual_to_dict(dual: DualExplanation) -> dict:
    """A JSON-serializable view of a dual explanation."""
    return {
        "format_version": FORMAT_VERSION,
        "pair": _pair_to_dict(dual.pair),
        "left_landmark": _side_to_dict(dual.left_landmark),
        "right_landmark": _side_to_dict(dual.right_landmark),
    }


def dual_from_dict(payload: dict) -> DualExplanation:
    """Rebuild a :class:`DualExplanation` written by :func:`dual_to_dict`."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ExplanationError(
            f"unsupported explanation format version {version!r}; "
            f"expected {FORMAT_VERSION}"
        )
    pair = _pair_from_dict(payload["pair"])
    return DualExplanation(
        pair=pair,
        left_landmark=_side_from_dict(payload["left_landmark"], pair),
        right_landmark=_side_from_dict(payload["right_landmark"], pair),
    )


def save_explanation(dual: DualExplanation, path: str | Path) -> None:
    """Write a dual explanation to *path* as JSON."""
    Path(path).write_text(
        json.dumps(dual_to_dict(dual), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_explanation(path: str | Path) -> DualExplanation:
    """Read a dual explanation previously written by :func:`save_explanation`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return dual_from_dict(payload)


# ---------------------------------------------------------------------------
# Content digests
# ---------------------------------------------------------------------------


def _canonical_json(payload: dict) -> str:
    """The one canonical text rendering of a JSON-able payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def pair_digest(pair: RecordPair) -> str:
    """A stable hex digest of a record pair's full content.

    Covers the schema, both entities, the label and the pair id (the id
    seeds the per-pair perturbation streams, so two pairs with equal values
    but different ids can legitimately explain differently).
    """
    blob = _canonical_json(_pair_to_dict(pair)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def dual_digest(dual: DualExplanation) -> str:
    """A stable hex digest of a dual explanation's serialized content.

    Two explanations with equal digests are bit-identical through
    :func:`dual_to_dict` — the equality the service's store and the
    bit-identity tests rely on.
    """
    blob = _canonical_json(dual_to_dict(dual)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# Matcher artifacts
# ---------------------------------------------------------------------------


def _canonical_state(value, depth: int = 0):
    """A hashable, order-independent view of a (trained) object graph.

    Numpy arrays are reduced to (dtype, shape, bytes); mappings and object
    ``__dict__``s are sorted by key, so the result does not depend on
    attribute insertion order.  Used to fingerprint matchers by *content*
    rather than by pickle byte stream.
    """
    if depth > 16:
        raise ArtifactError("matcher state is too deeply nested to fingerprint")
    if isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        return ("ndarray", str(contiguous.dtype), contiguous.shape,
                contiguous.tobytes())
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, Mapping):
        return (
            "mapping",
            tuple(
                (str(key), _canonical_state(item, depth + 1))
                for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
            ),
        )
    if isinstance(value, (list, tuple)):
        return ("sequence", tuple(_canonical_state(item, depth + 1) for item in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(item) for item in value)))
    if value is None or isinstance(value, (str, int, float, bool, bytes)):
        return value
    if hasattr(value, "__dict__"):
        cls = type(value)
        # Honor a class's own __getstate__ (e.g. the feature extractor
        # drops its volatile memo caches there) so the fingerprint covers
        # exactly the state an artifact would persist.
        state = vars(value)
        getstate = getattr(cls, "__getstate__", None)
        if getstate is not None and getstate is not getattr(
            object, "__getstate__", None
        ):
            candidate = value.__getstate__()
            if isinstance(candidate, Mapping):
                state = candidate
        return (
            f"{cls.__module__}.{cls.__qualname__}",
            _canonical_state(state, depth + 1),
        )
    return repr(value)


def matcher_fingerprint(matcher: EntityMatcher) -> str:
    """A stable hex digest of a matcher's class and learned state.

    Two matcher objects with the same class and equal trained parameters
    fingerprint identically across processes; retraining on different data
    (or changing a hyper-parameter) changes the fingerprint.  The serving
    layer keys cached explanations on this digest.
    """
    cls = type(matcher)
    state = (f"{cls.__module__}.{cls.__qualname__}", _canonical_state(matcher))
    blob = pickle.dumps(state, protocol=4)
    return hashlib.sha256(blob).hexdigest()


def save_matcher(matcher: EntityMatcher, path: str | Path) -> str:
    """Persist a trained matcher to *path*; returns its fingerprint.

    The artifact embeds the fingerprint, which :func:`load_matcher`
    re-derives and verifies — a corrupted or tampered artifact fails to
    load instead of silently serving wrong probabilities.
    """
    fingerprint = matcher_fingerprint(matcher)
    envelope = {
        "format_version": MATCHER_FORMAT_VERSION,
        "class": f"{type(matcher).__module__}.{type(matcher).__qualname__}",
        "fingerprint": fingerprint,
        "matcher": matcher,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps(envelope, protocol=4))
    return fingerprint


def load_matcher(
    path: str | Path,
    expected_fingerprint: str | None = None,
) -> EntityMatcher:
    """Load a matcher artifact written by :func:`save_matcher`.

    Raises :class:`~repro.exceptions.ArtifactError` when the file is
    missing, unreadable, or from an unsupported format version, and the
    sharper :class:`~repro.exceptions.ArtifactMismatchError` when the
    recomputed fingerprint disagrees with the one stored at save time —
    the stale/foreign-weights case serving paths must abort on rather
    than retrain over.  *expected_fingerprint*, when given, additionally
    pins the artifact to a specific model version (what a shard or
    backend server was told to serve) and mismatches raise the same
    :class:`ArtifactMismatchError`.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no matcher artifact at {path}")
    try:
        envelope = pickle.loads(path.read_bytes())
    except Exception as error:
        raise ArtifactError(f"matcher artifact {path} is unreadable: {error}") from error
    if not isinstance(envelope, dict) or "matcher" not in envelope:
        raise ArtifactError(f"matcher artifact {path} has an unexpected layout")
    version = envelope.get("format_version")
    if version != MATCHER_FORMAT_VERSION:
        raise ArtifactError(
            f"matcher artifact {path} has format version {version!r}; "
            f"expected {MATCHER_FORMAT_VERSION}"
        )
    matcher = envelope["matcher"]
    recomputed = matcher_fingerprint(matcher)
    if recomputed != envelope.get("fingerprint"):
        raise ArtifactMismatchError(
            f"matcher artifact {path} fails its fingerprint check "
            f"(stored {envelope.get('fingerprint')!r}, recomputed "
            f"{recomputed!r}); refusing to serve from a corrupt model"
        )
    if expected_fingerprint is not None and recomputed != expected_fingerprint:
        raise ArtifactMismatchError(
            f"matcher artifact {path} holds a different model than "
            f"requested (artifact {recomputed!r}, expected "
            f"{expected_fingerprint!r}); refusing to serve stale weights"
        )
    return matcher
