"""JSON serialization of dual explanations.

Explanations are review artifacts: they get attached to data-quality
tickets, diffed across model versions, and rendered later by someone who
cannot re-run the model.  This module round-trips a
:class:`~repro.core.explanation.DualExplanation` through plain JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.explanation import DualExplanation, LandmarkExplanation
from repro.core.generation import GeneratedInstance
from repro.data.records import RecordPair
from repro.data.schema import PairSchema
from repro.exceptions import ExplanationError
from repro.explainers.base import Explanation
from repro.text.tokenize import PrefixedToken

FORMAT_VERSION = 1


def _pair_to_dict(pair: RecordPair) -> dict:
    return {
        "attributes": list(pair.schema.attributes),
        "left": dict(pair.left),
        "right": dict(pair.right),
        "label": pair.label,
        "pair_id": pair.pair_id,
    }


def _pair_from_dict(payload: dict) -> RecordPair:
    schema = PairSchema(tuple(payload["attributes"]))
    return RecordPair(
        schema=schema,
        left=payload["left"],
        right=payload["right"],
        label=payload["label"],
        pair_id=payload["pair_id"],
    )


def _side_to_dict(side: LandmarkExplanation) -> dict:
    explanation = side.explanation
    return {
        "landmark_side": side.landmark_side,
        "generation": side.generation,
        "tokens": [
            {"attribute": token.attribute, "position": token.position,
             "word": token.word}
            for token in side.instance.tokens
        ],
        "injected": list(side.instance.injected),
        "explanation": {
            "weights": [float(weight) for weight in explanation.weights],
            "intercept": explanation.intercept,
            "score": explanation.score,
            "model_probability": explanation.model_probability,
            "surrogate_probability": explanation.surrogate_probability,
            "n_samples": explanation.n_samples,
            "metadata": _jsonable(explanation.metadata),
        },
    }


def _jsonable(value):
    """Recursively convert numpy scalars/arrays so json.dumps accepts them."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    return value


def _side_from_dict(payload: dict, pair: RecordPair) -> LandmarkExplanation:
    tokens = tuple(
        PrefixedToken(entry["attribute"], entry["position"], entry["word"])
        for entry in payload["tokens"]
    )
    instance = GeneratedInstance(
        pair=pair,
        landmark_side=payload["landmark_side"],
        generation=payload["generation"],
        tokens=tokens,
        injected=tuple(bool(flag) for flag in payload["injected"]),
    )
    explanation_payload = payload["explanation"]
    explanation = Explanation(
        feature_names=instance.feature_names,
        weights=np.array(explanation_payload["weights"], dtype=np.float64),
        intercept=explanation_payload["intercept"],
        score=explanation_payload["score"],
        model_probability=explanation_payload["model_probability"],
        surrogate_probability=explanation_payload["surrogate_probability"],
        n_samples=explanation_payload["n_samples"],
        metadata=dict(explanation_payload.get("metadata", {})),
    )
    return LandmarkExplanation(instance=instance, explanation=explanation)


def dual_to_dict(dual: DualExplanation) -> dict:
    """A JSON-serializable view of a dual explanation."""
    return {
        "format_version": FORMAT_VERSION,
        "pair": _pair_to_dict(dual.pair),
        "left_landmark": _side_to_dict(dual.left_landmark),
        "right_landmark": _side_to_dict(dual.right_landmark),
    }


def dual_from_dict(payload: dict) -> DualExplanation:
    """Rebuild a :class:`DualExplanation` written by :func:`dual_to_dict`."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ExplanationError(
            f"unsupported explanation format version {version!r}; "
            f"expected {FORMAT_VERSION}"
        )
    pair = _pair_from_dict(payload["pair"])
    return DualExplanation(
        pair=pair,
        left_landmark=_side_from_dict(payload["left_landmark"], pair),
        right_landmark=_side_from_dict(payload["right_landmark"], pair),
    )


def save_explanation(dual: DualExplanation, path: str | Path) -> None:
    """Write a dual explanation to *path* as JSON."""
    Path(path).write_text(
        json.dumps(dual_to_dict(dual), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_explanation(path: str | Path) -> DualExplanation:
    """Read a dual explanation previously written by :func:`save_explanation`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return dual_from_dict(payload)
