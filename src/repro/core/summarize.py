"""Global explanation summaries (the paper's stated future work).

"Future work includes the study of techniques for summarizing the
explanations to facilitate the interpretation of the EM model as a whole."
This module implements a straightforward such technique: aggregate many
local (dual) explanations into global per-word and per-attribute impact
statistics.

For every word we track how often it appeared, its mean signed weight and
its mean absolute weight; attributes aggregate the same over their tokens.
The result answers questions like "which words does the model treat as
match evidence across the whole dataset?".

The summary is a *streaming* accumulator: it holds per-token aggregates,
never the explanations themselves, so memory is bounded by the vocabulary
regardless of how many explanations flow through.  Partial summaries are
**mergeable** (:meth:`GlobalSummary.merge` is associative) and round-trip
through JSON (:meth:`~GlobalSummary.to_payload` /
:meth:`~GlobalSummary.from_payload`) without losing a bit — floats
survive the trip exactly — which is what lets the bulk runner
(:mod:`repro.bulk`) journal one partial per completed chunk and rebuild
the dataset-wide report bit-identically on ``--resume``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.explanation import DualExplanation
from repro.exceptions import ExplanationError

#: Canonical fold order of a result payload's generations.
_CANONICAL_GENERATIONS = ("single", "double")


def _generation_order(duals: dict) -> list[str]:
    """Keys of *duals* in canonical fold order.

    JSON round trips (``sort_keys=True`` in the store) reorder dict
    keys; folding in a fixed order instead keeps the arithmetic — and
    therefore the summary bits — independent of where a payload has
    been.
    """
    known = [g for g in _CANONICAL_GENERATIONS if g in duals]
    extra = sorted(set(duals) - set(_CANONICAL_GENERATIONS))
    return known + extra


@dataclass
class _Accumulator:
    count: int = 0
    total_weight: float = 0.0
    total_abs_weight: float = 0.0

    def add(self, weight: float) -> None:
        self.count += 1
        self.total_weight += weight
        self.total_abs_weight += abs(weight)

    def merge(self, other: "_Accumulator") -> None:
        self.count += other.count
        self.total_weight += other.total_weight
        self.total_abs_weight += other.total_abs_weight

    @property
    def mean_weight(self) -> float:
        return self.total_weight / self.count if self.count else 0.0

    @property
    def mean_abs_weight(self) -> float:
        return self.total_abs_weight / self.count if self.count else 0.0


@dataclass
class GlobalSummary:
    """Aggregated impact of words and attributes across many explanations."""

    n_explanations: int = 0
    words: dict[str, _Accumulator] = field(default_factory=dict)
    attributes: dict[str, _Accumulator] = field(default_factory=dict)

    def add(self, dual: DualExplanation) -> None:
        """Fold one dual explanation into the summary (original tokens only)."""
        self.n_explanations += 1
        for entry in dual.combined().entries:
            self.words.setdefault(entry.word, _Accumulator()).add(entry.weight)
            self.attributes.setdefault(entry.attribute, _Accumulator()).add(
                entry.weight
            )

    def add_result_payload(self, payload: dict) -> None:
        """Fold a service/bulk result payload (its ``duals`` section).

        The payload shape is what :class:`~repro.service.service.
        ExplanationService` stores and returns.  Generations fold in the
        *canonical* order (single, then double, then anything unknown
        alphabetically) — never the dict's own order, because a
        ``sort_keys`` JSON round trip through the store reorders keys
        and float addition is order-sensitive.  Canonical order is what
        makes a store-served payload fold bit-identically to the freshly
        computed one.
        """
        from repro.core.serialize import dual_from_dict

        duals = payload.get("duals")
        if not isinstance(duals, dict):
            raise ExplanationError(
                "result payload has no 'duals' section to summarize"
            )
        for generation in _generation_order(duals):
            self.add(dual_from_dict(duals[generation]))

    def merge(self, other: "GlobalSummary") -> "GlobalSummary":
        """Fold *other* into this summary in place (and return ``self``).

        Counts merge exactly; weight totals are float sums, so a merge
        of chunk partials agrees with a one-pass fold only up to float
        regrouping noise (identical rendered reports, ~1e-16 totals).
        Merging the *same* partials in the *same* order is always
        bit-reproducible.  For bit-identical ``--resume`` the bulk
        runner therefore journals the cumulative summary after each
        chunk — restoring it via :meth:`from_payload` and continuing
        the fold replays the uninterrupted arithmetic exactly.
        """
        self.n_explanations += other.n_explanations
        for word, acc in other.words.items():
            self.words.setdefault(word, _Accumulator()).merge(acc)
        for attribute, acc in other.attributes.items():
            self.attributes.setdefault(attribute, _Accumulator()).merge(acc)
        return self

    def to_payload(self) -> dict:
        """A JSON-serializable snapshot (exact float round-trip)."""
        return {
            "n_explanations": self.n_explanations,
            "words": {
                word: [acc.count, acc.total_weight, acc.total_abs_weight]
                for word, acc in sorted(self.words.items())
            },
            "attributes": {
                attribute: [acc.count, acc.total_weight, acc.total_abs_weight]
                for attribute, acc in sorted(self.attributes.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "GlobalSummary":
        """Rebuild a summary written by :meth:`to_payload`."""
        try:
            summary = cls(n_explanations=int(payload["n_explanations"]))
            for section, target in (
                ("words", summary.words),
                ("attributes", summary.attributes),
            ):
                for name, (count, total, total_abs) in payload[section].items():
                    target[name] = _Accumulator(
                        count=int(count),
                        total_weight=float(total),
                        total_abs_weight=float(total_abs),
                    )
        except (KeyError, TypeError, ValueError) as error:
            raise ExplanationError(
                f"malformed summary payload: {error}"
            ) from error
        return summary

    def top_words(
        self, k: int = 20, min_count: int = 2, sign: str | None = None
    ) -> list[tuple[str, float, int]]:
        """(word, mean weight, count), strongest mean |weight| first.

        ``sign`` filters to words whose *mean* weight is positive (global
        match evidence) or negative (global mismatch evidence).
        """
        rows = [
            (word, acc.mean_weight, acc.count)
            for word, acc in self.words.items()
            if acc.count >= min_count
        ]
        if sign == "positive":
            rows = [row for row in rows if row[1] > 0]
        elif sign == "negative":
            rows = [row for row in rows if row[1] < 0]
        elif sign is not None:
            raise ValueError(f"sign must be 'positive', 'negative' or None: {sign!r}")
        rows.sort(key=lambda row: -abs(row[1]))
        return rows[:k]

    def attribute_report(self) -> list[tuple[str, float, int]]:
        """(attribute, mean |weight|, token count), heaviest first."""
        rows = [
            (attribute, acc.mean_abs_weight, acc.count)
            for attribute, acc in self.attributes.items()
        ]
        rows.sort(key=lambda row: -row[1])
        return rows

    def render(self, k: int = 15) -> str:
        """Readable global report."""
        lines = [f"global summary over {self.n_explanations} explanations"]
        lines.append("attributes by mean |weight|:")
        for attribute, weight, count in self.attribute_report():
            lines.append(f"  {attribute:<20} {weight:+.4f}  (n={count})")
        lines.append(f"top {k} words by mean |weight|:")
        for word, weight, count in self.top_words(k):
            lines.append(f"  {word:<24} {weight:+.4f}  (n={count})")
        return "\n".join(lines)


def summarize_explanations(
    explanations: Iterable[DualExplanation] | Sequence[DualExplanation],
) -> GlobalSummary:
    """Aggregate an iterable of dual explanations into a global summary."""
    summary = GlobalSummary()
    for dual in explanations:
        summary.add(dual)
    return summary


def merge_summaries(partials: Iterable[GlobalSummary]) -> GlobalSummary:
    """Merge shard/chunk partials, in iteration order, into one summary."""
    merged = GlobalSummary()
    for partial in partials:
        merged.merge(partial)
    return merged
