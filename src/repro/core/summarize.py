"""Global explanation summaries (the paper's stated future work).

"Future work includes the study of techniques for summarizing the
explanations to facilitate the interpretation of the EM model as a whole."
This module implements a straightforward such technique: aggregate many
local (dual) explanations into global per-word and per-attribute impact
statistics.

For every word we track how often it appeared, its mean signed weight and
its mean absolute weight; attributes aggregate the same over their tokens.
The result answers questions like "which words does the model treat as
match evidence across the whole dataset?".
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.explanation import DualExplanation


@dataclass
class _Accumulator:
    count: int = 0
    total_weight: float = 0.0
    total_abs_weight: float = 0.0

    def add(self, weight: float) -> None:
        self.count += 1
        self.total_weight += weight
        self.total_abs_weight += abs(weight)

    @property
    def mean_weight(self) -> float:
        return self.total_weight / self.count if self.count else 0.0

    @property
    def mean_abs_weight(self) -> float:
        return self.total_abs_weight / self.count if self.count else 0.0


@dataclass
class GlobalSummary:
    """Aggregated impact of words and attributes across many explanations."""

    n_explanations: int = 0
    words: dict[str, _Accumulator] = field(default_factory=dict)
    attributes: dict[str, _Accumulator] = field(default_factory=dict)

    def add(self, dual: DualExplanation) -> None:
        """Fold one dual explanation into the summary (original tokens only)."""
        self.n_explanations += 1
        for entry in dual.combined().entries:
            self.words.setdefault(entry.word, _Accumulator()).add(entry.weight)
            self.attributes.setdefault(entry.attribute, _Accumulator()).add(
                entry.weight
            )

    def top_words(
        self, k: int = 20, min_count: int = 2, sign: str | None = None
    ) -> list[tuple[str, float, int]]:
        """(word, mean weight, count), strongest mean |weight| first.

        ``sign`` filters to words whose *mean* weight is positive (global
        match evidence) or negative (global mismatch evidence).
        """
        rows = [
            (word, acc.mean_weight, acc.count)
            for word, acc in self.words.items()
            if acc.count >= min_count
        ]
        if sign == "positive":
            rows = [row for row in rows if row[1] > 0]
        elif sign == "negative":
            rows = [row for row in rows if row[1] < 0]
        elif sign is not None:
            raise ValueError(f"sign must be 'positive', 'negative' or None: {sign!r}")
        rows.sort(key=lambda row: -abs(row[1]))
        return rows[:k]

    def attribute_report(self) -> list[tuple[str, float, int]]:
        """(attribute, mean |weight|, token count), heaviest first."""
        rows = [
            (attribute, acc.mean_abs_weight, acc.count)
            for attribute, acc in self.attributes.items()
        ]
        rows.sort(key=lambda row: -row[1])
        return rows

    def render(self, k: int = 15) -> str:
        """Readable global report."""
        lines = [f"global summary over {self.n_explanations} explanations"]
        lines.append("attributes by mean |weight|:")
        for attribute, weight, count in self.attribute_report():
            lines.append(f"  {attribute:<20} {weight:+.4f}  (n={count})")
        lines.append(f"top {k} words by mean |weight|:")
        for word, weight, count in self.top_words(k):
            lines.append(f"  {word:<24} {weight:+.4f}  (n={count})")
        return "\n".join(lines)


def summarize_explanations(
    explanations: Iterable[DualExplanation] | Sequence[DualExplanation],
) -> GlobalSummary:
    """Aggregate an iterable of dual explanations into a global summary."""
    summary = GlobalSummary()
    for dual in explanations:
        summary.add(dual)
    return summary
