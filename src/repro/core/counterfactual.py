"""Counterfactual edits derived from landmark explanations.

The paper's "interest" metric asks whether an explanation names the tokens
that *would change the model's decision*.  This module turns that idea
into an artifact: given a landmark explanation, greedily apply the
smallest set of token edits that flips the model's class on the record.

Edits come straight from the explanation's working representation:

* **removing** one of the varying entity's own tokens (weight tells the
  expected probability drop), and — under double-entity generation —
* **adding** one of the injected landmark tokens (weight tells the
  expected probability gain).

For a record predicted *matching* the goal is to push the probability
below the threshold (remove positive evidence); for a predicted
*non-match* the goal is to cross above it (add injected match evidence,
drop clashing tokens).  Each greedy step picks the edit with the best
expected movement and re-queries the black box, so the result is grounded
in the model, not in the surrogate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.explanation import LandmarkExplanation
from repro.core.reconstruction import PairReconstructor
from repro.data.records import RecordPair
from repro.exceptions import ConfigurationError
from repro.matchers.base import DEFAULT_THRESHOLD, EntityMatcher


@dataclass(frozen=True)
class TokenEdit:
    """One applied edit: a token added to or removed from the varying entity."""

    action: str  # "add" | "remove"
    attribute: str
    word: str
    injected: bool
    expected_effect: float
    probability_after: float

    def describe(self) -> str:
        origin = "landmark" if self.injected else "own"
        return (
            f"{self.action} {self.word!r} [{self.attribute}, {origin}] "
            f"→ p={self.probability_after:.3f}"
        )


@dataclass(frozen=True)
class Counterfactual:
    """The outcome of a greedy counterfactual search."""

    original: RecordPair
    modified: RecordPair
    edits: tuple[TokenEdit, ...]
    original_probability: float
    final_probability: float
    threshold: float
    flipped: bool

    @property
    def n_edits(self) -> int:
        return len(self.edits)

    def render(self) -> str:
        original_class = "match" if self.original_probability >= self.threshold else "non-match"
        final_class = "match" if self.final_probability >= self.threshold else "non-match"
        lines = [
            f"counterfactual: {original_class} (p={self.original_probability:.3f}) "
            f"→ {final_class} (p={self.final_probability:.3f}) "
            f"in {self.n_edits} edits"
            + ("" if self.flipped else " [DID NOT FLIP]")
        ]
        lines.extend(f"  {index + 1}. {edit.describe()}"
                     for index, edit in enumerate(self.edits))
        return "\n".join(lines)


def greedy_counterfactual(
    landmark_explanation: LandmarkExplanation,
    matcher: EntityMatcher,
    threshold: float = DEFAULT_THRESHOLD,
    max_edits: int = 10,
    reconstructor: PairReconstructor | None = None,
) -> Counterfactual:
    """Flip the model's decision with the fewest explanation-guided edits.

    The search state is a mask over the explanation's token list,
    initialized to the *original record*: own tokens present, injected
    tokens absent.  At every step the edit with the largest expected
    movement toward the target class is applied and the black box is
    re-queried; the search stops at the first flip or after *max_edits*.
    """
    if max_edits < 1:
        raise ConfigurationError(f"max_edits must be >= 1, got {max_edits}")
    reconstructor = reconstructor or PairReconstructor()
    instance = landmark_explanation.instance
    weights = landmark_explanation.explanation.weights

    mask = np.array(
        [0 if injected else 1 for injected in instance.injected], dtype=np.int8
    )
    original_pair = reconstructor.rebuild(instance, mask)
    original_probability = matcher.predict_one(original_pair)
    toward_match = original_probability < threshold

    edits: list[TokenEdit] = []
    current_probability = original_probability
    current_pair = original_pair
    flipped = False
    for _ in range(max_edits):
        # Expected effect of toggling each token, toward the target class.
        best_index = -1
        best_effect = 0.0
        for index, weight in enumerate(weights):
            if mask[index] == 1:
                effect = -float(weight)  # removing the token
            else:
                effect = float(weight)  # adding the (injected) token
            if not toward_match:
                effect = -effect
            if effect > best_effect:
                best_effect = effect
                best_index = index
        if best_index < 0:
            break  # no edit is expected to help
        mask[best_index] ^= 1
        token = instance.tokens[best_index]
        current_pair = reconstructor.rebuild(instance, mask)
        current_probability = matcher.predict_one(current_pair)
        edits.append(
            TokenEdit(
                action="add" if mask[best_index] == 1 else "remove",
                attribute=token.attribute,
                word=token.word,
                injected=instance.injected[best_index],
                expected_effect=best_effect if toward_match else -best_effect,
                probability_after=current_probability,
            )
        )
        flipped = (current_probability >= threshold) == toward_match
        if flipped:
            break
    return Counterfactual(
        original=original_pair,
        modified=current_pair,
        edits=tuple(edits),
        original_probability=original_probability,
        final_probability=current_probability,
        threshold=threshold,
        flipped=flipped,
    )
