"""Pair reconstruction and dataset reconstruction.

*Pair reconstruction* turns a perturbation mask back into a well-formed
record pair: the surviving tokens of the varying entity are regrouped into
attribute values (the tokenizer's prefixes say where every token belongs)
and re-joined with the untouched landmark entity.

*Dataset reconstruction* labels every rebuilt pair with the black-box EM
model, producing the (mask, probability) training set of the surrogate.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.generation import GeneratedInstance
from repro.data.records import RecordPair
from repro.matchers.base import EntityMatcher
from repro.text.tokenize import Tokenizer


class PairReconstructor:
    """Rebuilds record pairs from perturbation masks."""

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self.tokenizer = tokenizer or Tokenizer()

    def rebuild(
        self, instance: GeneratedInstance, mask: Sequence[int] | np.ndarray
    ) -> RecordPair:
        """The record pair corresponding to one perturbation mask.

        Mask bit *i* keeps token *i* of the varying entity; the landmark
        entity is copied through unchanged.  Attributes whose tokens were
        all dropped become empty strings (the schema is always complete).
        """
        if len(mask) != len(instance.tokens):
            raise ValueError(
                f"mask length {len(mask)} != token count {len(instance.tokens)}"
            )
        kept = [
            token
            for token, bit in zip(instance.tokens, mask)
            if bit
        ]
        partial_values = self.tokenizer.detokenize(kept)
        varying_entity = instance.pair.schema.conform(partial_values)
        return instance.pair.with_side(instance.varying_side, varying_entity)

    def rebuild_many(
        self, instance: GeneratedInstance, masks: np.ndarray
    ) -> list[RecordPair]:
        """Rebuild one pair per mask row."""
        return [self.rebuild(instance, row) for row in masks]


class DatasetReconstructor:
    """Adapts (matcher, reconstructor) into the explainer's mask-predict fn."""

    def __init__(
        self,
        matcher: EntityMatcher,
        reconstructor: PairReconstructor | None = None,
    ) -> None:
        self.matcher = matcher
        self.reconstructor = reconstructor or PairReconstructor()

    def predict_masks_fn(self, instance: GeneratedInstance):
        """A ``masks → probabilities`` closure for one generated instance."""

        def predict_masks(masks: np.ndarray) -> np.ndarray:
            pairs = self.reconstructor.rebuild_many(instance, masks)
            return self.matcher.predict_proba(pairs)

        return predict_masks
