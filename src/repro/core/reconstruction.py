"""Pair reconstruction and dataset reconstruction.

*Pair reconstruction* turns a perturbation mask back into a well-formed
record pair: the surviving tokens of the varying entity are regrouped into
attribute values (the tokenizer's prefixes say where every token belongs)
and re-joined with the untouched landmark entity.

*Dataset reconstruction* labels every rebuilt pair with the black-box EM
model, producing the (mask, probability) training set of the surrogate.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import PredictionEngine

from repro.core.generation import GeneratedInstance
from repro.data.records import RecordPair
from repro.matchers.base import EntityMatcher
from repro.text.tokenize import Tokenizer


class PairReconstructor:
    """Rebuilds record pairs from perturbation masks."""

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self.tokenizer = tokenizer or Tokenizer()

    def rebuild(
        self, instance: GeneratedInstance, mask: Sequence[int] | np.ndarray
    ) -> RecordPair:
        """The record pair corresponding to one perturbation mask.

        Mask bit *i* keeps token *i* of the varying entity; the landmark
        entity is copied through unchanged.  Attributes whose tokens were
        all dropped become empty strings (the schema is always complete).

        Delegates to :meth:`varying_values` so the pair-building and
        fingerprinting paths can never silently diverge.
        """
        values = self.varying_values(instance, mask)
        varying_entity = dict(zip(instance.pair.schema.attributes, values))
        return instance.pair.with_side(instance.varying_side, varying_entity)

    def varying_values(
        self, instance: GeneratedInstance, mask: Sequence[int] | np.ndarray
    ) -> tuple[str, ...]:
        """The rebuilt varying entity's values, in schema attribute order.

        This is :meth:`rebuild` without materializing a
        :class:`~repro.data.records.RecordPair` — the prediction engine
        fingerprints masks with it and only builds pairs on cache misses.
        """
        if len(mask) != len(instance.tokens):
            raise ValueError(
                f"mask length {len(mask)} != token count {len(instance.tokens)}"
            )
        kept = [
            token
            for token, bit in zip(instance.tokens, mask)
            if bit
        ]
        entity = instance.pair.schema.conform(self.tokenizer.detokenize(kept))
        return tuple(
            entity[attribute] for attribute in instance.pair.schema.attributes
        )

    def rebuild_many(
        self, instance: GeneratedInstance, masks: np.ndarray
    ) -> list[RecordPair]:
        """Rebuild one pair per mask row."""
        return [self.rebuild(instance, row) for row in masks]


class DatasetReconstructor:
    """Adapts (matcher, reconstructor) into the explainer's mask-predict fn.

    When an *engine* (:class:`~repro.core.engine.PredictionEngine`) is
    attached, mask batches route through its dedup + cache + batching layer;
    otherwise every mask is rebuilt and predicted directly.  Both paths
    return bit-identical probabilities.
    """

    def __init__(
        self,
        matcher: EntityMatcher,
        reconstructor: PairReconstructor | None = None,
        engine: "PredictionEngine | None" = None,
    ) -> None:
        self.matcher = matcher
        self.reconstructor = reconstructor or PairReconstructor()
        self.engine = engine

    @property
    def stats(self):
        """Engine counters, or ``None`` on the direct path."""
        return self.engine.stats if self.engine is not None else None

    def predict_masks_fn(self, instance: GeneratedInstance):
        """A ``masks → probabilities`` closure for one generated instance."""
        if self.engine is not None:
            engine = self.engine

            def predict_masks(masks: np.ndarray) -> np.ndarray:
                return engine.predict_instance(instance, masks)

            return predict_masks

        def predict_masks(masks: np.ndarray) -> np.ndarray:
            pairs = self.reconstructor.rebuild_many(instance, masks)
            return self.matcher.predict_proba(pairs)

        return predict_masks
