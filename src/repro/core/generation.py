"""Landmark generation: choosing what is frozen and what is perturbed.

For a record pair and a chosen landmark side this component produces the
token list that the perturbation explainer will operate on:

* **single-entity** generation — the varying entity's own tokens.  A
  perturbation highlights how the varying entity differs from the landmark;
  the paper finds it most reliable for records predicted *matching*.
* **double-entity** generation — the varying entity's tokens **plus the
  landmark's tokens injected per attribute** (appended after the varying
  tokens, with shifted positions).  Perturbations of the augmented entity
  reach into the matching class even for strongly non-matching records,
  which is what makes non-match explanations "interesting".

``injection_fraction`` (default 1.0 = the paper's behaviour) is exposed for
the ablation benchmark: inject only the first ``ceil(fraction · n)``
landmark tokens per attribute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.data.records import RecordPair
from repro.exceptions import ConfigurationError, ExplanationError
from repro.text.tokenize import PrefixedToken, Tokenizer

GENERATION_SINGLE = "single"
GENERATION_DOUBLE = "double"

_OPPOSITE_SIDE = {"left": "right", "right": "left"}


@dataclass(frozen=True)
class GeneratedInstance:
    """The perturbation-ready view of one (record, landmark side) choice.

    ``tokens[i]`` is the i-th perturbable token of the varying entity and
    ``injected[i]`` tells whether it was copied in from the landmark
    (always ``False`` under single-entity generation).
    """

    pair: RecordPair
    landmark_side: str
    generation: str
    tokens: tuple[PrefixedToken, ...]
    injected: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.tokens) != len(self.injected):
            raise ExplanationError(
                f"{len(self.tokens)} tokens but {len(self.injected)} "
                "injection flags"
            )
        names = [token.prefixed for token in self.tokens]
        if len(set(names)) != len(names):
            raise ExplanationError("duplicate prefixed tokens in instance")

    @property
    def varying_side(self) -> str:
        return _OPPOSITE_SIDE[self.landmark_side]

    @property
    def landmark_entity(self):
        return self.pair.entity(self.landmark_side)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Prefixed token strings — the interpretable feature names."""
        return tuple(token.prefixed for token in self.tokens)

    @property
    def n_injected(self) -> int:
        return sum(self.injected)


class LandmarkGenerator:
    """Builds :class:`GeneratedInstance` objects for both generation modes."""

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        injection_fraction: float = 1.0,
    ) -> None:
        if not 0.0 < injection_fraction <= 1.0:
            raise ConfigurationError(
                f"injection_fraction must be in (0, 1], got {injection_fraction}"
            )
        self.tokenizer = tokenizer or Tokenizer()
        self.injection_fraction = injection_fraction

    def generate(
        self,
        pair: RecordPair,
        landmark_side: str,
        generation: str = GENERATION_SINGLE,
    ) -> GeneratedInstance:
        """Prepare the perturbable token list for one landmark choice."""
        if landmark_side not in _OPPOSITE_SIDE:
            raise ConfigurationError(
                f"landmark_side must be 'left' or 'right', got {landmark_side!r}"
            )
        if generation not in (GENERATION_SINGLE, GENERATION_DOUBLE):
            raise ConfigurationError(
                f"generation must be 'single' or 'double', got {generation!r}"
            )
        varying_side = _OPPOSITE_SIDE[landmark_side]
        varying_entity = pair.entity(varying_side)
        tokens: list[PrefixedToken] = []
        injected: list[bool] = []
        for attribute in pair.schema.attributes:
            own = self.tokenizer.tokenize_value(attribute, varying_entity[attribute])
            tokens.extend(own)
            injected.extend([False] * len(own))
            if generation == GENERATION_DOUBLE:
                landmark_tokens = self.tokenizer.tokenize_value(
                    attribute, pair.entity(landmark_side)[attribute]
                )
                n_inject = math.ceil(len(landmark_tokens) * self.injection_fraction)
                for landmark_token in landmark_tokens[:n_inject]:
                    tokens.append(landmark_token.shifted(len(own)))
                    injected.append(True)
        return GeneratedInstance(
            pair=pair,
            landmark_side=landmark_side,
            generation=generation,
            tokens=tuple(tokens),
            injected=tuple(injected),
        )
