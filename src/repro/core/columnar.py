"""Columnar perturbation batches: masks → values as arrays, not objects.

The hot path of every perturbation explainer used to be a Python loop:
each of the ~256 mask rows became a rebuilt :class:`~repro.data.records.
RecordPair` (detokenize, conform, frozen-mapping validation) before the
matcher saw it.  A :class:`ColumnarPairBatch` replaces that loop with a
columnar representation: for every *(side, attribute)* cell it stores the
small list of **candidate values** the perturbation can produce plus one
integer index per mask row.  Applying a mask matrix then costs one
vectorized unique per attribute instead of ``n_samples`` object rebuilds,
and feature extraction downstream runs once per *distinct* (left, right)
value combination and gathers.

Bit-identity contract
---------------------
A columnar batch is a pure re-encoding: row *i*'s values are exactly the
strings the per-pair path would have rebuilt (same token order, same
``" ".join``, same empty-attribute conform), so content fingerprints,
cache keys and — for row-independent matchers — probabilities are
bit-identical whichever representation carries them.

Builders cover the three perturbation families:

* :func:`landmark_batch` — Landmark Explanation masks over the varying
  entity's tokens (landmark side constant);
* :func:`mojito_drop_batch` — token drops over both sides at once;
* :func:`mojito_attr_drop_batch` / :func:`mojito_copy_batch` — Mojito's
  attribute-granular empty / copy substitutions (two candidates per cell).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.data.records import RecordPair

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.generation import GeneratedInstance
    from repro.text.tokenize import PrefixedToken

_SIDES = ("left", "right")

#: Submasks wider than this are uniqued row-wise (``np.unique(axis=0)``)
#: instead of through packed 64-bit codes.
_PACK_LIMIT = 62


@dataclass
class ValueColumn:
    """One *(side, attribute)* cell of a batch: candidate values + rows.

    ``values[index[i]]`` is the cell's value in mask row *i*.  Constant
    cells hold a single candidate and an all-zero index.
    """

    values: list[str]
    index: np.ndarray

    @classmethod
    def constant(cls, value: str, n_rows: int) -> "ValueColumn":
        return cls([value], np.zeros(n_rows, dtype=np.intp))

    @property
    def is_constant(self) -> bool:
        return len(self.values) == 1

    def take(self, rows: np.ndarray) -> "ValueColumn":
        return ValueColumn(self.values, self.index[rows])

    def row_values(self) -> np.ndarray:
        """Per-row values as an object array (for fingerprinting)."""
        return np.asarray(self.values, dtype=object)[self.index]


class ColumnarPairBatch:
    """A batch of perturbed record pairs in columnar form.

    *template* is the unperturbed pair every row derives from; *columns*
    maps every ``(side, attribute)`` of the template's schema to a
    :class:`ValueColumn` whose index array has ``n_rows`` entries.
    """

    def __init__(
        self,
        template: RecordPair,
        columns: dict[tuple[str, str], ValueColumn],
        n_rows: int,
    ) -> None:
        self.template = template
        self.columns = columns
        self.n_rows = n_rows

    def __len__(self) -> int:
        return self.n_rows

    @property
    def schema(self):
        return self.template.schema

    # ------------------------------------------------------------------

    def side_columns(self, side: str) -> list[ValueColumn]:
        return [
            self.columns[(side, attribute)]
            for attribute in self.schema.attributes
        ]

    def value_rows(self, side: str) -> list[tuple[str, ...]]:
        """Per-row value tuples of one side, in schema attribute order.

        These are exactly the tuples
        :meth:`repro.core.reconstruction.PairReconstructor.varying_values`
        would produce row by row, so they slot straight into the engine's
        content fingerprints.
        """
        cols = self.side_columns(side)
        if all(col.is_constant for col in cols):
            constant = tuple(col.values[0] for col in cols)
            return [constant] * self.n_rows
        arrays = [col.row_values() for col in cols]
        return list(zip(*arrays))

    def take(self, rows: Sequence[int] | np.ndarray) -> "ColumnarPairBatch":
        """The sub-batch of the given row indices (values are shared)."""
        rows = np.asarray(rows, dtype=np.intp)
        return ColumnarPairBatch(
            self.template,
            {key: col.take(rows) for key, col in self.columns.items()},
            len(rows),
        )

    def slice_rows(self, start: int, stop: int) -> "ColumnarPairBatch":
        """The contiguous sub-batch ``[start:stop)`` (chunking helper)."""
        return ColumnarPairBatch(
            self.template,
            {
                key: ValueColumn(col.values, col.index[start:stop])
                for key, col in self.columns.items()
            },
            max(0, min(stop, self.n_rows) - start),
        )

    def pairs(self) -> list[RecordPair]:
        """Materialize one :class:`RecordPair` per row (fallback path).

        Used when the matcher cannot consume columnar batches; content is
        identical to the per-pair rebuild the batch replaced.
        """
        attributes = self.schema.attributes
        template = self.template
        template_left = tuple(template.left[a] for a in attributes)
        template_right = tuple(template.right[a] for a in attributes)
        left_rows = self.value_rows("left")
        right_rows = self.value_rows("right")
        out: list[RecordPair] = []
        for left, right in zip(left_rows, right_rows):
            pair = template
            if left != template_left:
                pair = pair.with_left(dict(zip(attributes, left)))
            if right != template_right:
                pair = pair.with_right(dict(zip(attributes, right)))
            out.append(pair)
        return out

    @staticmethod
    def concat(batches: Sequence["ColumnarPairBatch"]) -> "ColumnarPairBatch":
        """Stack same-schema batches row-wise (the batch scheduler's merge).

        Candidate value lists are concatenated with shifted indices; no
        cross-batch dedup is attempted — downstream feature extraction
        uniques per (left, right) combination anyway and the per-attribute
        memo cache absorbs repeats.
        """
        if not batches:
            raise ValueError("concat needs at least one batch")
        first = batches[0]
        if len(batches) == 1:
            return first
        attributes = first.schema.attributes
        for other in batches[1:]:
            if other.schema.attributes != attributes:
                raise ValueError(
                    "cannot concat columnar batches with different schemas"
                )
        n_rows = sum(batch.n_rows for batch in batches)
        columns: dict[tuple[str, str], ValueColumn] = {}
        for key in first.columns:
            values: list[str] = []
            chunks: list[np.ndarray] = []
            for batch in batches:
                col = batch.columns[key]
                if values:
                    chunks.append(col.index + len(values))
                else:
                    chunks.append(col.index)
                values.extend(col.values)
            columns[key] = ValueColumn(values, np.concatenate(chunks))
        return ColumnarPairBatch(first.template, columns, n_rows)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def _masked_value_column(
    words: list[str],
    positions: list[int],
    submask: np.ndarray,
) -> ValueColumn:
    """The column of one attribute under a (n_rows, k) keep-submask.

    Word order mirrors the tokenizer's ``detokenize``: a stable sort by
    token position, then a ``" ".join`` of the kept words.  Unique
    submask rows are found once; every mask row indexes its unique.
    """
    n_rows, k = submask.shape
    if k == 0:
        return ValueColumn.constant("", n_rows)
    order = sorted(range(k), key=lambda j: positions[j])
    ordered_words = [words[j] for j in order]
    sub = submask[:, order] != 0
    if k <= _PACK_LIMIT:
        weights = np.uint64(1) << np.arange(k, dtype=np.uint64)
        codes = sub.astype(np.uint64) @ weights
        _, first, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
    else:
        _, first, inverse = np.unique(
            sub, axis=0, return_index=True, return_inverse=True
        )
    values = [
        " ".join(
            word for word, bit in zip(ordered_words, sub[row_index]) if bit
        )
        for row_index in first
    ]
    return ValueColumn(values, inverse.astype(np.intp, copy=False))


def landmark_batch(
    instance: "GeneratedInstance", masks: np.ndarray
) -> ColumnarPairBatch:
    """Columnar form of Landmark masks over one generated instance.

    Row *i* is the pair :meth:`~repro.core.reconstruction.PairReconstructor.
    rebuild` would produce for ``masks[i]``: the varying side rebuilt from
    its kept tokens, the landmark side untouched.
    """
    masks = np.asarray(masks)
    if masks.ndim != 2 or masks.shape[1] != len(instance.tokens):
        raise ValueError(
            f"mask width {masks.shape[1] if masks.ndim == 2 else masks.shape}"
            f" != token count {len(instance.tokens)}"
        )
    n_rows = masks.shape[0]
    schema = instance.pair.schema
    varying_side = instance.varying_side
    landmark_side = "right" if varying_side == "left" else "left"
    landmark_entity = instance.landmark_entity

    by_attribute: dict[str, list[int]] = {a: [] for a in schema.attributes}
    for column, token in enumerate(instance.tokens):
        by_attribute[token.attribute].append(column)

    columns: dict[tuple[str, str], ValueColumn] = {}
    for attribute in schema.attributes:
        token_columns = by_attribute[attribute]
        words = [instance.tokens[c].word for c in token_columns]
        positions = [instance.tokens[c].position for c in token_columns]
        columns[(varying_side, attribute)] = _masked_value_column(
            words, positions, masks[:, token_columns]
        )
        columns[(landmark_side, attribute)] = ValueColumn.constant(
            landmark_entity[attribute], n_rows
        )
    return ColumnarPairBatch(instance.pair, columns, n_rows)


def mojito_drop_batch(
    pair: RecordPair,
    tokens: "list[tuple[str, PrefixedToken]]",
    masks: np.ndarray,
) -> ColumnarPairBatch:
    """Columnar form of Mojito Drop masks (tokens of both sides at once).

    Both sides are rebuilt from their kept tokens — attributes that
    tokenize to nothing become empty on every row, exactly as the
    per-pair rebuild conformed them.
    """
    masks = np.asarray(masks)
    if masks.ndim != 2 or masks.shape[1] != len(tokens):
        raise ValueError(
            f"mask width {masks.shape[1] if masks.ndim == 2 else masks.shape}"
            f" != token count {len(tokens)}"
        )
    n_rows = masks.shape[0]
    schema = pair.schema
    by_cell: dict[tuple[str, str], list[int]] = {
        (side, attribute): []
        for side in _SIDES
        for attribute in schema.attributes
    }
    for column, (side, token) in enumerate(tokens):
        by_cell[(side, token.attribute)].append(column)

    columns: dict[tuple[str, str], ValueColumn] = {}
    for key, token_columns in by_cell.items():
        side = key[0]
        words = [tokens[c][1].word for c in token_columns]
        positions = [tokens[c][1].position for c in token_columns]
        columns[key] = _masked_value_column(
            words, positions, masks[:, token_columns]
        )
    return ColumnarPairBatch(pair, columns, n_rows)


def mojito_attr_drop_batch(
    pair: RecordPair,
    cells: list[tuple[str, str]],
    masks: np.ndarray,
) -> ColumnarPairBatch:
    """Columnar form of Mojito attribute-drop masks.

    Cell *j* off empties that *(side, attribute)*; untouched cells keep
    the original value on every row.
    """
    masks = np.asarray(masks)
    if masks.ndim != 2 or masks.shape[1] != len(cells):
        raise ValueError(
            f"mask width {masks.shape[1] if masks.ndim == 2 else masks.shape}"
            f" != cell count {len(cells)}"
        )
    n_rows = masks.shape[0]
    schema = pair.schema
    columns: dict[tuple[str, str], ValueColumn] = {
        (side, attribute): ValueColumn.constant(
            pair.entity(side)[attribute], n_rows
        )
        for side in _SIDES
        for attribute in schema.attributes
    }
    for feature, (side, attribute) in enumerate(cells):
        original = pair.entity(side)[attribute]
        columns[(side, attribute)] = ValueColumn(
            [original, ""],
            np.where(masks[:, feature] != 0, 0, 1).astype(np.intp),
        )
    return ColumnarPairBatch(pair, columns, n_rows)


def mojito_copy_batch(
    pair: RecordPair,
    copy_from: str,
    masks: np.ndarray,
) -> ColumnarPairBatch:
    """Columnar form of Mojito Copy masks.

    Feature *j* off copies the source side's attribute *j* over the
    target side's value; the source side never changes.
    """
    masks = np.asarray(masks)
    attributes = pair.schema.attributes
    if masks.ndim != 2 or masks.shape[1] != len(attributes):
        raise ValueError(
            f"mask width {masks.shape[1] if masks.ndim == 2 else masks.shape}"
            f" != attribute count {len(attributes)}"
        )
    n_rows = masks.shape[0]
    copy_to = "right" if copy_from == "left" else "left"
    source = pair.entity(copy_from)
    target = pair.entity(copy_to)
    columns: dict[tuple[str, str], ValueColumn] = {}
    for feature, attribute in enumerate(attributes):
        columns[(copy_from, attribute)] = ValueColumn.constant(
            source[attribute], n_rows
        )
        columns[(copy_to, attribute)] = ValueColumn(
            [target[attribute], source[attribute]],
            np.where(masks[:, feature] != 0, 0, 1).astype(np.intp),
        )
    return ColumnarPairBatch(pair, columns, n_rows)
