"""The public entry point: :class:`LandmarkExplainer`.

Wraps a black-box matcher and a generic perturbation explainer into the
paper's pipeline.  One call to :meth:`LandmarkExplainer.explain` produces a
:class:`~repro.core.explanation.DualExplanation` — the record explained
twice, once per landmark side.

Generation-mode policy
----------------------
``generation="auto"`` follows the paper's lessons learned: single-entity
generation when the model predicts *match*, double-entity generation
(landmark-token injection) when it predicts *non-match*.  ``"single"`` and
``"double"`` force a mode, which is what the evaluation harness does to
fill the Single / Double columns of Tables 2-4.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import PredictionEngine
from repro.core.explanation import DualExplanation, LandmarkExplanation
from repro.core.generation import (
    GENERATION_DOUBLE,
    GENERATION_SINGLE,
    LandmarkGenerator,
)
from repro.core.reconstruction import DatasetReconstructor, PairReconstructor
from repro.data.records import RecordPair
from repro.exceptions import ConfigurationError, ExplanationError
from repro.explainers.lime_text import LimeConfig, LimeTextExplainer
from repro.matchers.base import DEFAULT_THRESHOLD, EntityMatcher
from repro.obs.tracing import trace
from repro.text.tokenize import Tokenizer

GENERATION_AUTO = "auto"


class LandmarkExplainer:
    """Explains EM model predictions with per-landmark perturbations."""

    def __init__(
        self,
        matcher: EntityMatcher,
        lime_config: LimeConfig | None = None,
        tokenizer: Tokenizer | None = None,
        injection_fraction: float = 1.0,
        threshold: float = DEFAULT_THRESHOLD,
        seed: int = 0,
        explainer: object | None = None,
        engine: PredictionEngine | None = None,
    ) -> None:
        """Wrap *matcher* with the landmark pipeline.

        *explainer* is any object with the generic
        ``explain(feature_names, predict_masks, rng) -> Explanation``
        interface (e.g. :class:`repro.explainers.KernelShapExplainer`);
        when omitted, a LIME explainer configured by *lime_config* is used
        — the paper's coupling.

        *engine* is the batched prediction engine the pipeline sends its
        model calls through.  When omitted a default engine (dedup + LRU
        cache, serial execution) is created; pass an explicit
        :class:`~repro.core.engine.PredictionEngine` to share one cache
        across explainers, or one configured with
        :data:`~repro.core.engine.ENGINE_OFF` to predict every mask
        directly.  Engine settings never change the produced weights.
        """
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError(f"threshold must be in (0, 1), got {threshold}")
        if explainer is not None and lime_config is not None:
            raise ConfigurationError(
                "pass either lime_config (for the default LIME explainer) "
                "or an explicit explainer, not both"
            )
        self.matcher = matcher
        self.tokenizer = tokenizer or Tokenizer()
        self.generator = LandmarkGenerator(
            tokenizer=self.tokenizer, injection_fraction=injection_fraction
        )
        self.reconstructor = PairReconstructor(tokenizer=self.tokenizer)
        self.engine = engine if engine is not None else PredictionEngine(
            matcher, tokenizer=self.tokenizer
        )
        self.dataset_reconstructor = DatasetReconstructor(
            matcher, self.reconstructor, engine=self.engine
        )
        self.explainer = explainer if explainer is not None else LimeTextExplainer(
            lime_config
        )
        self.threshold = threshold
        self.seed = seed

    # ------------------------------------------------------------------

    def resolve_generation(self, pair: RecordPair, generation: str) -> str:
        """Map ``"auto"`` to single/double from the model's own prediction."""
        if generation in (GENERATION_SINGLE, GENERATION_DOUBLE):
            return generation
        if generation != GENERATION_AUTO:
            raise ConfigurationError(
                "generation must be 'single', 'double' or 'auto', got "
                f"{generation!r}"
            )
        probability = self.engine.predict_one(pair)
        if probability >= self.threshold:
            return GENERATION_SINGLE
        return GENERATION_DOUBLE

    def _rng_for(self, pair: RecordPair, landmark_side: str) -> np.random.Generator:
        """A deterministic per-(pair, side) random stream.

        The per-pair root sequence is *spawned* into two independent child
        streams, one per landmark side.  Spawning (rather than offsetting a
        shared integer seed) guarantees the left and right perturbation
        draws are statistically uncorrelated while staying reproducible for
        a fixed ``seed`` — reusing one stream for both sides would couple
        the two halves of a :class:`DualExplanation`.
        """
        root = np.random.SeedSequence(
            [self.seed & 0xFFFFFFFF, pair.pair_id & 0xFFFFFFFF]
        )
        left_sequence, right_sequence = root.spawn(2)
        chosen = left_sequence if landmark_side == "left" else right_sequence
        return np.random.default_rng(chosen)

    # ------------------------------------------------------------------

    def explain_landmark(
        self,
        pair: RecordPair,
        landmark_side: str,
        generation: str = GENERATION_AUTO,
    ) -> LandmarkExplanation:
        """Explain *pair* from the perspective of one landmark side."""
        resolved = self.resolve_generation(pair, generation)
        try:
            with trace.span(
                "landmark", side=landmark_side, pair_id=pair.pair_id,
                generation=resolved,
            ):
                with trace.span("generation", side=landmark_side):
                    instance = self.generator.generate(
                        pair, landmark_side, resolved
                    )
                if not instance.tokens:
                    raise ExplanationError(
                        f"the {instance.varying_side} entity of pair "
                        f"#{pair.pair_id} has no tokens to perturb"
                    )
                explanation = self.explainer.explain(
                    instance.feature_names,
                    self.dataset_reconstructor.predict_masks_fn(instance),
                    rng=self._rng_for(pair, landmark_side),
                )
        except Exception as error:
            # Tag the failure with the landmark side for the failure
            # ledger; the exception itself propagates unchanged.
            try:
                if not hasattr(error, "landmark_side"):
                    error.landmark_side = landmark_side
            except AttributeError:  # pragma: no cover - exotic __slots__
                pass
            raise
        return LandmarkExplanation(instance=instance, explanation=explanation)

    def explain(
        self,
        pair: RecordPair,
        generation: str = GENERATION_AUTO,
    ) -> DualExplanation:
        """The paper's dual explanation: both landmark sides."""
        resolved = self.resolve_generation(pair, generation)
        with trace.span("explain", pair_id=pair.pair_id, generation=resolved):
            return DualExplanation(
                pair=pair,
                left_landmark=self.explain_landmark(pair, "left", resolved),
                right_landmark=self.explain_landmark(pair, "right", resolved),
            )
