"""The matcher guard: fault tolerance around black-box matcher calls.

The evaluation grid spends hundreds of thousands of matcher calls per run,
and the matcher is a black box — increasingly a remote, slow, flaky one.
A single hung or crashing call must not lose the run.  :class:`MatcherGuard`
wraps one ``predict_proba``-shaped callable with three mechanisms:

* **per-call timeout** — the call runs on a daemon thread and
  :class:`~repro.exceptions.MatcherTimeoutError` is raised when it does not
  return in time (the stuck thread is abandoned; it cannot block exit);
* **bounded retry** — up to ``max_retries`` re-invocations with exponential
  backoff and *deterministic* jitter (a dedicated seeded
  :class:`random.Random`, so retrying never touches the numpy streams the
  explanations draw from);
* **circuit breaker** — after ``trip_after`` consecutive failures the guard
  opens and the next ``cooldown`` calls fail fast with
  :class:`~repro.exceptions.MatcherUnavailableError` instead of hammering a
  dead matcher; the call after that is a half-open probe whose success
  closes the circuit again.  The cooldown is counted in *calls*, not wall
  time, so breaker behaviour is reproducible in tests.

With the default configuration (no retries, no timeout) the guard is fully
transparent: the callable is invoked directly, exceptions propagate
unchanged, and no RNG state of any kind is consumed — zero-fault runs stay
bit-identical to unguarded ones.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.core.deadline import active_scope, checkpoint
from repro.exceptions import (
    ConfigurationError,
    MatcherTimeoutError,
    MatcherUnavailableError,
)
from repro.obs.tracing import trace

#: Counter attribute names a guard increments on its stats object.  The
#: stats object is duck-typed: each attribute may be a plain integer
#: (:class:`GuardStats`) or a :class:`repro.obs.metrics.Counter`
#: instrument (the engine's registry-backed bundle), so guard counters
#: land either in a standalone dataclass or in the same metrics registry
#: as the engine accounting.
GUARD_COUNTER_FIELDS = (
    "guard_retries",
    "guard_timeouts",
    "guard_failures",
    "guard_trips",
    "guard_fast_failures",
    "guard_recoveries",
)

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half_open"


@dataclass
class GuardStats:
    """Standalone counter set for a guard used outside an engine."""

    #: Re-invocations after a failed attempt.
    guard_retries: int = 0
    #: Attempts abandoned because they exceeded ``call_timeout``.
    guard_timeouts: int = 0
    #: Failed attempts of any kind (timeouts included).
    guard_failures: int = 0
    #: Times the circuit breaker tripped open.
    guard_trips: int = 0
    #: Calls rejected while the circuit was open.
    guard_fast_failures: int = 0
    #: Successful half-open probes that closed the circuit again.
    guard_recoveries: int = 0


@dataclass(frozen=True)
class GuardConfig:
    """Knobs of the matcher guard.

    The guard is *inactive* — a plain pass-through — unless ``max_retries``
    is positive or ``call_timeout`` is set.
    """

    #: Re-invocations allowed after a failed attempt (0 = fail on first).
    max_retries: int = 0
    #: Seconds one matcher call may take; ``None`` disables the timeout.
    call_timeout: float | None = None
    #: Consecutive failed attempts that trip the circuit open.
    trip_after: int = 5
    #: Guarded calls rejected fast while open, before a half-open probe.
    cooldown: int = 8
    #: Base backoff delay in seconds; attempt *k* waits up to
    #: ``backoff * 2**k`` (jittered, capped at ``backoff_max``).
    backoff: float = 0.05
    #: Upper bound on a single backoff sleep.
    backoff_max: float = 2.0
    #: Seed of the jitter stream (independent of every science RNG).
    seed: int = 0
    #: Engage the breaker/accounting even with no retries and no timeout.
    #: The remote backend client sets this: a transport can fail on its
    #: own (connection refused, peer gone), so the breaker must observe
    #: failures even when the caller asked for zero retries — unlike the
    #: in-process case, where an inactive guard is a pure pass-through.
    always_active: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise ConfigurationError(
                f"call_timeout must be > 0, got {self.call_timeout}"
            )
        if self.trip_after < 1:
            raise ConfigurationError(
                f"trip_after must be >= 1, got {self.trip_after}"
            )
        if self.cooldown < 0:
            raise ConfigurationError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.backoff < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")

    @property
    def active(self) -> bool:
        """Whether any guarding (vs plain pass-through) is requested."""
        return (
            self.always_active
            or self.max_retries > 0
            or self.call_timeout is not None
        )


class MatcherGuard:
    """Retry / timeout / circuit-breaker wrapper around one callable.

    *predict_fn* is any ``pairs -> probabilities`` callable (typically a
    bound ``EntityMatcher.predict_proba``).  *stats* is any object carrying
    the :data:`GUARD_COUNTER_FIELDS` attributes — a plain
    :class:`GuardStats`, or the engine's registry-backed instrument
    bundle whose attributes are :class:`repro.obs.metrics.Counter`\\ s.
    """

    def __init__(
        self,
        predict_fn,
        config: GuardConfig | None = None,
        stats=None,
    ) -> None:
        self.predict_fn = predict_fn
        self.config = config or GuardConfig()
        self.stats = stats if stats is not None else GuardStats()
        self._random = random.Random(self.config.seed)
        self._lock = threading.Lock()
        self._state = _CLOSED
        self._consecutive = 0
        self._cooldown_left = 0

    def _bump(self, field: str, amount: int = 1) -> None:
        """Increment a stats counter, plain attribute or instrument alike.

        Callers hold ``self._lock``; plain-integer stats rely on that,
        :class:`~repro.obs.metrics.Counter` instruments synchronize on
        their registry's own lock (acquired nested, never the reverse).
        """
        value = getattr(self.stats, field)
        inc = getattr(value, "inc", None)
        if inc is not None:
            inc(amount)
        else:
            setattr(self.stats, field, value + amount)

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Breaker state: ``closed``, ``open`` or ``half_open``."""
        return self._state

    def call(self, pairs):
        """Invoke the guarded callable on *pairs*, applying all policies.

        Polls the ambient request scope first: an expired deadline or a
        cancelled request fails here instead of spending a matcher call
        (and instead of burning retries on work nobody is waiting for).
        """
        return self.call_with(self.predict_fn, pairs, len(pairs))

    def call_with(self, predict_fn, payload, size: int):
        """Like :meth:`call`, but for an alternative matcher entry point.

        The prediction engine routes columnar batches through here with
        the matcher's ``predict_proba_columnar`` — same timeout, retry and
        circuit-breaker policies, same counters, same breaker state as the
        per-pair calls (a matcher that is down is down on every entry
        point).  *size* is the row count, used for trace spans and error
        messages.
        """
        checkpoint("matcher call")
        config = self.config
        if not config.active:
            with trace.span("guard_call", n_pairs=size, active=False):
                return predict_fn(payload)
        with trace.span("guard_call", n_pairs=size, active=True):
            return self._call_guarded(predict_fn, payload, size)

    def _call_guarded(self, predict_fn, payload, size: int):
        config = self.config
        self._gate()
        attempts = config.max_retries + 1
        for attempt in range(attempts):
            try:
                result = self._invoke(predict_fn, payload, size)
            except MatcherUnavailableError:
                raise
            except Exception as error:
                tripped = self._record_failure(error)
                if tripped:
                    raise MatcherUnavailableError(
                        f"matcher circuit opened after "
                        f"{config.trip_after} consecutive failures "
                        f"(last: {type(error).__name__}: {error})"
                    ) from error
                no_retry = getattr(error, "guard_no_retry", False)
                if attempt + 1 < attempts and not no_retry:
                    with self._lock:
                        self._bump("guard_retries")
                    self._sleep(attempt)
                    # A retry is new spend: don't re-attempt a call whose
                    # request already expired or lost all its waiters.
                    checkpoint("matcher retry")
                    continue
                try:
                    error.guard_attempts = attempts
                except AttributeError:  # pragma: no cover - exotic __slots__
                    pass
                raise
            else:
                self._record_success()
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------

    def _gate(self) -> None:
        """Breaker entry check: fail fast while open, admit the probe."""
        with self._lock:
            if self._state != _OPEN:
                return
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                self._bump("guard_fast_failures")
                raise MatcherUnavailableError(
                    f"matcher circuit is open; retrying after "
                    f"{self._cooldown_left + 1} more rejected calls"
                )
            self._state = _HALF_OPEN

    def _invoke(self, predict_fn, payload, size: int):
        timeout = self.config.call_timeout
        if timeout is None:
            return predict_fn(payload)
        box: dict[str, object] = {}
        done = threading.Event()

        def runner() -> None:
            try:
                box["value"] = predict_fn(payload)
            except BaseException as error:  # noqa: BLE001 - relayed below
                box["error"] = error
            finally:
                done.set()

        thread = threading.Thread(
            target=runner, daemon=True, name="matcher-guard-call"
        )
        thread.start()
        if not done.wait(timeout):
            raise MatcherTimeoutError(
                f"matcher call on {size} pairs exceeded "
                f"{timeout:.3g}s"
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["value"]

    def _record_failure(self, error: Exception) -> bool:
        """Count one failed attempt; return True when the breaker trips."""
        with self._lock:
            self._bump("guard_failures")
            if isinstance(error, MatcherTimeoutError):
                self._bump("guard_timeouts")
            self._consecutive += 1
            should_trip = (
                self._state == _HALF_OPEN
                or self._consecutive >= self.config.trip_after
            )
            if should_trip:
                self._state = _OPEN
                self._cooldown_left = self.config.cooldown
                self._consecutive = 0
                self._bump("guard_trips")
            return should_trip

    def _record_success(self) -> None:
        with self._lock:
            if self._state == _HALF_OPEN:
                self._bump("guard_recoveries")
            self._state = _CLOSED
            self._consecutive = 0

    #: Upper bound on one slice of a backoff sleep: the longest an
    #: expired deadline or a cancellation can go unnoticed mid-backoff.
    _SLEEP_SLICE = 0.05

    def _sleep(self, attempt: int) -> None:
        config = self.config
        delay = min(config.backoff_max, config.backoff * (2.0 ** attempt))
        # Deterministic jitter from the guard's own stream: never touches
        # numpy state, so retrying cannot perturb explanation draws.
        delay *= 0.5 + 0.5 * self._random.random()
        if delay <= 0:
            return
        # Backoff must not outlive the request: sleeping the full interval
        # when the ambient deadline expires sooner wastes the waiter's
        # tail latency, and the retry would be rejected anyway.  Cap the
        # sleep at the deadline's remaining budget and poll the scope in
        # slices so cancellation aborts the backoff within _SLEEP_SLICE.
        deadline, cancel = active_scope()
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining is not None:
                delay = min(delay, max(0.0, remaining))
        if deadline is None and cancel is None:
            if delay > 0:
                time.sleep(delay)
            return
        wake_at = time.monotonic() + delay
        while True:
            checkpoint("matcher retry backoff")
            left = wake_at - time.monotonic()
            if left <= 0:
                return
            time.sleep(min(self._SLEEP_SLICE, left))
