"""Landmark Explanation: explaining entity matching models with landmarks.

A from-scratch reproduction of *"Using Landmarks for Explaining Entity
Matching Models"* (Baraldi, Del Buono, Paganelli, Guerra — EDBT 2021).

Quickstart::

    from repro import (
        LandmarkExplainer, LogisticRegressionMatcher, load_dataset,
    )

    dataset = load_dataset("S-BR", size_cap=500)
    matcher = LogisticRegressionMatcher().fit(dataset)
    explainer = LandmarkExplainer(matcher)
    dual = explainer.explain(dataset[0])
    print(dual.render())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table.
"""

from repro.backends import (
    InProcessBackend,
    MatcherBackend,
    MatcherServer,
    RemoteBackend,
    as_backend,
)
from repro.baselines import MojitoCopyExplainer, MojitoDropExplainer
from repro.blocking import BlockingReport, InvertedIndexBlocker
from repro.config import (
    ALL_METHODS,
    BENCH,
    FAST,
    PAPER,
    ExperimentConfig,
    ServiceConfig,
    StoreConfig,
    get_preset,
)
from repro.core import (
    Counterfactual,
    DualExplanation,
    ENGINE_OFF,
    EngineConfig,
    EngineStats,
    PredictionEngine,
    GENERATION_AUTO,
    GENERATION_DOUBLE,
    GENERATION_SINGLE,
    GlobalSummary,
    LandmarkExplainer,
    LandmarkExplanation,
    PairTokenWeights,
    greedy_counterfactual,
    load_matcher,
    matcher_fingerprint,
    save_matcher,
    summarize_explanations,
)
from repro.data import EMDataset, PairSchema, RecordPair, read_csv, write_csv
from repro.data.splits import sample_per_label, train_test_split
from repro.data.synthetic import DATASET_CODES, load_benchmark, load_dataset, make_dirty
from repro.evaluation import ExperimentRunner, FailureLedger
from repro.exceptions import (
    CheckpointError,
    MatcherTimeoutError,
    MatcherUnavailableError,
    ReproError,
)
from repro.explainers import (
    AnchorExplanation,
    AnchorsTextExplainer,
    Explanation,
    KernelShapExplainer,
    LimeConfig,
    LimeTextExplainer,
    anchor_for_landmark,
)
from repro.matchers import (
    EmbeddingMatcher,
    EntityMatcher,
    GradientBoostedStumpsMatcher,
    LogisticRegressionMatcher,
    MLPMatcher,
    PlattCalibrator,
    RuleBasedMatcher,
    evaluate_matcher,
    tune_threshold,
)
from repro.service import (
    ExplainRequest,
    ExplanationService,
    ExplanationStore,
)
from repro.text import Tokenizer

__version__ = "1.0.0"

__all__ = [
    "ALL_METHODS",
    "AnchorExplanation",
    "AnchorsTextExplainer",
    "BENCH",
    "BlockingReport",
    "CheckpointError",
    "Counterfactual",
    "FailureLedger",
    "MatcherTimeoutError",
    "MatcherUnavailableError",
    "DATASET_CODES",
    "DualExplanation",
    "EMDataset",
    "EmbeddingMatcher",
    "EntityMatcher",
    "GradientBoostedStumpsMatcher",
    "ExperimentConfig",
    "ExperimentRunner",
    "ExplainRequest",
    "ExplanationService",
    "ExplanationStore",
    "Explanation",
    "FAST",
    "GENERATION_AUTO",
    "GENERATION_DOUBLE",
    "GENERATION_SINGLE",
    "GlobalSummary",
    "InProcessBackend",
    "InvertedIndexBlocker",
    "KernelShapExplainer",
    "MatcherBackend",
    "MatcherServer",
    "RemoteBackend",
    "ENGINE_OFF",
    "EngineConfig",
    "EngineStats",
    "PredictionEngine",
    "LandmarkExplainer",
    "LandmarkExplanation",
    "LimeConfig",
    "LimeTextExplainer",
    "LogisticRegressionMatcher",
    "MLPMatcher",
    "MojitoCopyExplainer",
    "MojitoDropExplainer",
    "PAPER",
    "PairSchema",
    "PlattCalibrator",
    "PairTokenWeights",
    "RecordPair",
    "ReproError",
    "RuleBasedMatcher",
    "ServiceConfig",
    "StoreConfig",
    "Tokenizer",
    "anchor_for_landmark",
    "as_backend",
    "evaluate_matcher",
    "get_preset",
    "greedy_counterfactual",
    "load_benchmark",
    "load_dataset",
    "load_matcher",
    "make_dirty",
    "matcher_fingerprint",
    "read_csv",
    "sample_per_label",
    "save_matcher",
    "summarize_explanations",
    "train_test_split",
    "tune_threshold",
    "write_csv",
    "__version__",
]
