"""The store-warming job: ``precompute`` as a thin bulk-shaped runner.

Warming is the degenerate bulk workload — enumerate pairs (the same
:func:`~repro.bulk.source.select_pairs` the full :class:`~repro.bulk.job.
BulkJob` uses, so the two paths can never drift apart), push each through
a live :class:`~repro.service.service.ExplanationService` so the result
lands in its store, and keep a per-key resume journal.  No aggregation:
the store *is* the output.

This module owns the journal format and report shape the serving layer
has always exposed; :mod:`repro.service.server` re-exports everything
here so existing imports keep working.  The dependency points this way —
server → bulk — never back.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path

from repro.bulk.source import select_pairs
from repro.data.records import EMDataset
from repro.evaluation.persistence import JournalWriter, read_journal
from repro.exceptions import CheckpointError
from repro.service.request import ExplainRequest
from repro.service.service import ExplanationService

logger = logging.getLogger("repro.service")

#: Journal file name used by :func:`precompute` inside a store directory.
PRECOMPUTE_JOURNAL = "precompute.jsonl"


@dataclass
class PrecomputeReport:
    """Outcome of one store-warming run."""

    n_pairs: int = 0
    n_submitted: int = 0
    n_skipped: int = 0
    n_failed: int = 0
    failed_pair_ids: list[int] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"precompute: {self.n_pairs} pairs, "
            f"{self.n_submitted} submitted, {self.n_skipped} skipped "
            f"(already warm), {self.n_failed} failed"
        )


def _journal_header(dataset: EMDataset, method: str, samples: int,
                    explainer: str, seed: int, per_label: int | None) -> dict:
    return {
        "event": "config",
        "dataset": dataset.name,
        "method": method,
        "samples": samples,
        "explainer": explainer,
        "seed": seed,
        "per_label": per_label,
    }


def precompute(
    service: ExplanationService,
    dataset: EMDataset,
    per_label: int | None = None,
    method: str = "both",
    samples: int = 128,
    explainer: str = "lime",
    seed: int = 0,
    resume: bool = False,
    journal_dir: str | Path | None = None,
) -> PrecomputeReport:
    """Warm the service's store for a dataset split, resumably.

    *per_label* samples that many records per label (the experiment
    protocol's split); ``None`` warms every record.  With *journal_dir*
    (typically the store directory) each completed key is journaled; a
    ``resume=True`` rerun skips journaled keys that are still servable
    from the store and recomputes the rest.  Failed records are isolated
    and reported, not fatal.
    """
    pairs = select_pairs(dataset, per_label, seed=seed)
    header = _journal_header(dataset, method, samples, explainer, seed, per_label)
    journal: JournalWriter | None = None
    done_keys: set[str] = set()
    if journal_dir is not None:
        path = Path(journal_dir) / PRECOMPUTE_JOURNAL
        if resume and path.exists():
            events = read_journal(path)
            if not events or events[0].get("event") != "config":
                raise CheckpointError(
                    f"precompute journal {path} does not start with a "
                    f"config event"
                )
            stored_header = {k: events[0].get(k) for k in header}
            if stored_header != header:
                raise CheckpointError(
                    f"precompute journal {path} was written for a different "
                    f"workload; refusing to resume (pass the same dataset, "
                    f"method, samples, explainer and seed)"
                )
            done_keys = {
                event["key"]
                for event in events[1:]
                if event.get("event") == "request" and "key" in event
            }
            journal = JournalWriter(path, fresh=False)
        else:
            journal = JournalWriter(path, fresh=True)
            journal.append(header)

    report = PrecomputeReport(n_pairs=len(pairs))
    pending: list[tuple[str, int, "object"]] = []
    for pair in pairs:
        request = ExplainRequest(
            pair=pair,
            method=method,
            samples=samples,
            explainer=explainer,
            seed=seed,
            # Warming yields to interactive traffic on the shared queue.
            priority=100,
        )
        key = service.key_for(request)
        if key in done_keys and service.store is not None and service.store.contains(key):
            report.n_skipped += 1
            continue
        future = service.submit(request, block=True)
        report.n_submitted += 1
        pending.append((key, pair.pair_id, future))
    for key, pair_id, future in pending:
        try:
            future.result()
        except Exception:  # noqa: BLE001 - warming isolates any failure
            report.n_failed += 1
            report.failed_pair_ids.append(pair_id)
            logger.warning("precompute: pair %s failed", pair_id)
            continue
        if journal is not None:
            journal.append({"event": "request", "key": key, "pair_id": pair_id})
    return report
