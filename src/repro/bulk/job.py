"""Dataset-scale bulk explanation jobs.

:class:`BulkJob` streams a pair source through the guarded
:class:`~repro.core.engine.PredictionEngine` in fixed-size chunks and
folds every explanation into a streaming
:class:`~repro.core.summarize.GlobalSummary` — per-attribute and
per-token importance across the whole dataset — without ever holding the
explanations themselves in memory.

The contract, in order of importance:

* **Determinism.**  A bulk-path explanation payload is bit-identical to
  the service path's (:func:`~repro.service.service.
  compute_explanation_payload` is the one definition both call), and the
  aggregation is a sequential fold in pair order, so the report is a pure
  function of (matcher fingerprint, source, spec).
* **Resume.**  With a *run_dir*, every completed chunk appends one event
  to ``bulk.jsonl`` (via the fsync'd
  :class:`~repro.evaluation.persistence.JournalWriter`) carrying the
  chunk's counters and the *cumulative* summary snapshot.  A killed run
  resumed with ``resume=True`` restores the snapshot — JSON floats
  round-trip exactly — and continues the same fold, so the final report
  is **byte-identical** to an uninterrupted run's.
* **Dedup.**  Each chunk probes the
  :class:`~repro.service.store.ExplanationStore` first
  (:meth:`~repro.service.store.ExplanationStore.get_many`, one
  transaction) and writes its fresh results back with
  :meth:`~repro.service.store.ExplanationStore.put_many` (one
  transaction) — explanations computed by an earlier job, a serving
  process or a previous attempt of this job are never recomputed.
* **Isolation.**  A pair that fails to explain becomes a
  :class:`~repro.evaluation.ledger.FailureEntry` and is excluded from
  the fold; the job keeps going.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.engine import EngineConfig, PredictionEngine
from repro.core.serialize import matcher_fingerprint
from repro.core.summarize import GlobalSummary
from repro.evaluation.ledger import KIND_SKIPPED, FailureEntry, FailureLedger
from repro.evaluation.persistence import JournalWriter, read_journal
from repro.exceptions import CheckpointError, ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressTracker
from repro.service.request import ExplainRequest, request_key
from repro.service.service import compute_explanation_payload
from repro.service.store import ExplanationStore

logger = logging.getLogger("repro.bulk")

#: Journal file name inside a bulk run directory.
BULK_JOURNAL = "bulk.jsonl"

#: Format version of the journal header and the report artifact.
BULK_FORMAT_VERSION = 1

#: Queue/engine priority bulk requests would carry on a shared service
#: (kept on the request for parity with the precompute path).
BULK_PRIORITY = 100


@dataclass(frozen=True)
class BulkJobSpec:
    """Everything result-affecting about a bulk job, minus the source.

    ``chunk_size`` shapes scheduling and journaling granularity but not
    results: the fold is sequential in pair order either way.  It still
    enters the journal identity — resuming with a different chunking
    would reorder the *partial* snapshots, and refusing is cheaper than
    reasoning about it.
    """

    method: str = "both"
    samples: int = 128
    explainer: str = "lime"
    seed: int = 0
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    def to_payload(self) -> dict:
        return {
            "method": self.method,
            "samples": self.samples,
            "explainer": self.explainer,
            "seed": self.seed,
            "chunk_size": self.chunk_size,
        }

    def request_for(self, pair) -> ExplainRequest:
        return ExplainRequest(
            pair=pair,
            method=self.method,
            samples=self.samples,
            explainer=self.explainer,
            seed=self.seed,
            priority=BULK_PRIORITY,
        )


@dataclass
class BulkReport:
    """Outcome of one bulk run: counters + the streaming aggregation."""

    n_pairs: int = 0
    n_chunks: int = 0
    #: Pairs explained fresh this run (unique computations).
    n_computed: int = 0
    #: Pairs answered without a fresh computation: found in the store
    #: (cross-job dedup) or duplicated within their own chunk.
    n_dedup_hits: int = 0
    n_failed: int = 0
    failed_pair_ids: list[int] = field(default_factory=list)
    #: Chunks restored from the journal instead of re-run.
    resumed_chunks: int = 0
    elapsed_seconds: float = 0.0
    summary: GlobalSummary = field(default_factory=GlobalSummary)
    ledger: FailureLedger = field(default_factory=FailureLedger)

    @property
    def dedup_rate(self) -> float:
        """Fraction of processed pairs served without recomputation."""
        processed = self.n_computed + self.n_dedup_hits
        return self.n_dedup_hits / processed if processed else 0.0

    def report_payload(self, spec: BulkJobSpec, source_description: dict,
                       fingerprint: str) -> dict:
        """The deterministic report artifact.

        Everything here is a pure function of (matcher, source, spec):
        a killed-and-resumed run produces the same bytes as an
        uninterrupted one.  Run-shaped counters (dedup hits, resumed
        chunks, wall time) deliberately live in :meth:`stats_payload`
        instead — they honestly differ between the two histories.
        """
        return {
            "format_version": BULK_FORMAT_VERSION,
            "job": spec.to_payload(),
            "source": source_description,
            "matcher_fingerprint": fingerprint,
            "n_pairs": self.n_pairs,
            "n_failed": self.n_failed,
            "failed_pair_ids": sorted(self.failed_pair_ids),
            "summary": self.summary.to_payload(),
        }

    def stats_payload(self) -> dict:
        """Run accounting (non-deterministic across resume histories)."""
        return {
            "n_pairs": self.n_pairs,
            "n_chunks": self.n_chunks,
            "n_computed": self.n_computed,
            "n_dedup_hits": self.n_dedup_hits,
            "n_failed": self.n_failed,
            "resumed_chunks": self.resumed_chunks,
            "dedup_rate": round(self.dedup_rate, 4),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }

    def render(self, top: int = 15) -> str:
        lines = [
            (
                f"bulk job: {self.n_pairs} pairs in {self.n_chunks} chunks "
                f"({self.n_computed} computed, {self.n_dedup_hits} dedup "
                f"hits, {self.n_failed} failed, {self.resumed_chunks} "
                f"chunks resumed) in {self.elapsed_seconds:.1f}s"
            ),
            self.summary.render(top),
        ]
        if len(self.ledger):
            lines.append(self.ledger.summary())
        return "\n".join(lines)


class _BulkInstruments:
    """The ``repro_bulk_*`` instruments one job records into."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        labels = {
            "component": "bulk",
            "instance": registry.next_instance("bulk"),
        }
        self.chunks = registry.counter(
            "repro_bulk_chunks_total", "Chunks completed (computed, not resumed)",
            **labels,
        )
        self.pairs = registry.counter(
            "repro_bulk_pairs_total", "Pairs processed by completed chunks",
            **labels,
        )
        self.computed = registry.counter(
            "repro_bulk_computed_total", "Pairs explained fresh", **labels
        )
        self.dedup_hits = registry.counter(
            "repro_bulk_dedup_hits_total",
            "Pairs answered from the store or an intra-chunk duplicate",
            **labels,
        )
        self.failures = registry.counter(
            "repro_bulk_failures_total", "Pairs that failed to explain",
            **labels,
        )
        self.resumed_chunks = registry.counter(
            "repro_bulk_resumed_chunks_total",
            "Chunks restored from the journal instead of re-run",
            **labels,
        )
        self.progress = registry.gauge(
            "repro_bulk_progress_pairs", "Pairs finished so far", **labels
        )
        self.total = registry.gauge(
            "repro_bulk_total_pairs", "Pairs the job will process", **labels
        )
        self.eta = registry.gauge(
            "repro_bulk_eta_seconds",
            "Estimated seconds to completion (-1 before the first sample)",
            **labels,
        )
        self.chunk_seconds = registry.histogram(
            "repro_bulk_chunk_seconds", "Wall time per computed chunk",
            **labels,
        )


class BulkJob:
    """One dataset-scale bulk explanation job.

    *on_chunk* is an optional ``(chunk_index, job) -> None`` callback
    fired after each chunk's journal event is durable — the kill-and-
    resume drill raises from it to simulate a crash at an exact chunk
    boundary.
    """

    def __init__(
        self,
        matcher,
        source,
        spec: BulkJobSpec | None = None,
        store: ExplanationStore | None = None,
        run_dir: str | Path | None = None,
        engine_config: EngineConfig | None = None,
        metrics: MetricsRegistry | None = None,
        on_chunk=None,
    ) -> None:
        self.matcher = matcher
        self.source = source
        self.spec = spec or BulkJobSpec()
        self.store = store
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.metrics = (
            metrics
            if metrics is not None
            else (store.metrics if store is not None else MetricsRegistry())
        )
        self.engine = PredictionEngine(
            matcher, engine_config, metrics=self.metrics
        )
        self.fingerprint = matcher_fingerprint(matcher)
        self.on_chunk = on_chunk
        self._instruments = _BulkInstruments(self.metrics)
        self.progress: ProgressTracker | None = None

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------

    def _journal_header(self) -> dict:
        return {
            "event": "config",
            "format_version": BULK_FORMAT_VERSION,
            "spec": self.spec.to_payload(),
            "source": self.source.describe(),
            "fingerprint": self.fingerprint,
        }

    def _load_resume_state(
        self, path: Path, report: BulkReport
    ) -> tuple[JournalWriter, int]:
        """Replay ``bulk.jsonl`` → (journal writer, chunks to skip)."""
        events = read_journal(path)
        header = self._journal_header()
        if not events or events[0].get("event") != "config":
            raise CheckpointError(
                f"bulk journal {path} does not start with a config event"
            )
        stored = {key: events[0].get(key) for key in header}
        if stored != header:
            raise CheckpointError(
                f"bulk journal {path} was written for a different job "
                f"(source, spec or matcher changed); refusing to resume"
            )
        next_index = 0
        last_summary: dict | None = None
        for event in events[1:]:
            if event.get("event") != "chunk":
                continue
            if event.get("index") != next_index:
                raise CheckpointError(
                    f"bulk journal {path} has chunk {event.get('index')!r} "
                    f"out of order (expected {next_index}); refusing to "
                    f"resume a corrupt journal"
                )
            report.n_computed += int(event.get("n_computed", 0))
            report.n_dedup_hits += int(event.get("n_dedup", 0))
            for entry in event.get("failures", ()):
                report.ledger.add(FailureEntry.from_dict(entry))
                report.n_failed += 1
                report.failed_pair_ids.append(int(entry.get("record_id", -1)))
            last_summary = event.get("summary")
            next_index += 1
        if last_summary is not None:
            report.summary = GlobalSummary.from_payload(last_summary)
        report.resumed_chunks = next_index
        return JournalWriter(path, fresh=False), next_index

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self, resume: bool = False) -> BulkReport:
        started = time.perf_counter()
        pairs = self.source.pairs()
        spec = self.spec
        chunks = [
            pairs[offset:offset + spec.chunk_size]
            for offset in range(0, len(pairs), spec.chunk_size)
        ]
        report = BulkReport(n_pairs=len(pairs), n_chunks=len(chunks))

        journal: JournalWriter | None = None
        skip = 0
        if self.run_dir is not None:
            path = self.run_dir / BULK_JOURNAL
            if resume and path.exists():
                journal, skip = self._load_resume_state(path, report)
            else:
                journal = JournalWriter(path, fresh=True)
                journal.append(self._journal_header())

        instruments = self._instruments
        self.progress = ProgressTracker(len(pairs))
        done_pairs = skip * spec.chunk_size if chunks else 0
        done_pairs = min(done_pairs, len(pairs))
        self.progress.done = done_pairs
        if skip:
            instruments.resumed_chunks.inc(skip)
            logger.info(
                "bulk: resuming at chunk %d/%d (%d pairs already folded)",
                skip, len(chunks), done_pairs,
            )
        self.metrics.bulk(
            (
                (instruments.total, float(len(pairs))),
                (instruments.progress, float(done_pairs)),
                (instruments.eta, -1.0),
            )
        )

        for index, chunk in enumerate(chunks):
            if index < skip:
                continue
            chunk_started = time.perf_counter()
            n_computed, n_dedup, failures = self._run_chunk(chunk, report)
            chunk_elapsed = time.perf_counter() - chunk_started
            if journal is not None:
                journal.append(
                    {
                        "event": "chunk",
                        "index": index,
                        "n_pairs": len(chunk),
                        "n_computed": n_computed,
                        "n_dedup": n_dedup,
                        "failures": [entry.to_dict() for entry in failures],
                        "summary": report.summary.to_payload(),
                    }
                )
            self.progress.advance(len(chunk))
            eta = self.progress.eta_seconds()
            self.metrics.bulk(
                (
                    (instruments.chunks, 1.0),
                    (instruments.pairs, float(len(chunk))),
                    (instruments.computed, float(n_computed)),
                    (instruments.dedup_hits, float(n_dedup)),
                    (instruments.failures, float(len(failures))),
                    (instruments.chunk_seconds, chunk_elapsed),
                    (instruments.progress, float(self.progress.done)),
                    (instruments.eta, -1.0 if eta is None else eta),
                )
            )
            logger.info(
                "bulk: chunk %d/%d done in %.2fs (%s)",
                index + 1, len(chunks), chunk_elapsed, self.progress.render(),
            )
            if self.on_chunk is not None:
                self.on_chunk(index, self)

        report.elapsed_seconds = time.perf_counter() - started
        return report

    def _run_chunk(
        self, chunk, report: BulkReport
    ) -> tuple[int, int, list[FailureEntry]]:
        """Process one chunk; returns (computed, dedup hits, failures).

        The store probe and write-back each take one transaction; the
        fold happens strictly in pair order, so the summary arithmetic is
        independent of where each payload came from (a stored payload is
        a JSON round-trip of the computed one — floats survive exactly).
        """
        spec = self.spec
        requests = [spec.request_for(pair) for pair in chunk]
        keys = [request_key(self.fingerprint, request) for request in requests]
        found: dict[str, dict] = {}
        if self.store is not None:
            found = self.store.get_many(list(dict.fromkeys(keys)))
        n_dedup = 0
        fresh: dict[str, dict] = {}
        failed_keys: dict[str, FailureEntry] = {}
        failures: list[FailureEntry] = []
        for pair, request, key in zip(chunk, requests, keys):
            if key in found or key in fresh:
                n_dedup += 1
                continue
            if key in failed_keys:
                failures.append(failed_keys[key])
                continue
            try:
                fresh[key] = compute_explanation_payload(
                    self.matcher, self.engine, self.fingerprint, key, request
                )
            except Exception as error:  # noqa: BLE001 - per-pair isolation
                entry = FailureEntry.from_exception(
                    dataset=self.source.describe().get("dataset", ""),
                    label=pair.label,
                    method=spec.method,
                    record_id=pair.pair_id,
                    error=error,
                    kind=KIND_SKIPPED,
                )
                failed_keys[key] = entry
                failures.append(entry)
                logger.warning(
                    "bulk: pair %s failed: %s", pair.pair_id, error
                )
        if self.store is not None and fresh:
            self.store.put_many(list(fresh.items()))
        # Fold in pair order — the order, not the payload's origin,
        # defines the arithmetic.
        for key in keys:
            payload = fresh.get(key)
            if payload is None:
                payload = found.get(key)
            if payload is None:
                continue  # failed pair: ledgered, not folded
            report.summary.add_result_payload(payload)
        for entry in failures:
            report.ledger.add(entry)
            report.failed_pair_ids.append(entry.record_id)
        report.n_computed += len(fresh)
        report.n_dedup_hits += n_dedup
        report.n_failed += len(failures)
        return len(fresh), n_dedup, failures
