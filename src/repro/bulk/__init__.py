"""``repro.bulk`` — dataset-scale bulk explanation jobs.

The serving stack (:mod:`repro.service`) answers one explanation at a
time; this package answers *"explain the whole dataset"*:

* :mod:`repro.bulk.source` — deterministic pair streams: dataset rows
  (:class:`DatasetSource`), blocker candidates (:class:`BlockedSource`),
  or an explicit pair-list file (:class:`PairListSource`), all sharing
  :func:`select_pairs` with the ``precompute`` warmer;
* :mod:`repro.bulk.job` — the chunked :class:`BulkJob` runner: store
  dedup per chunk, streaming :class:`~repro.core.summarize.GlobalSummary`
  aggregation, journaled resume that reproduces an uninterrupted run
  byte-for-byte, and ``repro_bulk_*`` progress metrics;
* :mod:`repro.bulk.warm` — the store-only warming job behind the
  ``precompute`` CLI command.
"""

from repro.bulk.job import (
    BULK_FORMAT_VERSION,
    BULK_JOURNAL,
    BULK_PRIORITY,
    BulkJob,
    BulkJobSpec,
    BulkReport,
)
from repro.bulk.source import (
    BlockedSource,
    DatasetSource,
    PairListSource,
    select_pairs,
)
from repro.bulk.warm import PRECOMPUTE_JOURNAL, PrecomputeReport, precompute

__all__ = [
    "BULK_FORMAT_VERSION",
    "BULK_JOURNAL",
    "BULK_PRIORITY",
    "BlockedSource",
    "BulkJob",
    "BulkJobSpec",
    "BulkReport",
    "DatasetSource",
    "PRECOMPUTE_JOURNAL",
    "PairListSource",
    "PrecomputeReport",
    "precompute",
    "select_pairs",
]
