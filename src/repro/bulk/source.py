"""Pair sources: what a bulk job iterates over.

A :class:`PairSource` names a finite, *deterministically ordered* stream
of :class:`~repro.data.records.RecordPair` rows plus a ``describe()``
payload that identifies the stream for the resume journal — two runs may
only resume into each other when their sources describe identically.

Three shapes cover the workloads LEMON / xEM frame:

* :class:`DatasetSource` — the labelled rows of an EM dataset (optionally
  the experiment protocol's per-label sample).  This is also what the
  ``precompute`` store-warmer enumerates: both paths go through
  :func:`select_pairs`, so they cannot drift.
* :class:`BlockedSource` — candidate generation: the dataset's left and
  right entities are re-blocked with the
  :class:`~repro.blocking.index.InvertedIndexBlocker` and every surviving
  candidate pair is explained, labelled or not.  This is the Customer-360
  shape — explain what the blocker surfaces, not just the gold pairs.
* :class:`PairListSource` — an explicit pair-list file, one pair per
  line: either a dataset row index (``17``) or a cross pair of row
  entities (``3,42`` = left entity of row 3 against right entity of row
  42).  Blank lines and ``#`` comments are skipped; malformed lines
  raise :class:`~repro.exceptions.DatasetError`.
"""

from __future__ import annotations

from pathlib import Path

from repro.blocking.index import InvertedIndexBlocker
from repro.data.records import EMDataset, RecordPair
from repro.data.splits import sample_per_label
from repro.exceptions import DatasetError


def select_pairs(
    dataset: EMDataset, per_label: int | None = None, seed: int = 0
) -> list[RecordPair]:
    """The pair enumeration shared by ``precompute`` and the bulk runner.

    ``per_label=None`` selects every row in dataset order;  otherwise the
    paper's per-label sample (seeded, deterministic).  One definition for
    both paths — a warming run and a bulk job over the same arguments
    always name the same pairs.
    """
    if per_label is not None:
        return list(sample_per_label(dataset, per_label, seed=seed).pairs)
    return list(dataset.pairs)


def _cross_pair(
    dataset: EMDataset, left_row: int, right_row: int
) -> RecordPair:
    """Left entity of *left_row* against right entity of *right_row*.

    The synthetic ``pair_id`` encodes the (left, right) coordinates so it
    is stable across runs — it seeds the per-pair perturbation streams
    and enters the request key, so stability here is what makes cross
    pairs dedup across jobs.
    """
    n = len(dataset)
    for name, row in (("left", left_row), ("right", right_row)):
        if not 0 <= row < n:
            raise DatasetError(
                f"{name} row index {row} out of range 0..{n - 1}"
            )
    return RecordPair(
        schema=dataset.schema,
        left=dict(dataset.pairs[left_row].left),
        right=dict(dataset.pairs[right_row].right),
        label=0,
        pair_id=left_row * n + right_row,
    )


class DatasetSource:
    """The rows of *dataset*, optionally per-label sampled."""

    kind = "rows"

    def __init__(
        self,
        dataset: EMDataset,
        per_label: int | None = None,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.per_label = per_label
        self.seed = seed

    def pairs(self) -> list[RecordPair]:
        return select_pairs(self.dataset, self.per_label, seed=self.seed)

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "dataset": self.dataset.name,
            "n_rows": len(self.dataset),
            "per_label": self.per_label,
            "seed": self.seed,
        }


class BlockedSource:
    """Candidate pairs from re-blocking the dataset's two entity tables.

    Every dataset row contributes its left entity to the left table and
    its right entity to the right table; the inverted-index blocker then
    proposes (left row, right row) candidates, each materialized as an
    unlabelled cross pair.  The candidate list is sorted, so the stream
    order — and therefore the resume journal — is deterministic.
    """

    kind = "block"

    def __init__(
        self,
        dataset: EMDataset,
        attributes: tuple[str, ...] | None = None,
        min_shared_tokens: int = 1,
        max_token_frequency: float = 0.25,
    ) -> None:
        self.dataset = dataset
        self.blocker = InvertedIndexBlocker(
            attributes=attributes,
            min_shared_tokens=min_shared_tokens,
            max_token_frequency=max_token_frequency,
        )

    def pairs(self) -> list[RecordPair]:
        left_table = [dict(pair.left) for pair in self.dataset.pairs]
        right_table = [dict(pair.right) for pair in self.dataset.pairs]
        candidates = self.blocker.candidates(left_table, right_table)
        return [
            _cross_pair(self.dataset, left_row, right_row)
            for left_row, right_row in candidates
        ]

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "dataset": self.dataset.name,
            "n_rows": len(self.dataset),
            "attributes": (
                list(self.blocker.attributes)
                if self.blocker.attributes
                else None
            ),
            "min_shared_tokens": self.blocker.min_shared_tokens,
            "max_token_frequency": self.blocker.max_token_frequency,
        }


class PairListSource:
    """Pairs named explicitly in a text file, one per line.

    ``17`` selects dataset row 17; ``3,42`` builds the cross pair of row
    3's left entity and row 42's right entity.
    """

    kind = "pair-list"

    def __init__(self, dataset: EMDataset, path: str | Path) -> None:
        self.dataset = dataset
        self.path = Path(path)

    def _parse_line(self, number: int, line: str) -> RecordPair:
        try:
            if "," in line:
                left_text, right_text = line.split(",", 1)
                return _cross_pair(
                    self.dataset, int(left_text.strip()), int(right_text.strip())
                )
            row = int(line)
        except ValueError as error:
            raise DatasetError(
                f"{self.path}: line {number}: expected a row index or "
                f"'left,right', got {line!r}"
            ) from error
        if not 0 <= row < len(self.dataset):
            raise DatasetError(
                f"{self.path}: line {number}: row index {row} out of "
                f"range 0..{len(self.dataset) - 1}"
            )
        return self.dataset.pairs[row]

    def pairs(self) -> list[RecordPair]:
        if not self.path.exists():
            raise DatasetError(f"pair-list file {self.path} does not exist")
        selected: list[RecordPair] = []
        for number, raw in enumerate(
            self.path.read_text(encoding="utf-8-sig").splitlines()
        ):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            selected.append(self._parse_line(number, line))
        return selected

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "dataset": self.dataset.name,
            "n_rows": len(self.dataset),
            "path": self.path.name,
        }
