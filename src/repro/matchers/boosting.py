"""Gradient-boosted decision stumps over similarity features.

A third model family for the matcher zoo: non-linear, non-differentiable,
tree-based — the kind of model (think XGBoost-style EM matchers) for which
post-hoc explainers are the *only* option, since there are no gradients
and no linear coefficients to read.  Landmark Explanation treats it as the
same black box as everything else.

The implementation is classic gradient boosting with the logistic loss:

* ``F₀`` is the weighted log-odds prior;
* each round fits a depth-1 regression tree (a *stump*) to the negative
  gradient ``y − p`` by exhaustive search over per-feature quantile
  thresholds;
* leaf values are Newton steps ``Σg / Σp(1−p)`` (clipped), scaled by the
  learning rate.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.records import EMDataset, RecordPair
from repro.exceptions import DatasetError, ModelNotFittedError
from repro.matchers.base import EntityMatcher
from repro.matchers.features import FeatureConfig, PairFeatureExtractor
from repro.matchers.logistic import _sigmoid

#: Newton leaf values are clipped to this magnitude for stability.
_MAX_LEAF = 4.0


@dataclass(frozen=True)
class Stump:
    """One depth-1 tree: ``x[feature] <= threshold ? left : right``."""

    feature: int
    threshold: float
    left_value: float
    right_value: float

    def predict(self, features: np.ndarray) -> np.ndarray:
        goes_left = features[:, self.feature] <= self.threshold
        return np.where(goes_left, self.left_value, self.right_value)


class GradientBoostedStumpsMatcher(EntityMatcher):
    """Boosted-stump classifier on per-attribute similarity features."""

    supports_columnar = True

    def __init__(
        self,
        n_stumps: int = 80,
        learning_rate: float = 0.3,
        n_thresholds: int = 12,
        balanced: bool = True,
        feature_config: FeatureConfig | None = None,
    ) -> None:
        if n_stumps < 1:
            raise ValueError(f"n_stumps must be >= 1, got {n_stumps}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if n_thresholds < 1:
            raise ValueError(f"n_thresholds must be >= 1, got {n_thresholds}")
        self.n_stumps = n_stumps
        self.learning_rate = learning_rate
        self.n_thresholds = n_thresholds
        self.balanced = balanced
        self.feature_config = feature_config
        self.extractor: PairFeatureExtractor | None = None
        self.prior_: float = 0.0
        self.stumps_: list[Stump] = []

    # ------------------------------------------------------------------

    def _candidate_thresholds(self, features: np.ndarray) -> list[np.ndarray]:
        """Quantile thresholds per feature (deduplicated)."""
        quantiles = np.linspace(0.05, 0.95, self.n_thresholds)
        candidates = []
        for column in features.T:
            candidates.append(np.unique(np.quantile(column, quantiles)))
        return candidates

    @staticmethod
    def _leaf_value(gradient_sum: float, curvature_sum: float) -> float:
        if curvature_sum <= 1e-12:
            return 0.0
        return float(np.clip(gradient_sum / curvature_sum, -_MAX_LEAF, _MAX_LEAF))

    def _fit_stump(
        self,
        features: np.ndarray,
        gradient: np.ndarray,
        curvature: np.ndarray,
        thresholds: list[np.ndarray],
    ) -> Stump:
        best_gain = -np.inf
        best = None
        total_gradient = float(gradient.sum())
        total_curvature = float(curvature.sum())
        for feature_index, feature_thresholds in enumerate(thresholds):
            column = features[:, feature_index]
            for threshold in feature_thresholds:
                left_mask = column <= threshold
                left_gradient = float(gradient[left_mask].sum())
                left_curvature = float(curvature[left_mask].sum())
                right_gradient = total_gradient - left_gradient
                right_curvature = total_curvature - left_curvature
                if left_curvature <= 1e-12 or right_curvature <= 1e-12:
                    continue
                # Newton gain: Σg²/Σh per leaf (larger = better split).
                gain = (
                    left_gradient**2 / left_curvature
                    + right_gradient**2 / right_curvature
                )
                if gain > best_gain:
                    best_gain = gain
                    best = (
                        feature_index,
                        float(threshold),
                        self._leaf_value(left_gradient, left_curvature),
                        self._leaf_value(right_gradient, right_curvature),
                    )
        if best is None:
            # Degenerate round (constant features): emit a zero stump.
            return Stump(feature=0, threshold=0.0, left_value=0.0, right_value=0.0)
        return Stump(*best)

    def fit(self, dataset: EMDataset) -> "GradientBoostedStumpsMatcher":
        if len(dataset) < 2:
            raise DatasetError("need at least 2 pairs to fit")
        labels = dataset.labels.astype(np.float64)
        if labels.min() == labels.max():
            raise DatasetError("training data contains a single class")
        self.extractor = PairFeatureExtractor(dataset.schema, self.feature_config)
        features = self.extractor.transform(dataset.pairs)

        sample_weights = np.ones(len(labels))
        if self.balanced:
            n_match = labels.sum()
            n_non_match = len(labels) - n_match
            sample_weights[labels == 1] = len(labels) / (2.0 * n_match)
            sample_weights[labels == 0] = len(labels) / (2.0 * n_non_match)

        positive = float((sample_weights * labels).sum())
        negative = float((sample_weights * (1.0 - labels)).sum())
        self.prior_ = float(np.log(max(positive, 1e-12) / max(negative, 1e-12)))

        thresholds = self._candidate_thresholds(features)
        scores = np.full(len(labels), self.prior_)
        self.stumps_ = []
        for _ in range(self.n_stumps):
            probabilities = _sigmoid(scores)
            gradient = sample_weights * (labels - probabilities)
            curvature = sample_weights * probabilities * (1.0 - probabilities)
            stump = self._fit_stump(features, gradient, curvature, thresholds)
            self.stumps_.append(stump)
            scores = scores + self.learning_rate * stump.predict(features)
        return self

    # ------------------------------------------------------------------

    def _score_features(self, features: np.ndarray) -> np.ndarray:
        # Stump predictions are np.where lookups — row-independent, so
        # scores are bit-identical whatever batch shape carries a row.
        scores = np.full(features.shape[0], self.prior_)
        for stump in self.stumps_:
            scores += self.learning_rate * stump.predict(features)
        return _sigmoid(scores)

    def predict_proba(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        if self.extractor is None or not self.stumps_:
            raise ModelNotFittedError(
                "GradientBoostedStumpsMatcher used before fit()"
            )
        if not pairs:
            return np.empty(0, dtype=np.float64)
        return self._score_features(self.extractor.transform(pairs))

    def predict_proba_columnar(self, batch) -> np.ndarray:
        if self.extractor is None or not self.stumps_:
            raise ModelNotFittedError(
                "GradientBoostedStumpsMatcher used before fit()"
            )
        if batch.n_rows == 0:
            return np.empty(0, dtype=np.float64)
        return self._score_features(self.extractor.transform_columnar(batch))

    def feature_usage(self) -> dict[str, int]:
        """How often each feature was chosen by a stump (a crude global
        importance, handy for sanity-checking against Table 3)."""
        extractor = self.extractor
        if extractor is None:
            raise ModelNotFittedError(
                "GradientBoostedStumpsMatcher used before fit()"
            )
        names = extractor.feature_names
        usage: dict[str, int] = {}
        for stump in self.stumps_:
            name = names[stump.feature]
            usage[name] = usage.get(name, 0) + 1
        return usage
