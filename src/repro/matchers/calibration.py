"""Decision-threshold tuning and probability calibration.

The paper repeatedly observes that its results shift with the decision
threshold ("If we pushed the decision threshold to 0.4 … Landmark
Explanation would obtain a better performance in 10/12 datasets").  This
module makes the threshold a first-class, tunable object:

* :func:`tune_threshold` — grid-search the threshold that maximizes a
  chosen metric (F1 by default) on labelled data;
* :class:`PlattCalibrator` — one-dimensional logistic recalibration of a
  matcher's scores (Platt scaling), useful when a matcher's probabilities
  are saturated, which is exactly the regime that distorts MAE-style
  explanation metrics (see EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.records import EMDataset, RecordPair
from repro.exceptions import ConfigurationError, ModelNotFittedError
from repro.matchers.base import EntityMatcher
from repro.matchers.evaluate import quality_from_predictions
from repro.matchers.logistic import _sigmoid


@dataclass(frozen=True)
class ThresholdChoice:
    """The outcome of a threshold sweep."""

    threshold: float
    score: float
    metric: str
    sweep: tuple[tuple[float, float], ...]  # (threshold, score) pairs

    def render(self) -> str:
        lines = [f"best {self.metric}={self.score:.3f} at threshold {self.threshold:.2f}"]
        lines.extend(
            f"  {threshold:.2f}: {score:.3f}" for threshold, score in self.sweep
        )
        return "\n".join(lines)


def tune_threshold(
    matcher: EntityMatcher,
    dataset: EMDataset,
    metric: str = "f1",
    grid: Sequence[float] | None = None,
) -> ThresholdChoice:
    """Pick the decision threshold maximizing *metric* on *dataset*.

    Ties break toward 0.5 (the conventional default), so tuning never
    drifts from the default without evidence.
    """
    if metric not in ("f1", "accuracy", "precision", "recall"):
        raise ConfigurationError(f"unknown metric {metric!r}")
    if grid is None:
        grid = np.round(np.arange(0.05, 1.0, 0.05), 2)
    probabilities = matcher.predict_proba(dataset.pairs)
    labels = dataset.labels
    sweep = []
    for threshold in grid:
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError(f"grid threshold {threshold} not in (0, 1)")
        quality = quality_from_predictions(labels, probabilities >= threshold)
        sweep.append((float(threshold), float(getattr(quality, metric))))
    best_score = max(score for _, score in sweep)
    winners = [threshold for threshold, score in sweep if score == best_score]
    best_threshold = min(winners, key=lambda threshold: abs(threshold - 0.5))
    return ThresholdChoice(
        threshold=best_threshold,
        score=best_score,
        metric=metric,
        sweep=tuple(sweep),
    )


class PlattCalibrator(EntityMatcher):
    """Platt scaling: ``p' = σ(a · logit(p) + b)`` around a base matcher.

    Wraps any fitted matcher and re-learns a 1-D logistic map from the
    matcher's scores to labels.  The wrapper is itself an
    :class:`EntityMatcher`, so explainers and evaluations use it
    transparently.
    """

    def __init__(self, base: EntityMatcher, max_iter: int = 100, tol: float = 1e-10):
        self.base = base
        self.max_iter = max_iter
        self.tol = tol
        self.a_: float | None = None
        self.b_: float = 0.0

    @staticmethod
    def _logit(probabilities: np.ndarray) -> np.ndarray:
        clipped = np.clip(probabilities, 1e-12, 1.0 - 1e-12)
        return np.log(clipped / (1.0 - clipped))

    def fit(self, dataset: EMDataset) -> "PlattCalibrator":
        """Fit the (a, b) map on *dataset* (the base matcher must be fitted)."""
        scores = self._logit(self.base.predict_proba(dataset.pairs))
        # Platt's smoothed targets guard against overconfidence on the
        # training labels.
        labels = dataset.labels.astype(np.float64)
        n_positive = labels.sum()
        n_negative = len(labels) - n_positive
        targets = np.where(
            labels == 1.0,
            (n_positive + 1.0) / (n_positive + 2.0),
            1.0 / (n_negative + 2.0),
        )
        a, b = 1.0, 0.0
        for _ in range(self.max_iter):
            logits = a * scores + b
            probabilities = _sigmoid(logits)
            gradient_a = float(np.sum((probabilities - targets) * scores))
            gradient_b = float(np.sum(probabilities - targets))
            curvature = probabilities * (1.0 - probabilities)
            h_aa = float(np.sum(curvature * scores * scores)) + 1e-12
            h_ab = float(np.sum(curvature * scores))
            h_bb = float(np.sum(curvature)) + 1e-12
            determinant = h_aa * h_bb - h_ab * h_ab
            if abs(determinant) < 1e-18:
                break
            step_a = (h_bb * gradient_a - h_ab * gradient_b) / determinant
            step_b = (h_aa * gradient_b - h_ab * gradient_a) / determinant
            a -= step_a
            b -= step_b
            if max(abs(step_a), abs(step_b)) < self.tol:
                break
        self.a_, self.b_ = a, b
        return self

    def predict_proba(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        if self.a_ is None:
            raise ModelNotFittedError("PlattCalibrator used before fit()")
        scores = self._logit(self.base.predict_proba(pairs))
        return _sigmoid(self.a_ * scores + self.b_)
