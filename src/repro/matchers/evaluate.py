"""Matcher quality metrics: precision, recall, F1, confusion counts.

EM evaluation is dominated by the positive (match) class because the
datasets are heavily imbalanced — accuracy alone is meaningless when 90% of
pairs are non-matches, so the report always includes per-class counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.records import EMDataset
from repro.matchers.base import DEFAULT_THRESHOLD, EntityMatcher


@dataclass(frozen=True)
class MatchQuality:
    """Binary classification quality on an EM dataset."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def support(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        if self.support == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.support

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def report(self) -> str:
        """A compact multi-line textual report."""
        return "\n".join(
            (
                f"pairs:     {self.support}",
                f"accuracy:  {self.accuracy:.3f}",
                f"precision: {self.precision:.3f}",
                f"recall:    {self.recall:.3f}",
                f"f1:        {self.f1:.3f}",
                f"confusion: tp={self.true_positive} fp={self.false_positive} "
                f"tn={self.true_negative} fn={self.false_negative}",
            )
        )


def quality_from_predictions(
    labels: np.ndarray, predicted: np.ndarray
) -> MatchQuality:
    """Build a :class:`MatchQuality` from aligned label / prediction arrays."""
    labels = np.asarray(labels).astype(bool)
    predicted = np.asarray(predicted).astype(bool)
    if labels.shape != predicted.shape:
        raise ValueError(
            f"labels shape {labels.shape} != predictions shape {predicted.shape}"
        )
    return MatchQuality(
        true_positive=int(np.sum(predicted & labels)),
        false_positive=int(np.sum(predicted & ~labels)),
        true_negative=int(np.sum(~predicted & ~labels)),
        false_negative=int(np.sum(~predicted & labels)),
    )


def evaluate_matcher(
    matcher: EntityMatcher,
    dataset: EMDataset,
    threshold: float = DEFAULT_THRESHOLD,
) -> MatchQuality:
    """Score *matcher* on *dataset* at the given decision threshold."""
    predicted = matcher.predict(dataset.pairs, threshold=threshold)
    return quality_from_predictions(dataset.labels, predicted)
