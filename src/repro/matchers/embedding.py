"""A token-embedding matcher — the DeepMatcher-style "deep" stand-in.

The similarity-feature matchers (:class:`LogisticRegressionMatcher`,
:class:`MLPMatcher`) see only aggregate per-attribute similarities; they
cannot value *individual* tokens.  The deep matchers the paper motivates
(DeepMatcher, DITTO) embed tokens, summarize attributes and compare the
two sides in embedding space — which is why token-level explanations of
them are interesting in the first place.

:class:`EmbeddingMatcher` reproduces that architecture on numpy + scipy:

* a vocabulary + trainable embedding table (Xavier init, OOV bucket);
* per attribute and side, the entity summary is the *mean embedding* of
  its tokens (DeepMatcher's aggregate variant);
* the pair representation concatenates, per attribute,
  ``[|left − right|, left ⊙ right]``;
* a one-hidden-layer tanh classifier produces the match probability;
* everything — classifier *and embeddings* — trains end-to-end with Adam
  on the class-balanced cross-entropy.

Mean-pooling is expressed as a sparse averaging matrix (rows = (pair,
attribute, side) slots, columns = vocabulary), so a whole batch embeds in
two sparse matmuls and the embedding gradient is one transposed matmul.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import sparse

from repro.data.records import EMDataset, RecordPair
from repro.exceptions import DatasetError, ModelNotFittedError
from repro.matchers.base import EntityMatcher
from repro.matchers.logistic import _sigmoid
from repro.text.normalize import tokens_of

#: Vocabulary index reserved for unseen tokens.
OOV_INDEX = 0


class EmbeddingMatcher(EntityMatcher):
    """End-to-end trained mean-embedding matcher."""

    def __init__(
        self,
        embedding_dim: int = 16,
        hidden_size: int = 32,
        epochs: int = 120,
        learning_rate: float = 0.01,
        l2: float = 1e-5,
        min_token_count: int = 1,
        balanced: bool = True,
        seed: int = 0,
    ) -> None:
        if embedding_dim < 1 or hidden_size < 1:
            raise ValueError("embedding_dim and hidden_size must be >= 1")
        self.embedding_dim = embedding_dim
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.min_token_count = min_token_count
        self.balanced = balanced
        self.seed = seed
        self.vocabulary_: dict[str, int] | None = None
        self.attributes_: tuple[str, ...] = ()
        self.embeddings_: np.ndarray | None = None
        self._w_hidden: np.ndarray | None = None
        self._b_hidden: np.ndarray | None = None
        self._w_out: np.ndarray | None = None
        self._b_out: float = 0.0
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _build_vocabulary(self, dataset: EMDataset) -> dict[str, int]:
        counts: dict[str, int] = {}
        for pair in dataset:
            for entity in (pair.left, pair.right):
                for value in entity.values():
                    for token in tokens_of(value):
                        counts[token] = counts.get(token, 0) + 1
        vocabulary = {"<oov>": OOV_INDEX}
        for token in sorted(counts):
            if counts[token] >= self.min_token_count:
                vocabulary[token] = len(vocabulary)
        return vocabulary

    def _averaging_matrix(self, pairs: Sequence[RecordPair]) -> sparse.csr_matrix:
        """Sparse (n_pairs · n_attributes · 2) × vocab mean-pooling matrix.

        Slot order: pair-major, then attribute, then side (left, right).
        Empty values produce an all-zero row (a zero summary vector).
        """
        assert self.vocabulary_ is not None
        rows: list[int] = []
        columns: list[int] = []
        values: list[float] = []
        slot = 0
        for pair in pairs:
            for attribute in self.attributes_:
                for entity in (pair.left, pair.right):
                    tokens = tokens_of(entity[attribute])
                    if tokens:
                        share = 1.0 / len(tokens)
                        for token in tokens:
                            rows.append(slot)
                            columns.append(
                                self.vocabulary_.get(token, OOV_INDEX)
                            )
                            values.append(share)
                    slot += 1
        n_slots = len(pairs) * len(self.attributes_) * 2
        return sparse.csr_matrix(
            (values, (rows, columns)),
            shape=(n_slots, len(self.vocabulary_)),
        )

    def _pair_features(
        self, pooling: sparse.csr_matrix, n_pairs: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(features, left summaries, right summaries) for a batch."""
        assert self.embeddings_ is not None
        summaries = pooling @ self.embeddings_  # (slots, d)
        per_pair = summaries.reshape(n_pairs, len(self.attributes_), 2, -1)
        left = per_pair[:, :, 0, :]
        right = per_pair[:, :, 1, :]
        absdiff = np.abs(left - right)
        product = left * right
        features = np.concatenate([absdiff, product], axis=2).reshape(n_pairs, -1)
        return features, left, right

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, dataset: EMDataset) -> "EmbeddingMatcher":
        if len(dataset) < 2:
            raise DatasetError("need at least 2 pairs to fit")
        labels = dataset.labels.astype(np.float64)
        if labels.min() == labels.max():
            raise DatasetError("training data contains a single class")
        self.attributes_ = dataset.schema.attributes
        self.vocabulary_ = self._build_vocabulary(dataset)
        rng = np.random.default_rng(self.seed)

        vocab_size = len(self.vocabulary_)
        d = self.embedding_dim
        feature_size = len(self.attributes_) * 2 * d
        scale = np.sqrt(6.0 / (vocab_size + d))
        self.embeddings_ = rng.uniform(-scale, scale, size=(vocab_size, d))
        limit = np.sqrt(6.0 / (feature_size + self.hidden_size))
        self._w_hidden = rng.uniform(-limit, limit, size=(feature_size, self.hidden_size))
        self._b_hidden = np.zeros(self.hidden_size)
        limit = np.sqrt(6.0 / (self.hidden_size + 1))
        self._w_out = rng.uniform(-limit, limit, size=self.hidden_size)
        self._b_out = 0.0

        sample_weights = np.ones(len(labels))
        if self.balanced:
            n_match = labels.sum()
            n_non_match = len(labels) - n_match
            sample_weights[labels == 1] = len(labels) / (2.0 * n_match)
            sample_weights[labels == 0] = len(labels) / (2.0 * n_non_match)
        sample_weights = sample_weights / sample_weights.sum()

        pooling = self._averaging_matrix(dataset.pairs)
        pooling_t = pooling.T.tocsr()
        n_pairs = len(dataset)
        n_attrs = len(self.attributes_)

        # Adam state for (embeddings, w_hidden, b_hidden, w_out, b_out).
        params = ["embeddings_", "_w_hidden", "_b_hidden", "_w_out"]
        moment1 = {name: np.zeros_like(getattr(self, name)) for name in params}
        moment2 = {name: np.zeros_like(getattr(self, name)) for name in params}
        m_b_out = 0.0
        v_b_out = 0.0
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        self.loss_history_ = []
        for epoch in range(1, self.epochs + 1):
            features, left, right = self._pair_features(pooling, n_pairs)
            hidden = np.tanh(features @ self._w_hidden + self._b_hidden)
            logits = hidden @ self._w_out + self._b_out
            probabilities = _sigmoid(logits)
            clipped = np.clip(probabilities, 1e-12, 1 - 1e-12)
            loss = -np.sum(
                sample_weights
                * (labels * np.log(clipped) + (1 - labels) * np.log(1 - clipped))
            )
            self.loss_history_.append(float(loss))

            delta_logit = sample_weights * (probabilities - labels)  # (n,)
            grad_w_out = hidden.T @ delta_logit + self.l2 * self._w_out
            grad_b_out = float(delta_logit.sum())
            delta_hidden = np.outer(delta_logit, self._w_out) * (1.0 - hidden**2)
            grad_w_hidden = features.T @ delta_hidden + self.l2 * self._w_hidden
            grad_b_hidden = delta_hidden.sum(axis=0)
            grad_features = delta_hidden @ self._w_hidden.T  # (n, feature_size)

            grad_per_attr = grad_features.reshape(n_pairs, n_attrs, 2, d)
            grad_absdiff = grad_per_attr[:, :, 0, :]
            grad_product = grad_per_attr[:, :, 1, :]
            sign = np.sign(left - right)
            grad_left = grad_absdiff * sign + grad_product * right
            grad_right = -grad_absdiff * sign + grad_product * left
            grad_slots = np.empty((n_pairs, n_attrs, 2, d))
            grad_slots[:, :, 0, :] = grad_left
            grad_slots[:, :, 1, :] = grad_right
            grad_embeddings = pooling_t @ grad_slots.reshape(-1, d)
            grad_embeddings += self.l2 * self.embeddings_

            gradients = {
                "embeddings_": grad_embeddings,
                "_w_hidden": grad_w_hidden,
                "_b_hidden": grad_b_hidden,
                "_w_out": grad_w_out,
            }
            correction1 = 1.0 - beta1**epoch
            correction2 = 1.0 - beta2**epoch
            for name in params:
                moment1[name] = beta1 * moment1[name] + (1 - beta1) * gradients[name]
                moment2[name] = beta2 * moment2[name] + (1 - beta2) * gradients[name] ** 2
                update = (moment1[name] / correction1) / (
                    np.sqrt(moment2[name] / correction2) + eps
                )
                setattr(self, name, getattr(self, name) - self.learning_rate * update)
            m_b_out = beta1 * m_b_out + (1 - beta1) * grad_b_out
            v_b_out = beta2 * v_b_out + (1 - beta2) * grad_b_out**2
            self._b_out -= self.learning_rate * (m_b_out / correction1) / (
                np.sqrt(v_b_out / correction2) + eps
            )
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def predict_proba(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        if self.vocabulary_ is None or self.embeddings_ is None:
            raise ModelNotFittedError("EmbeddingMatcher used before fit()")
        if not pairs:
            return np.empty(0, dtype=np.float64)
        pooling = self._averaging_matrix(pairs)
        features, _, _ = self._pair_features(pooling, len(pairs))
        hidden = np.tanh(features @ self._w_hidden + self._b_hidden)
        # Row-wise output reduction: batch-shape-independent scoring (the
        # prediction engine's equivalence bar).
        return _sigmoid((hidden * self._w_out).sum(axis=1) + self._b_out)

    @property
    def vocabulary_size(self) -> int:
        if self.vocabulary_ is None:
            raise ModelNotFittedError("EmbeddingMatcher used before fit()")
        return len(self.vocabulary_)

    # ------------------------------------------------------------------
    # White-box introspection
    # ------------------------------------------------------------------

    def token_saliency(self, pair: RecordPair) -> dict[tuple[str, str, int], float]:
        """Exact gradient attribution of every token toward the match logit.

        Because the model is differentiable end-to-end, each token's
        contribution can be computed in closed form: the gradient of the
        output logit with respect to the token's attribute-summary slot,
        dotted with the token's embedding and scaled by the mean-pooling
        share ``1/n_tokens``.  Keys are ``(side, attribute, position)`` —
        the same addressing the explainers use — so black-box explanations
        can be validated against the model's true internals (see
        ``benchmarks/bench_whitebox_agreement.py``).
        """
        if self.vocabulary_ is None or self.embeddings_ is None:
            raise ModelNotFittedError("EmbeddingMatcher used before fit()")
        pooling = self._averaging_matrix([pair])
        features, left, right = self._pair_features(pooling, 1)
        hidden = np.tanh(features @ self._w_hidden + self._b_hidden)

        # Backward pass for the logit (not the loss).
        delta_hidden = self._w_out * (1.0 - hidden[0] ** 2)  # (hidden,)
        grad_features = self._w_hidden @ delta_hidden  # (feature_size,)
        n_attrs = len(self.attributes_)
        d = self.embedding_dim
        grad_per_attr = grad_features.reshape(n_attrs, 2, d)
        sign = np.sign(left[0] - right[0])  # (n_attrs, d)
        grad_left = grad_per_attr[:, 0, :] * sign + grad_per_attr[:, 1, :] * right[0]
        grad_right = -grad_per_attr[:, 0, :] * sign + grad_per_attr[:, 1, :] * left[0]

        saliency: dict[tuple[str, str, int], float] = {}
        for attr_index, attribute in enumerate(self.attributes_):
            for side, grad_summary in (("left", grad_left), ("right", grad_right)):
                tokens = tokens_of(pair.entity(side)[attribute])
                if not tokens:
                    continue
                share = 1.0 / len(tokens)
                for position, token in enumerate(tokens):
                    embedding = self.embeddings_[
                        self.vocabulary_.get(token, OOV_INDEX)
                    ]
                    saliency[(side, attribute, position)] = float(
                        share * grad_summary[attr_index] @ embedding
                    )
        return saliency
