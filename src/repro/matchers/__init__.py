"""EM matcher substrate: feature extraction, models, training, evaluation.

The paper's quantitative experiments explain a **Logistic Regression**
classifier trained on per-attribute similarity features (the classic
Magellan recipe).  This package provides:

* :class:`~repro.matchers.features.PairFeatureExtractor` — per-attribute
  similarity features with a feature → attribute group map (Table 3 needs
  the model's attribute-level weights);
* :class:`~repro.matchers.logistic.LogisticRegressionMatcher` — from-scratch
  L2-regularized logistic regression fit by IRLS;
* :class:`~repro.matchers.neural.MLPMatcher` — a small numpy MLP standing in
  for the "deep" matchers (DeepMatcher/DITTO) to demonstrate that Landmark
  Explanation is model-agnostic;
* :class:`~repro.matchers.rules.RuleBasedMatcher` — an intrinsically
  interpretable threshold matcher;
* :mod:`~repro.matchers.evaluate` — precision / recall / F1 and reports.
"""

from repro.matchers.base import EntityMatcher
from repro.matchers.boosting import GradientBoostedStumpsMatcher
from repro.matchers.calibration import PlattCalibrator, ThresholdChoice, tune_threshold
from repro.matchers.embedding import EmbeddingMatcher
from repro.matchers.evaluate import MatchQuality, evaluate_matcher
from repro.matchers.features import FeatureConfig, PairFeatureExtractor
from repro.matchers.logistic import LogisticRegressionMatcher
from repro.matchers.neural import MLPMatcher
from repro.matchers.rules import MatchRule, RuleBasedMatcher

__all__ = [
    "EmbeddingMatcher",
    "EntityMatcher",
    "FeatureConfig",
    "GradientBoostedStumpsMatcher",
    "LogisticRegressionMatcher",
    "MLPMatcher",
    "MatchQuality",
    "MatchRule",
    "PairFeatureExtractor",
    "PlattCalibrator",
    "RuleBasedMatcher",
    "ThresholdChoice",
    "evaluate_matcher",
    "tune_threshold",
]
