"""The matcher interface every EM model in this library implements.

Landmark Explanation treats the EM model as a black box exposing exactly one
capability: *score a batch of record pairs with a match probability*.  That
is the :meth:`EntityMatcher.predict_proba` contract.  Everything else
(training, thresholds, reports) is convenience built on top of it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.data.records import EMDataset, RecordPair

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.columnar import ColumnarPairBatch

#: The decision threshold the paper uses (it also discusses 0.4).
DEFAULT_THRESHOLD = 0.5


class EntityMatcher(ABC):
    """Abstract base class of every EM model."""

    #: Whether :meth:`predict_proba_columnar` is implemented.  Matchers
    #: that can score a perturbation batch straight from its columnar
    #: form (without materializing pairs) set this to True; callers fall
    #: back to :meth:`predict_proba` otherwise.  Wrappers (test doubles,
    #: counting/fault-injection shims) inherit the False default, which
    #: safely routes them through the per-pair path.
    supports_columnar: bool = False

    @abstractmethod
    def fit(self, dataset: EMDataset) -> "EntityMatcher":
        """Train on a labelled dataset and return self."""

    @abstractmethod
    def predict_proba(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        """Match probabilities, shape ``(len(pairs),)``, values in [0, 1]."""

    def predict_proba_columnar(self, batch: "ColumnarPairBatch") -> np.ndarray:
        """Match probabilities for a columnar perturbation batch.

        The contract mirrors :meth:`predict_proba` — shape
        ``(batch.n_rows,)`` — with one hard extra requirement: row *i*'s
        probability must be **bit-identical** to what ``predict_proba``
        would return for the materialized pair of row *i*, whatever batch
        it rides in (the prediction engine's equivalence bar).  Only
        matchers with ``supports_columnar = True`` implement this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support columnar prediction"
        )

    def predict(
        self,
        pairs: Sequence[RecordPair],
        threshold: float = DEFAULT_THRESHOLD,
    ) -> np.ndarray:
        """Hard labels derived from :meth:`predict_proba` at *threshold*."""
        return (self.predict_proba(pairs) >= threshold).astype(np.int64)

    def predict_one(self, pair: RecordPair) -> float:
        """Match probability of a single pair."""
        return float(self.predict_proba([pair])[0])
