"""The matcher interface every EM model in this library implements.

Landmark Explanation treats the EM model as a black box exposing exactly one
capability: *score a batch of record pairs with a match probability*.  That
is the :meth:`EntityMatcher.predict_proba` contract.  Everything else
(training, thresholds, reports) is convenience built on top of it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.data.records import EMDataset, RecordPair

#: The decision threshold the paper uses (it also discusses 0.4).
DEFAULT_THRESHOLD = 0.5


class EntityMatcher(ABC):
    """Abstract base class of every EM model."""

    @abstractmethod
    def fit(self, dataset: EMDataset) -> "EntityMatcher":
        """Train on a labelled dataset and return self."""

    @abstractmethod
    def predict_proba(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        """Match probabilities, shape ``(len(pairs),)``, values in [0, 1]."""

    def predict(
        self,
        pairs: Sequence[RecordPair],
        threshold: float = DEFAULT_THRESHOLD,
    ) -> np.ndarray:
        """Hard labels derived from :meth:`predict_proba` at *threshold*."""
        return (self.predict_proba(pairs) >= threshold).astype(np.int64)

    def predict_one(self, pair: RecordPair) -> float:
        """Match probability of a single pair."""
        return float(self.predict_proba([pair])[0])
