"""A small numpy MLP matcher — the "deep model" stand-in.

The paper's qualitative claims (model-agnosticism of Landmark Explanation)
involve deep matchers like DeepMatcher; its quantitative tables use Logistic
Regression.  PyTorch is not available offline, so this module provides a
from-scratch multi-layer perceptron over the same similarity features: one
or two hidden tanh layers trained with Adam on the weighted cross-entropy.

From the explainer's point of view it is just another black box with a
``predict_proba``, which is the point.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.records import EMDataset, RecordPair
from repro.exceptions import DatasetError, ModelNotFittedError
from repro.matchers.base import EntityMatcher
from repro.matchers.features import FeatureConfig, PairFeatureExtractor
from repro.matchers.logistic import _sigmoid


class MLPMatcher(EntityMatcher):
    """Feed-forward network: features → hidden tanh layers → sigmoid."""

    supports_columnar = True

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (32, 16),
        epochs: int = 300,
        learning_rate: float = 0.01,
        l2: float = 1e-4,
        balanced: bool = True,
        seed: int = 0,
        feature_config: FeatureConfig | None = None,
    ) -> None:
        if not hidden_sizes:
            raise ValueError("hidden_sizes must contain at least one layer")
        self.hidden_sizes = hidden_sizes
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.balanced = balanced
        self.seed = seed
        self.feature_config = feature_config
        self.extractor: PairFeatureExtractor | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self.loss_history_: list[float] = []

    # ------------------------------------------------------------------

    def _forward(self, features: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return (output probabilities, per-layer activations incl. input)."""
        activations = [features]
        hidden = features
        for layer_index in range(len(self.hidden_sizes)):
            hidden = np.tanh(hidden @ self._weights[layer_index] + self._biases[layer_index])
            activations.append(hidden)
        # Row-wise output reduction keeps each row's score independent of
        # the batch shape (see the prediction engine's equivalence bar).
        logits = (hidden * self._weights[-1][:, 0]).sum(axis=1)
        probabilities = _sigmoid(logits + self._biases[-1][0])
        return probabilities, activations

    def fit(self, dataset: EMDataset) -> "MLPMatcher":
        if len(dataset) < 2:
            raise DatasetError("need at least 2 pairs to fit")
        labels = dataset.labels.astype(np.float64)
        if labels.min() == labels.max():
            raise DatasetError("training data contains a single class")
        self.extractor = PairFeatureExtractor(dataset.schema, self.feature_config)
        features = self.extractor.transform(dataset.pairs)
        self._mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        standardized = (features - self._mean) / self._scale

        sample_weights = np.ones(len(labels))
        if self.balanced:
            n_match = labels.sum()
            n_non_match = len(labels) - n_match
            sample_weights[labels == 1] = len(labels) / (2.0 * n_match)
            sample_weights[labels == 0] = len(labels) / (2.0 * n_non_match)
        sample_weights = sample_weights / sample_weights.sum()

        rng = np.random.default_rng(self.seed)
        sizes = [standardized.shape[1], *self.hidden_sizes, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        # Adam state
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        self.loss_history_ = []
        for epoch in range(1, self.epochs + 1):
            probabilities, activations = self._forward(standardized)
            clipped = np.clip(probabilities, 1e-12, 1.0 - 1e-12)
            loss = -np.sum(
                sample_weights
                * (labels * np.log(clipped) + (1 - labels) * np.log(1 - clipped))
            )
            self.loss_history_.append(float(loss))

            # Backprop.  delta has shape (n, fan_out of current layer).
            delta = (sample_weights * (probabilities - labels))[:, None]
            grads_w: list[np.ndarray] = [np.empty(0)] * len(self._weights)
            grads_b: list[np.ndarray] = [np.empty(0)] * len(self._biases)
            for layer_index in range(len(self._weights) - 1, -1, -1):
                grads_w[layer_index] = (
                    activations[layer_index].T @ delta + self.l2 * self._weights[layer_index]
                )
                grads_b[layer_index] = delta.sum(axis=0)
                if layer_index > 0:
                    upstream = delta @ self._weights[layer_index].T
                    delta = upstream * (1.0 - activations[layer_index] ** 2)

            correction1 = 1.0 - beta1 ** epoch
            correction2 = 1.0 - beta2 ** epoch
            for layer_index in range(len(self._weights)):
                m_w[layer_index] = beta1 * m_w[layer_index] + (1 - beta1) * grads_w[layer_index]
                v_w[layer_index] = beta2 * v_w[layer_index] + (1 - beta2) * grads_w[layer_index] ** 2
                m_b[layer_index] = beta1 * m_b[layer_index] + (1 - beta1) * grads_b[layer_index]
                v_b[layer_index] = beta2 * v_b[layer_index] + (1 - beta2) * grads_b[layer_index] ** 2
                self._weights[layer_index] -= self.learning_rate * (
                    m_w[layer_index] / correction1
                ) / (np.sqrt(v_w[layer_index] / correction2) + eps)
                self._biases[layer_index] -= self.learning_rate * (
                    m_b[layer_index] / correction1
                ) / (np.sqrt(v_b[layer_index] / correction2) + eps)
        return self

    def predict_proba(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        if self.extractor is None or not self._weights:
            raise ModelNotFittedError("MLPMatcher used before fit()")
        if not pairs:
            return np.empty(0, dtype=np.float64)
        features = self.extractor.transform(pairs)
        standardized = (features - self._mean) / self._scale
        probabilities, _ = self._forward(standardized)
        return probabilities

    def predict_proba_columnar(self, batch) -> np.ndarray:
        if self.extractor is None or not self._weights:
            raise ModelNotFittedError("MLPMatcher used before fit()")
        if batch.n_rows == 0:
            return np.empty(0, dtype=np.float64)
        features = self.extractor.transform_columnar(batch)
        standardized = (features - self._mean) / self._scale
        probabilities, _ = self._forward(standardized)
        return probabilities
