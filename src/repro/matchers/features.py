"""Per-attribute similarity features (the Magellan recipe).

For every schema attribute the extractor computes a fixed vector of
similarity measures between the left and right value.  The features of one
attribute form a contiguous *group*; the group map is what the paper's
attribute-based evaluation (Table 3) uses to read attribute-level weights
out of the Logistic Regression model.

Performance notes
-----------------
Perturbation explainers call ``predict_proba`` hundreds of times per
explained record, and feature extraction dominates that cost.  Two
mitigations keep the whole benchmark CPU-friendly:

* character-level measures (Levenshtein, Jaro-Winkler) operate on a
  length-capped prefix of the value — entity-identity signal concentrates
  at the front of names/titles;
* per-attribute feature vectors are memoized on ``(attribute, left,
  right)``; perturbations of *other* attributes then hit the cache.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.records import RecordPair
from repro.data.schema import PairSchema
from repro.text.normalize import normalize_value
from repro.text.similarity import (
    dice_coefficient,
    exact_match,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
)


@dataclass(frozen=True)
class FeatureConfig:
    """Extractor configuration.

    ``char_cap`` bounds the substring passed to the quadratic character
    measures.  ``use_monge_elkan`` enables the (expensive) hybrid measure —
    off by default, on in the *paper* preset for the small datasets.
    ``cache_size`` bounds the per-attribute memo table.
    """

    char_cap: int = 24
    use_monge_elkan: bool = False
    monge_elkan_token_cap: int = 8
    cache_size: int = 200_000


#: Measure names in group order (Monge-Elkan appended when enabled).
BASE_MEASURES = (
    "jaccard",
    "overlap",
    "dice",
    "levenshtein",
    "jaro_winkler",
    "numeric",
    "exact",
)


class PairFeatureExtractor:
    """Maps record pairs to numeric feature matrices, grouped by attribute."""

    def __init__(self, schema: PairSchema, config: FeatureConfig | None = None):
        self.schema = schema
        self.config = config or FeatureConfig()
        self._measures = list(BASE_MEASURES)
        if self.config.use_monge_elkan:
            self._measures.append("monge_elkan")
        self._cache: dict[tuple[str, str, str], np.ndarray] = {}

    @property
    def measures(self) -> tuple[str, ...]:
        """Names of the per-attribute measures, in feature order."""
        return tuple(self._measures)

    @property
    def n_features(self) -> int:
        return len(self.schema.attributes) * len(self._measures)

    @property
    def feature_names(self) -> list[str]:
        """``<attribute>.<measure>`` for every feature, in column order."""
        return [
            f"{attribute}.{measure}"
            for attribute in self.schema.attributes
            for measure in self._measures
        ]

    def attribute_groups(self) -> dict[str, slice]:
        """Column slice of each attribute's feature group."""
        width = len(self._measures)
        return {
            attribute: slice(index * width, (index + 1) * width)
            for index, attribute in enumerate(self.schema.attributes)
        }

    def clear_cache(self) -> None:
        self._cache.clear()

    def _attribute_features(self, attribute: str, left: str, right: str) -> np.ndarray:
        key = (attribute, left, right)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        left_norm = normalize_value(left)
        right_norm = normalize_value(right)
        if not left_norm and not right_norm:
            # Missing on both sides carries no match evidence.  Magellan's
            # extractor emits NaN here (imputed to 0); emitting zeros keeps
            # "nothing vs nothing" from looking like a perfect match.
            features = np.zeros(len(self._measures), dtype=np.float64)
            if len(self._cache) >= self.config.cache_size:
                self._cache.clear()
            self._cache[key] = features
            return features
        left_tokens = left_norm.split(" ") if left_norm else []
        right_tokens = right_norm.split(" ") if right_norm else []
        cap = self.config.char_cap
        left_capped = left_norm[:cap]
        right_capped = right_norm[:cap]
        values = [
            jaccard_similarity(left_tokens, right_tokens),
            overlap_coefficient(left_tokens, right_tokens),
            dice_coefficient(left_tokens, right_tokens),
            levenshtein_similarity(left_capped, right_capped),
            jaro_winkler_similarity(left_capped, right_capped),
            numeric_similarity(left_norm, right_norm),
            exact_match(left_norm, right_norm),
        ]
        if self.config.use_monge_elkan:
            token_cap = self.config.monge_elkan_token_cap
            values.append(
                monge_elkan_similarity(
                    left_tokens[:token_cap], right_tokens[:token_cap]
                )
            )
        features = np.array(values, dtype=np.float64)
        if not np.isfinite(features).all():
            # A measure leaked NaN/inf (e.g. a pathological value no guard
            # anticipated).  predict_proba must stay finite for any mask.
            features = np.nan_to_num(features, nan=0.0, posinf=1.0, neginf=0.0)
        if len(self._cache) >= self.config.cache_size:
            self._cache.clear()
        self._cache[key] = features
        return features

    def transform_pair(self, pair: RecordPair) -> np.ndarray:
        """Feature vector of one pair, shape ``(n_features,)``."""
        chunks = [
            self._attribute_features(
                attribute, pair.left[attribute], pair.right[attribute]
            )
            for attribute in self.schema.attributes
        ]
        return np.concatenate(chunks)

    def transform(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        """Feature matrix, shape ``(len(pairs), n_features)``."""
        if not pairs:
            return np.empty((0, self.n_features), dtype=np.float64)
        return np.vstack([self.transform_pair(pair) for pair in pairs])
