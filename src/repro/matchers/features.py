"""Per-attribute similarity features (the Magellan recipe).

For every schema attribute the extractor computes a fixed vector of
similarity measures between the left and right value.  The features of one
attribute form a contiguous *group*; the group map is what the paper's
attribute-based evaluation (Table 3) uses to read attribute-level weights
out of the Logistic Regression model.

Performance notes
-----------------
Perturbation explainers call ``predict_proba`` hundreds of times per
explained record, and feature extraction dominates that cost.  Two
mitigations keep the whole benchmark CPU-friendly:

* character-level measures (Levenshtein, Jaro-Winkler) operate on a
  length-capped prefix of the value — entity-identity signal concentrates
  at the front of names/titles;
* per-attribute feature vectors are memoized on ``(attribute, left,
  right)``; perturbations of *other* attributes then hit the cache.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.records import RecordPair
from repro.data.schema import PairSchema
from repro.text.batch_similarity import char_similarities_batch
from repro.text.normalize import normalize_value
from repro.text.similarity import (
    dice_coefficient,
    exact_match,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
)


@dataclass(frozen=True)
class FeatureConfig:
    """Extractor configuration.

    ``char_cap`` bounds the substring passed to the quadratic character
    measures.  ``use_monge_elkan`` enables the (expensive) hybrid measure —
    off by default, on in the *paper* preset for the small datasets.
    ``cache_size`` bounds the per-attribute memo table.
    """

    char_cap: int = 24
    use_monge_elkan: bool = False
    monge_elkan_token_cap: int = 8
    cache_size: int = 200_000


#: Measure names in group order (Monge-Elkan appended when enabled).
BASE_MEASURES = (
    "jaccard",
    "overlap",
    "dice",
    "levenshtein",
    "jaro_winkler",
    "numeric",
    "exact",
)


class PairFeatureExtractor:
    """Maps record pairs to numeric feature matrices, grouped by attribute."""

    def __init__(self, schema: PairSchema, config: FeatureConfig | None = None):
        self.schema = schema
        self.config = config or FeatureConfig()
        self._measures = list(BASE_MEASURES)
        if self.config.use_monge_elkan:
            self._measures.append("monge_elkan")
        self._cache: dict[tuple[str, str, str], np.ndarray] = {}
        # Raw value → normalized value memo for the columnar path (the
        # same value recurs across combinations, rows and batches).
        self._norm_cache: dict[str, str] = {}

    @property
    def measures(self) -> tuple[str, ...]:
        """Names of the per-attribute measures, in feature order."""
        return tuple(self._measures)

    @property
    def n_features(self) -> int:
        return len(self.schema.attributes) * len(self._measures)

    @property
    def feature_names(self) -> list[str]:
        """``<attribute>.<measure>`` for every feature, in column order."""
        return [
            f"{attribute}.{measure}"
            for attribute in self.schema.attributes
            for measure in self._measures
        ]

    def attribute_groups(self) -> dict[str, slice]:
        """Column slice of each attribute's feature group."""
        width = len(self._measures)
        return {
            attribute: slice(index * width, (index + 1) * width)
            for index, attribute in enumerate(self.schema.attributes)
        }

    def clear_cache(self) -> None:
        self._cache.clear()
        self._norm_cache.clear()

    def __getstate__(self) -> dict:
        # Memo caches are volatile accelerators, not state: excluding them
        # keeps matcher artifacts lean and — because pickle memoizes shared
        # strings — keeps :func:`repro.core.serialize.matcher_fingerprint`
        # independent of whatever was scored before saving.
        state = dict(self.__dict__)
        state["_cache"] = {}
        state["_norm_cache"] = {}
        return state

    def _attribute_features(self, attribute: str, left: str, right: str) -> np.ndarray:
        key = (attribute, left, right)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        left_norm = normalize_value(left)
        right_norm = normalize_value(right)
        if not left_norm and not right_norm:
            # Missing on both sides carries no match evidence.  Magellan's
            # extractor emits NaN here (imputed to 0); emitting zeros keeps
            # "nothing vs nothing" from looking like a perfect match.
            features = np.zeros(len(self._measures), dtype=np.float64)
            if len(self._cache) >= self.config.cache_size:
                self._cache.clear()
            self._cache[key] = features
            return features
        left_tokens = left_norm.split(" ") if left_norm else []
        right_tokens = right_norm.split(" ") if right_norm else []
        cap = self.config.char_cap
        left_capped = left_norm[:cap]
        right_capped = right_norm[:cap]
        values = [
            jaccard_similarity(left_tokens, right_tokens),
            overlap_coefficient(left_tokens, right_tokens),
            dice_coefficient(left_tokens, right_tokens),
            levenshtein_similarity(left_capped, right_capped),
            jaro_winkler_similarity(left_capped, right_capped),
            numeric_similarity(left_norm, right_norm),
            exact_match(left_norm, right_norm),
        ]
        if self.config.use_monge_elkan:
            token_cap = self.config.monge_elkan_token_cap
            values.append(
                monge_elkan_similarity(
                    left_tokens[:token_cap], right_tokens[:token_cap]
                )
            )
        features = np.array(values, dtype=np.float64)
        if not np.isfinite(features).all():
            # A measure leaked NaN/inf (e.g. a pathological value no guard
            # anticipated).  predict_proba must stay finite for any mask.
            features = np.nan_to_num(features, nan=0.0, posinf=1.0, neginf=0.0)
        if len(self._cache) >= self.config.cache_size:
            self._cache.clear()
        self._cache[key] = features
        return features

    def _attribute_features_many(
        self, attribute: str, combos: list[tuple[str, str]]
    ) -> np.ndarray:
        """Feature rows for distinct ``(left, right)`` value combinations.

        The columnar fast path of :meth:`_attribute_features`: cache hits
        are gathered first; the remaining combinations normalize each
        distinct raw value once and run the quadratic character measures
        through the batched kernels (:mod:`repro.text.batch_similarity`),
        which are bit-identical to the scalar ones.  Every row — and every
        cache entry written — is exactly what the scalar method produces.
        """
        width = len(self._measures)
        rows = np.empty((len(combos), width), dtype=np.float64)
        missing: list[int] = []
        for index, (left, right) in enumerate(combos):
            cached = self._cache.get((attribute, left, right))
            if cached is not None:
                rows[index] = cached
            else:
                missing.append(index)
        if not missing:
            return rows
        norm_cache = self._norm_cache
        normalized: dict[str, str] = {}
        token_sets: dict[str, frozenset[str]] = {}
        token_lists: dict[str, list[str]] = {}
        for index in missing:
            for value in combos[index]:
                if value not in normalized:
                    norm = norm_cache.get(value)
                    if norm is None:
                        if len(norm_cache) >= self.config.cache_size:
                            norm_cache.clear()
                        norm = norm_cache[value] = normalize_value(value)
                    normalized[value] = norm
                    words = norm.split(" ") if norm else []
                    token_lists[value] = words
                    token_sets[value] = frozenset(words)

        def store(index: int, features: np.ndarray) -> None:
            rows[index] = features
            if len(self._cache) >= self.config.cache_size:
                self._cache.clear()
            self._cache[(attribute,) + combos[index]] = features

        live: list[int] = []
        for index in missing:
            left, right = combos[index]
            if not normalized[left] and not normalized[right]:
                store(index, np.zeros(width, dtype=np.float64))
            else:
                live.append(index)
        if not live:
            return rows
        cap = self.config.char_cap
        levenshtein_block, jaro_winkler_block = char_similarities_batch(
            [normalized[combos[i][0]][:cap] for i in live],
            [normalized[combos[i][1]][:cap] for i in live],
        )
        token_cap = self.config.monge_elkan_token_cap
        for position, index in enumerate(live):
            left, right = combos[index]
            left_norm, right_norm = normalized[left], normalized[right]
            set_left, set_right = token_sets[left], token_sets[right]
            # Inlined jaccard / overlap / dice sharing one intersection:
            # same integer cardinalities, same float expressions as the
            # scalar functions in repro.text.similarity.
            n_left, n_right = len(set_left), len(set_right)
            intersection = len(set_left & set_right)
            if not n_left and not n_right:
                jaccard = overlap = dice = 1.0
            else:
                union = n_left + n_right - intersection
                jaccard = intersection / union
                overlap = (
                    intersection / min(n_left, n_right)
                    if n_left and n_right
                    else 0.0
                )
                dice = 2.0 * intersection / (n_left + n_right)
            values = [
                jaccard,
                overlap,
                dice,
                levenshtein_block[position],
                jaro_winkler_block[position],
                numeric_similarity(left_norm, right_norm),
                exact_match(left_norm, right_norm),
            ]
            if self.config.use_monge_elkan:
                values.append(
                    monge_elkan_similarity(
                        token_lists[left][:token_cap],
                        token_lists[right][:token_cap],
                    )
                )
            features = np.array(values, dtype=np.float64)
            if not np.isfinite(features).all():
                features = np.nan_to_num(
                    features, nan=0.0, posinf=1.0, neginf=0.0
                )
            store(index, features)
        return rows

    def transform_pair(self, pair: RecordPair) -> np.ndarray:
        """Feature vector of one pair, shape ``(n_features,)``."""
        chunks = [
            self._attribute_features(
                attribute, pair.left[attribute], pair.right[attribute]
            )
            for attribute in self.schema.attributes
        ]
        return np.concatenate(chunks)

    def transform(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        """Feature matrix, shape ``(len(pairs), n_features)``."""
        if not pairs:
            return np.empty((0, self.n_features), dtype=np.float64)
        return np.vstack([self.transform_pair(pair) for pair in pairs])

    def transform_columnar(self, batch) -> np.ndarray:
        """Feature matrix of a :class:`~repro.core.columnar.ColumnarPairBatch`.

        Per attribute, features are computed once per **distinct** (left,
        right) value combination — found by uniquing the batch's integer
        index codes, never by touching the strings row-wise — and gathered
        back onto the full row set.  Each distinct combination goes through
        :meth:`_attribute_features` (the same scalar code, the same memo
        cache, the same float64 values as the per-pair path), so row *i* of
        the result is bit-identical to ``transform_pair`` of row *i*'s
        materialized pair.
        """
        if batch.schema.attributes != self.schema.attributes:
            raise ValueError(
                f"batch schema {batch.schema.attributes} does not match "
                f"extractor schema {self.schema.attributes}"
            )
        width = len(self._measures)
        out = np.empty((batch.n_rows, self.n_features), dtype=np.float64)
        if batch.n_rows == 0:
            return out
        for position, attribute in enumerate(self.schema.attributes):
            left = batch.columns[("left", attribute)]
            right = batch.columns[("right", attribute)]
            codes = left.index * len(right.values) + right.index
            _, first, inverse = np.unique(
                codes, return_index=True, return_inverse=True
            )
            combos = [
                (
                    left.values[left.index[representative]],
                    right.values[right.index[representative]],
                )
                for representative in first
            ]
            block = self._attribute_features_many(attribute, combos)
            out[:, position * width : (position + 1) * width] = block[inverse]
        return out
