"""An intrinsically interpretable rule-based matcher.

Rule-based matching is the classical, pre-ML approach the paper's related
work discusses (Singh et al. 2017, Wang et al. 2011).  It serves two roles
here: a sanity baseline for the learned matchers and a demonstration target
showing that Landmark Explanation also works on non-differentiable models —
``predict_proba`` is all it asks for.

A :class:`MatchRule` is a conjunction of per-attribute similarity
thresholds; a :class:`RuleBasedMatcher` declares a pair matching when *any*
rule fires (a DNF over similarity predicates).  The soft probability is the
maximum, over rules, of the minimum margin by which the rule's predicates
hold.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.records import EMDataset, RecordPair
from repro.exceptions import ConfigurationError
from repro.matchers.base import EntityMatcher
from repro.text.normalize import tokens_of
from repro.text.similarity import jaccard_similarity


@dataclass(frozen=True)
class MatchRule:
    """``AND`` of per-attribute Jaccard thresholds, e.g. name>=0.6 & city>=0.9."""

    thresholds: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.thresholds:
            raise ConfigurationError("a MatchRule needs at least one predicate")
        for attribute, threshold in self.thresholds.items():
            if not 0.0 <= threshold <= 1.0:
                raise ConfigurationError(
                    f"threshold for {attribute!r} must be in [0, 1], got {threshold}"
                )

    def margin(self, pair: RecordPair) -> float:
        """How comfortably the rule holds: min over predicates of sim − thr.

        Positive margin ⇒ the rule fires.  Normalized to (0, 1] via the
        worst headroom so the matcher can expose a pseudo-probability.
        """
        worst = 1.0
        for attribute, threshold in self.thresholds.items():
            left_tokens = tokens_of(pair.left[attribute])
            right_tokens = tokens_of(pair.right[attribute])
            similarity = jaccard_similarity(left_tokens, right_tokens)
            worst = min(worst, similarity - threshold)
        return worst

    def describe(self) -> str:
        predicates = " AND ".join(
            f"jaccard({attribute}) >= {threshold:.2f}"
            for attribute, threshold in self.thresholds.items()
        )
        return f"IF {predicates} THEN match"


class RuleBasedMatcher(EntityMatcher):
    """Matches when any rule fires; otherwise non-match.

    ``fit`` optionally *tunes* a default one-rule matcher: it grid-searches
    a global Jaccard threshold on the first attribute that maximizes F1 on
    the training data — a tiny flavour of rule synthesis.
    """

    def __init__(self, rules: Sequence[MatchRule] | None = None) -> None:
        self.rules: list[MatchRule] = list(rules) if rules else []

    def fit(self, dataset: EMDataset) -> "RuleBasedMatcher":
        if self.rules:
            return self  # hand-written rules are kept as-is
        anchor = dataset.schema.attributes[0]
        labels = dataset.labels
        similarities = np.array(
            [
                jaccard_similarity(
                    tokens_of(pair.left[anchor]), tokens_of(pair.right[anchor])
                )
                for pair in dataset
            ]
        )
        best_threshold, best_f1 = 0.5, -1.0
        for threshold in np.linspace(0.05, 0.95, 19):
            predicted = similarities >= threshold
            true_positive = int(np.sum(predicted & (labels == 1)))
            if true_positive == 0:
                continue
            precision = true_positive / max(int(predicted.sum()), 1)
            recall = true_positive / max(int(labels.sum()), 1)
            f1 = 2 * precision * recall / (precision + recall)
            if f1 > best_f1:
                best_f1, best_threshold = f1, float(threshold)
        self.rules = [MatchRule({anchor: best_threshold})]
        return self

    def predict_proba(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        if not self.rules:
            raise ConfigurationError(
                "RuleBasedMatcher has no rules; call fit() or pass rules"
            )
        probabilities = np.empty(len(pairs), dtype=np.float64)
        for index, pair in enumerate(pairs):
            best_margin = max(rule.margin(pair) for rule in self.rules)
            # Map the signed margin in [-1, 1] to a probability in [0, 1]
            # centred on 0.5 at the decision surface.
            probabilities[index] = float(np.clip(0.5 + 0.5 * best_margin, 0.0, 1.0))
        return probabilities

    def describe(self) -> str:
        """Human-readable listing of the rule set."""
        return "\n".join(rule.describe() for rule in self.rules)
