"""From-scratch L2-regularized logistic regression (the paper's EM model).

Fitting uses IRLS (Newton-Raphson with the Fisher information matrix): the
feature space is small (|attributes| × |measures|), so each iteration is one
dense ``(d+1) × (d+1)`` solve and convergence takes a handful of steps even
on the 28k-pair datasets.

Features are standardized internally; the reported coefficients live in the
standardized space, which is exactly what the paper's attribute-based
evaluation needs — comparable magnitudes across features, so per-attribute
``Σ|w|`` is a meaningful attribute importance.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.records import EMDataset, RecordPair
from repro.exceptions import DatasetError, ModelNotFittedError
from repro.matchers.base import EntityMatcher
from repro.matchers.features import FeatureConfig, PairFeatureExtractor


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegressionMatcher(EntityMatcher):
    """Logistic regression over per-attribute similarity features."""

    supports_columnar = True

    def __init__(
        self,
        l2: float = 10.0,
        max_iter: int = 50,
        tol: float = 1e-8,
        balanced: bool = True,
        feature_config: FeatureConfig | None = None,
    ) -> None:
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.balanced = balanced
        self.feature_config = feature_config
        self.extractor: PairFeatureExtractor | None = None
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, dataset: EMDataset) -> "LogisticRegressionMatcher":
        if len(dataset) < 2:
            raise DatasetError("need at least 2 pairs to fit")
        labels = dataset.labels
        if labels.min() == labels.max():
            raise DatasetError("training data contains a single class")
        self.extractor = PairFeatureExtractor(dataset.schema, self.feature_config)
        features = self.extractor.transform(dataset.pairs)
        self._mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        standardized = (features - self._mean) / self._scale

        sample_weights = np.ones(len(labels), dtype=np.float64)
        if self.balanced:
            # Inverse-frequency weights: the match class is rare in every
            # benchmark dataset and would otherwise be drowned out.
            n_match = labels.sum()
            n_non_match = len(labels) - n_match
            sample_weights[labels == 1] = len(labels) / (2.0 * n_match)
            sample_weights[labels == 0] = len(labels) / (2.0 * n_non_match)

        self.coef_, self.intercept_, self.n_iter_ = self._irls(
            standardized, labels.astype(np.float64), sample_weights
        )
        return self

    def _irls(
        self,
        features: np.ndarray,
        target: np.ndarray,
        sample_weights: np.ndarray,
    ) -> tuple[np.ndarray, float, int]:
        n_samples, n_features = features.shape
        design = np.hstack([np.ones((n_samples, 1)), features])
        weights = np.zeros(n_features + 1)
        # The intercept (column 0) is not regularized.
        ridge = self.l2 * np.eye(n_features + 1)
        ridge[0, 0] = 0.0
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            logits = design @ weights
            probabilities = _sigmoid(logits)
            gradient = design.T @ (sample_weights * (target - probabilities))
            gradient -= ridge @ weights
            curvature = sample_weights * probabilities * (1.0 - probabilities)
            # Floor the curvature so the Hessian stays invertible when the
            # classes separate perfectly (tiny synthetic datasets do that).
            curvature = np.maximum(curvature, 1e-10)
            hessian = design.T @ (design * curvature[:, None]) + ridge
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, gradient, rcond=None)[0]
            weights = weights + step
            if float(np.abs(step).max()) < self.tol:
                break
        return weights[1:], float(weights[0]), iteration

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _require_fitted(self) -> PairFeatureExtractor:
        if self.extractor is None or self.coef_ is None:
            raise ModelNotFittedError("LogisticRegressionMatcher used before fit()")
        return self.extractor

    def _score_features(self, features: np.ndarray) -> np.ndarray:
        standardized = (features - self._mean) / self._scale
        # Row-wise reduction rather than a BLAS matvec: dgemv may pick a
        # different summation order per batch shape, and the prediction
        # engine's bit-for-bit equivalence guarantee needs every row to
        # score identically whatever batch it rides in.
        return _sigmoid((standardized * self.coef_).sum(axis=1) + self.intercept_)

    def predict_proba(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        extractor = self._require_fitted()
        if not pairs:
            return np.empty(0, dtype=np.float64)
        return self._score_features(extractor.transform(pairs))

    def predict_proba_columnar(self, batch) -> np.ndarray:
        extractor = self._require_fitted()
        if batch.n_rows == 0:
            return np.empty(0, dtype=np.float64)
        return self._score_features(extractor.transform_columnar(batch))

    # ------------------------------------------------------------------
    # Introspection (Table 3 needs this)
    # ------------------------------------------------------------------

    @property
    def feature_names(self) -> list[str]:
        return self._require_fitted().feature_names

    def attribute_weights(self) -> dict[str, float]:
        """Attribute importance: Σ|coef| over each attribute's feature group.

        This is the paper's reading of "the weights given to the dataset
        attributes by the Logistic Regression model".
        """
        extractor = self._require_fitted()
        groups = extractor.attribute_groups()
        assert self.coef_ is not None
        return {
            attribute: float(np.abs(self.coef_[group]).sum())
            for attribute, group in groups.items()
        }

    def attribute_ranking(self) -> list[str]:
        """Attributes sorted by importance, heaviest first."""
        weights = self.attribute_weights()
        return sorted(weights, key=lambda attribute: -weights[attribute])
